"""The cluster's network front end: length-prefixed JSON frames.

:class:`ClusterFrontend` exposes a running
:class:`~repro.serve.cluster.Cluster` over TCP with a deliberately tiny
protocol — every frame is a 4-byte big-endian length followed by a UTF-8
JSON object — so any language can speak it in a dozen lines.  Requests
are ``{"verb": ..., ...}``; responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": ..., "error_type": ...}``.  A protocol error
answers instead of killing the connection, and one connection can
pipeline requests (they are served in order on the event loop).

Verbs
-----
``ingest`` / ``ingest_many``
    Tenant event admission.  ``block=true`` uses the backpressure path
    (the response waits for admission), otherwise the non-blocking
    quota-checked path (``admitted`` reports the outcome).
``query`` / ``estimate`` / ``sample``
    Tenant-scoped snapshot-isolated reads.  Query options are the
    JSON-able subset (``aggregate``, ``k``, ``q``, ``ci`` — callables
    like ``where``/``group_by`` cannot cross the wire; run those
    in-process).
``admin``
    ``{"verb": "admin", "op": ...}`` with ops ``create_tenant``,
    ``drop_tenant``, ``describe_tenant``, ``tenants``, ``metrics``,
    ``add_service``, ``remove_service``, ``rebalance``, ``flush``.
``scrape`` / ``trace``
    Observability (PR 9).  ``scrape`` answers the full Prometheus
    exposition as ``{"text": ...}``; the same text is also served to
    plain HTTP clients (``curl``, a Prometheus scrape config) on the
    *same port* — the first four bytes of a connection are sniffed, and
    ``GET `` decodes as a length prefix beyond ``MAX_FRAME``, so no
    legal frame collides.  ``trace`` reads a worker's ingest-span ring
    (``{"verb": "trace", "service": ...}``; omit ``service`` for
    per-worker summaries).  Requires workers built with ``trace=True``.

Hardening
---------
One misbehaving client must not wedge the server.  The front end
enforces, per connection: an **idle timeout** (no new frame header),
a **read timeout** on frame bodies (the slowloris guard: a header
followed by a trickle), a **max-concurrent-connections** cap (excess
connections get one ``Unavailable`` error frame and are closed), and a
**frame-rate limit** backed by the same
:class:`~repro.serve.cluster.tenants.TokenBucket` machinery the tenant
quotas use (over-rate frames get a ``RateLimited`` error reply on a
still-live connection).  Every enforcement is counted in
:class:`~repro.serve.cluster.metrics.FrontendMetrics`.  A peer that
vanishes mid-frame is cleaned up quietly — no reply attempt, no logged
traceback (:class:`FrameDisconnect`).

Error replies that make sense to retry (``Unavailable`` while failover
is restoring a worker, ``RateLimited``) carry ``"retryable": true``.

:class:`ClusterClient` is the matching thin async client used by the
benchmarks, the demo example, and the tests.  Give it a
:class:`~repro.serve.cluster.retry.RetryPolicy` and it adds per-request
timeouts, bounded exponential backoff with jitter on retryable errors
(reconnecting as needed), idempotent ingest retries (a client-generated
``request_id`` the server deduplicates, so a retry whose original
admission succeeded — only the reply was lost — is *not* re-admitted;
the replayed reply carries the tenant's admission ``frontier``), and an
optional per-target :class:`~repro.serve.cluster.retry.CircuitBreaker`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import struct
from collections import OrderedDict

from .metrics import FrontendMetrics
from .retry import CircuitBreaker, CircuitOpenError, RetryPolicy
from .tenants import TokenBucket

__all__ = [
    "ClusterFrontend",
    "ClusterClient",
    "FrameError",
    "FrameDisconnect",
    "FrameTimeout",
    "MAX_FRAME",
]

_HEADER = struct.Struct(">I")
#: Refuse frames above this size (a corrupt length prefix must not make
#: the server try to buffer gigabytes).
MAX_FRAME = 32 * 1024 * 1024

#: The protocol sniff: ASCII ``GET `` read as a big-endian length prefix
#: is ~1.2 GB — far beyond ``MAX_FRAME`` — so no legal frame's first four
#: bytes collide with an HTTP request line and one port can serve both.
_HTTP_GET = b"GET "
assert _HEADER.unpack(_HTTP_GET)[0] > MAX_FRAME

#: Query/estimate keyword options accepted over the wire.  Callable
#: options (``where``, ``group_by``, ``weight_of``) are in-process only.
_QUERY_OPTIONS = (
    "aggregate", "k", "q", "ci", "window", "last", "decay", "now",
)


class FrameError(RuntimeError):
    """A malformed frame (bad length prefix, not JSON, not an object)."""


class FrameDisconnect(FrameError):
    """The peer vanished mid-frame (partial length prefix or truncated
    body).  There is nobody left to answer: the server cleans up quietly
    instead of attempting an error reply or logging a traceback."""


class FrameTimeout(FrameError):
    """A frame read exceeded its deadline.

    ``what`` carries the phase that timed out — ``"header"`` (the
    connection sat idle between requests) or ``"body"`` (a slowloris
    trickle after a header arrived) — so handlers branch on it rather
    than on the message wording.
    """

    def __init__(self, message: str, *, what: str = "body"):
        super().__init__(message)
        self.what = what


async def _read_exactly(reader: asyncio.StreamReader, n: int,
                        timeout: float | None, what: str) -> bytes:
    if timeout is None:
        return await reader.readexactly(n)
    try:
        return await asyncio.wait_for(reader.readexactly(n), timeout)
    except asyncio.TimeoutError as err:
        raise FrameTimeout(
            f"timed out reading frame {what}", what=what
        ) from err


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    idle_timeout: float | None = None,
    body_timeout: float | None = None,
    preread_header: bytes | None = None,
) -> dict | None:
    """Read one length-prefixed JSON object; ``None`` on clean EOF.

    ``idle_timeout`` bounds the wait for the 4-byte header (how long a
    connection may sit silent between requests); ``body_timeout`` bounds
    the wait for the body once a header arrived (the slowloris guard).
    Either raises :class:`FrameTimeout`.  A peer that disconnects after
    sending a partial header or body raises :class:`FrameDisconnect`.
    ``preread_header`` supplies the 4 length-prefix bytes when the
    caller already consumed them (the frontend's protocol sniff).
    """
    if preread_header is not None:
        header = preread_header
    else:
        try:
            header = await _read_exactly(reader, _HEADER.size, idle_timeout,
                                         "header")
        except asyncio.IncompleteReadError as err:
            if not err.partial:
                return None
            raise FrameDisconnect("connection closed mid-header") from err
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"frame of {length} bytes exceeds MAX_FRAME")
    try:
        body = await _read_exactly(reader, length, body_timeout, "body")
    except asyncio.IncompleteReadError as err:
        raise FrameDisconnect("connection closed mid-frame") from err
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise FrameError(f"frame is not UTF-8 JSON: {err}") from err
    if not isinstance(message, dict):
        raise FrameError("frame must encode a JSON object")
    return message


def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Queue one length-prefixed JSON object on ``writer``."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    writer.write(_HEADER.pack(len(body)) + body)


class ClusterFrontend:
    """An asyncio TCP server fronting one cluster.

    >>> import asyncio
    >>> from repro.serve.cluster import Cluster, ClusterFrontend, ClusterClient
    >>> async def demo():
    ...     async with Cluster(services=2) as cluster:
    ...         frontend = ClusterFrontend(cluster)
    ...         await frontend.start()
    ...         client = await ClusterClient.connect(*frontend.address)
    ...         await client.create_tenant(
    ...             "acme", {"name": "bottom_k", "params": {"k": 32, "rng": 3}})
    ...         await client.ingest_many("acme", list(range(100)))
    ...         reply = await client.estimate("acme", "total")
    ...         await client.aclose()
    ...         await frontend.stop()
    ...         return reply["estimate"]
    >>> 30 < asyncio.run(demo()) < 300  # HT estimate of the true 100
    True
    """

    def __init__(
        self,
        cluster,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int | None = None,
        idle_timeout: float | None = None,
        read_timeout: float | None = None,
        frame_rate: float | None = None,
        frame_burst: float | None = None,
        dedupe_capacity: int = 4096,
        clock=None,
        alerts=None,
    ):
        if max_connections is not None and max_connections < 1:
            raise ValueError("max_connections must be >= 1 (or None)")
        for name, value in (("idle_timeout", idle_timeout),
                            ("read_timeout", read_timeout),
                            ("frame_rate", frame_rate)):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None)")
        if dedupe_capacity < 1:
            raise ValueError("dedupe_capacity must be >= 1")
        self.cluster = cluster
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.idle_timeout = idle_timeout
        self.read_timeout = read_timeout
        self.frame_rate = frame_rate
        # Default burst matches the tenant-quota convention: one
        # second's worth of frames.
        self.frame_burst = (
            frame_burst if frame_burst is not None else frame_rate
        )
        self.dedupe_capacity = dedupe_capacity
        self.metrics = FrontendMetrics()
        self._clock = clock
        #: Optional :class:`~repro.obs.AlertEngine` whose firing state
        #: rides along in the scrape (usually the supervisor's engine).
        self.alerts = alerts
        self._server: asyncio.AbstractServer | None = None
        self._registry = None
        #: Idempotency table: request_id -> successful ingest reply.
        #: Bounded LRU — old entries fall off past ``dedupe_capacity``.
        self._dedupe: OrderedDict[str, dict] = OrderedDict()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        if self._server is None:
            raise RuntimeError("frontend not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> "ClusterFrontend":
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("frontend already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        return self

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "ClusterFrontend":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    def scrape_registry(self):
        """The :class:`~repro.obs.PrometheusRegistry` behind ``/metrics``
        (built lazily: cluster + this frontend + the alert engine, when
        one is attached)."""
        if self._registry is None:
            from ...obs.adapters import cluster_registry
            self._registry = cluster_registry(
                self.cluster, frontend=self, alerts=self.alerts
            )
        return self._registry

    def _frame_bucket(self) -> TokenBucket | None:
        """A fresh per-connection frame-rate bucket (``None`` = no limit)."""
        if self.frame_rate is None:
            return None
        kwargs = {} if self._clock is None else {"clock": self._clock}
        return TokenBucket(self.frame_rate, self.frame_burst, **kwargs)

    async def _serve_connection(self, reader, writer) -> None:
        """Serve frames on one connection until EOF, timeout, or a fatal
        framing error."""
        metrics = self.metrics
        if (self.max_connections is not None
                and metrics.connections_active >= self.max_connections):
            # Over the cap: one retryable error frame, then close.  The
            # client's backoff spreads the reconnects out.
            metrics.connections_rejected += 1
            with contextlib.suppress(Exception):
                write_frame(writer, {
                    "ok": False,
                    "error": "connection limit reached",
                    "error_type": "Unavailable",
                    "retryable": True,
                })
                await writer.drain()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            return
        metrics.connections_opened += 1
        metrics.connections_active += 1
        bucket = self._frame_bucket()
        try:
            # Protocol sniff: the first four bytes of a connection are
            # either a frame's length prefix or the ``GET `` of an HTTP
            # scrape (which no legal prefix collides with — _HTTP_GET).
            try:
                sniffed = await _read_exactly(
                    reader, _HEADER.size, self.idle_timeout, "header"
                )
            except asyncio.IncompleteReadError as err:
                if err.partial:
                    metrics.disconnects_mid_frame += 1
                return
            except FrameTimeout:
                metrics.idle_timeouts += 1
                return
            if sniffed == _HTTP_GET:
                from ...obs.exporter import serve_http
                metrics.scrapes_served += 1
                await serve_http(reader, writer, self.scrape_registry(),
                                 preread=sniffed)
                return
            preread: bytes | None = sniffed
            while True:
                try:
                    request = await read_frame(
                        reader,
                        idle_timeout=self.idle_timeout,
                        body_timeout=self.read_timeout,
                        preread_header=preread,
                    )
                except FrameDisconnect:
                    # The peer is gone mid-frame: nobody to answer, and
                    # a traceback would be noise.  Clean close only.
                    metrics.disconnects_mid_frame += 1
                    break
                except FrameTimeout as err:
                    if err.what == "header":
                        # Idle between requests: close *quietly*.  An
                        # error frame here would sit in the peer's
                        # receive buffer and desynchronize its next
                        # request/reply pairing after a reconnect.
                        metrics.idle_timeouts += 1
                        break
                    # Mid-frame trickle (slowloris): the peer is not
                    # awaiting a reply, so announcing the reap is safe.
                    metrics.read_timeouts += 1
                    with contextlib.suppress(Exception):
                        write_frame(writer, {
                            "ok": False, "error": str(err),
                            "error_type": "FrameTimeout",
                        })
                        await writer.drain()
                    break
                except FrameError as err:
                    metrics.frame_errors += 1
                    with contextlib.suppress(Exception):
                        write_frame(writer, {
                            "ok": False, "error": str(err),
                            "error_type": "FrameError",
                        })
                        await writer.drain()
                    break
                preread = None  # only the first header was sniffed
                if request is None:
                    break
                metrics.frames_read += 1
                if bucket is not None and not bucket.try_acquire(1):
                    # Over the per-connection frame rate: push back on
                    # this frame only; the connection stays usable.
                    metrics.frames_rate_limited += 1
                    write_frame(writer, {
                        "ok": False,
                        "error": "per-connection frame rate exceeded",
                        "error_type": "RateLimited",
                        "retryable": True,
                    })
                    await writer.drain()
                    continue
                reply = await self._dispatch(request)
                try:
                    write_frame(writer, reply)
                except FrameError as err:
                    # An oversized reply (e.g. a huge sample) must answer
                    # with an error frame, not kill the connection; the
                    # size check runs before any bytes hit the transport,
                    # so the stream stays frame-aligned.
                    write_frame(writer, {
                        "ok": False, "error": str(err),
                        "error_type": "FrameError",
                    })
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            metrics.connections_active -= 1
            metrics.connections_closed += 1
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, request: dict) -> dict:
        """Answer one request; application errors become error replies."""
        verb = request.get("verb")
        handler = getattr(self, f"_verb_{verb}", None) if verb else None
        if handler is None or (verb or "").startswith("_"):
            return {
                "ok": False,
                "error": f"unknown verb {verb!r}",
                "error_type": "ValueError",
            }
        try:
            reply = await handler(request)
        except Exception as err:  # noqa: BLE001 - answer, don't disconnect
            return {
                "ok": False,
                "error": str(err),
                "error_type": type(err).__name__,
            }
        reply.setdefault("ok", True)
        return reply

    @staticmethod
    def _columns(request: dict) -> dict:
        """The optional event columns of an ingest request."""
        return {
            name: request.get(name)
            for name in ("weights", "values", "times")
        }

    def _dedupe_lookup(self, request: dict) -> dict | None:
        """The cached reply for this ``request_id``, if one exists."""
        request_id = request.get("request_id")
        if request_id is None or request_id not in self._dedupe:
            return None
        self._dedupe.move_to_end(request_id)
        self.metrics.replies_deduped += 1
        return {**self._dedupe[request_id], "deduped": True}

    def _dedupe_store(self, request: dict, reply: dict) -> dict:
        """Cache a *successful admission* reply under its ``request_id``
        (stamped with the tenant's admission frontier), so a retry whose
        only casualty was the reply is answered without re-admitting."""
        request_id = request.get("request_id")
        if request_id is None or not reply.get("admitted"):
            return reply
        record = self.cluster.registry.get(request["tenant"])
        reply = {**reply, "frontier": record.events_enqueued}
        self._dedupe[request_id] = reply
        while len(self._dedupe) > self.dedupe_capacity:
            self._dedupe.popitem(last=False)
        return reply

    @staticmethod
    def _shed_reply() -> dict:
        """The retryable push-back reply for ingest shed while a worker
        is down (the supervisor is restoring it; the client's backoff
        covers the gap)."""
        return {
            "ok": False,
            "error": "tenant's worker is down; ingest shed",
            "error_type": "Unavailable",
            "retryable": True,
        }

    async def _verb_ingest(self, request: dict) -> dict:
        """Scalar admission: blocking or quota-checked non-blocking."""
        cached = self._dedupe_lookup(request)
        if cached is not None:
            return cached
        tenant = request["tenant"]
        kwargs = {
            "value": request.get("value"), "time": request.get("time"),
        }
        weight = float(request.get("weight", 1.0))
        if request.get("block", False):
            admitted = await self.cluster.ingest(
                tenant, request["key"], weight,
                expect_frontier=request.get("expect_frontier"), **kwargs
            )
            if not admitted:
                return self._shed_reply()
            return self._dedupe_store(request, {"admitted": True})
        admitted = self.cluster.try_ingest(
            tenant, request["key"], weight, **kwargs
        )
        return self._dedupe_store(request, {"admitted": admitted})

    async def _verb_ingest_many(self, request: dict) -> dict:
        """Batch admission: blocking or quota-checked non-blocking."""
        cached = self._dedupe_lookup(request)
        if cached is not None:
            return cached
        tenant = request["tenant"]
        keys = request["keys"]
        columns = self._columns(request)
        if request.get("block", False):
            admitted = await self.cluster.ingest_many(
                tenant, keys,
                expect_frontier=request.get("expect_frontier"), **columns
            )
            if not admitted:
                return self._shed_reply()
            return self._dedupe_store(
                request, {"admitted": True, "n": len(keys)}
            )
        admitted = self.cluster.try_ingest_many(tenant, keys, **columns)
        return self._dedupe_store(
            request, {"admitted": admitted, "n": len(keys) if admitted else 0}
        )

    async def _verb_estimate(self, request: dict) -> dict:
        """Tenant-scoped estimate (JSON-able kinds/options only)."""
        estimate = await self.cluster.estimate(
            request["tenant"], request.get("kind")
        )
        return {"estimate": float(estimate)}

    async def _verb_query(self, request: dict) -> dict:
        """Tenant-scoped declarative query, result flattened to JSON."""
        options = {
            name: request[name] for name in _QUERY_OPTIONS if name in request
        }
        result = await self.cluster.query(request["tenant"], **options)
        reply = {
            "aggregate": result.aggregate,
            "estimate": _jsonable(result.estimate),
            "sample_size": result.sample_size,
            "state_version": result.state_version,
        }
        if result.stderr is not None:
            reply["stderr"] = float(result.stderr)
        if result.ci is not None:
            reply["ci"] = [float(bound) for bound in result.ci]
        if result.degraded:
            reply["degraded"] = True
        return reply

    async def _verb_sample(self, request: dict) -> dict:
        """A tenant's retained sample as parallel JSON columns."""
        sample = await self.cluster.sample(request["tenant"])
        return {
            "keys": [_jsonable(key) for key in list(sample.keys)],
            "weights": [float(w) for w in sample.weights],
            "thresholds": [float(t) for t in sample.thresholds],
            "n": len(sample.keys),
        }

    async def _verb_admin(self, request: dict) -> dict:
        """Namespace/pool administration (see the module docstring)."""
        op = request.get("op")
        cluster = self.cluster
        if op == "create_tenant":
            record = await cluster.create_tenant(
                request["tenant"], request["spec"],
                quota=request.get("quota"),
            )
            return {"tenant": request["tenant"], "service": record.service}
        if op == "drop_tenant":
            await cluster.drop_tenant(request["tenant"])
            return {"tenant": request["tenant"]}
        if op == "describe_tenant":
            return {"description": cluster.describe_tenant(request["tenant"])}
        if op == "tenants":
            return {"tenants": list(cluster.tenants())}
        if op == "metrics":
            return {"metrics": cluster.metrics().to_dict()}
        if op == "add_service":
            name = await cluster.add_service(request.get("name"))
            return {"service": name, "services": list(cluster.services)}
        if op == "remove_service":
            await cluster.remove_service(request["name"])
            return {"services": list(cluster.services)}
        if op == "rebalance":
            plan = await cluster.rebalance()
            return {"moved": [
                {"tenant": move.tenant, "source": move.source,
                 "destination": move.destination}
                for move in plan.moves
            ]}
        if op == "flush":
            await cluster.flush()
            return {}
        raise ValueError(f"unknown admin op {op!r}")

    async def _verb_scrape(self, request: dict) -> dict:
        """The Prometheus exposition as a frame (same text HTTP gets)."""
        from ...obs.exporter import SCRAPE_CONTENT_TYPE
        self.metrics.scrapes_served += 1
        return {
            "text": self.scrape_registry().render(),
            "content_type": SCRAPE_CONTENT_TYPE,
        }

    async def _verb_trace(self, request: dict) -> dict:
        """A worker's ingest-span ring (records + summary), or — without
        a ``service`` — every worker's summary.  Workers not built with
        ``trace=True`` report ``enabled: false``."""
        self.metrics.trace_reads += 1
        name = request.get("service")
        if name is None:
            summaries = {}
            for worker_name in self.cluster.services:
                trace = getattr(
                    self.cluster.service(worker_name), "trace_log", None
                )
                summaries[worker_name] = (
                    None if trace is None else trace.summary()
                )
            return {"services": summaries}
        trace = getattr(self.cluster.service(name), "trace_log", None)
        if trace is None:
            return {"service": name, "enabled": False,
                    "records": [], "summary": None}
        return {
            "service": name,
            "enabled": True,
            "records": trace.records(),
            "summary": trace.summary(),
        }


def _jsonable(value):
    """Best-effort JSON form of a query/sample value."""
    if hasattr(value, "__dataclass_fields__"):  # e.g. TopKItem
        return {
            name: _jsonable(getattr(value, name))
            for name in value.__dataclass_fields__
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class ClusterClient:
    """Thin async client speaking the frontend's frame protocol.

    One request at a time per client instance (the protocol itself
    pipelines fine; open more clients for concurrency).

    Without a ``retry`` policy the client is exactly the thin wrapper it
    always was: one attempt, errors surface immediately.  With one, each
    :meth:`call` is bounded by the policy's ``request_timeout``, retried
    with exponential backoff and jitter on transport failures, timeouts,
    and replies flagged ``"retryable": true`` (reconnecting on a dead or
    suspect connection), and ingest verbs get an automatic
    ``request_id`` so a retry after a lost reply is answered from the
    server's idempotency table instead of double-counting events.  An
    optional per-target ``breaker`` fails calls fast
    (:class:`~repro.serve.cluster.retry.CircuitOpenError`) while the
    target keeps failing at the transport level.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *,
                 host: str | None = None, port: int | None = None,
                 retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 rng=None):
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self.retry = retry
        self.breaker = breaker
        self._rng = rng
        self._request_seq = 0
        self._nonce = os.urandom(6).hex()

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      retry: RetryPolicy | None = None,
                      breaker: CircuitBreaker | None = None,
                      rng=None) -> "ClusterClient":
        """Open a connection to a running :class:`ClusterFrontend`."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, host=host, port=port,
                   retry=retry, breaker=breaker, rng=rng)

    async def aclose(self) -> None:
        """Close the connection."""
        if self._writer is None:
            return
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()

    def next_request_id(self) -> str:
        """A fresh idempotency key (unique per client instance)."""
        self._request_seq += 1
        return f"{self._nonce}-{self._request_seq}"

    async def _ensure_connection(self) -> None:
        """Reconnect if the previous attempt burned the connection."""
        if self._writer is not None:
            return
        if self._host is None or self._port is None:
            raise FrameError(
                "connection lost and no (host, port) to reconnect"
            )
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )

    def _drop_connection(self) -> None:
        """Discard a connection whose frame alignment is no longer
        trustworthy (timeout mid-round-trip, transport error)."""
        if self._writer is None:
            return
        writer, self._writer = self._writer, None
        self._reader = None
        writer.close()

    async def _roundtrip(self, request: dict) -> dict:
        """One request frame out, one reply frame back (no retries)."""
        await self._ensure_connection()
        write_frame(self._writer, request)
        await self._writer.drain()
        reply = await read_frame(self._reader)
        if reply is None:
            raise FrameError("server closed the connection")
        return reply

    @staticmethod
    def _reply_error(reply: dict) -> RuntimeError:
        return RuntimeError(
            f"{reply.get('error_type', 'Error')}: "
            f"{reply.get('error', 'unknown error')}"
        )

    async def call(self, request: dict) -> dict:
        """Send one request frame and await its reply frame.

        Raises ``RuntimeError`` on an error reply (carrying the server's
        ``error_type``/``error``) and ``FrameError`` on a dead
        connection (after the retry budget, when a policy is set).
        """
        if self.retry is None:
            reply = await self._roundtrip(request)
            if not reply.get("ok", False):
                raise self._reply_error(reply)
            return reply
        policy = self.retry
        last_error: Exception | None = None
        for attempt in range(1, policy.max_attempts + 1):
            if self.breaker is not None and not self.breaker.allow():
                raise CircuitOpenError(
                    f"circuit open for {self._host}:{self._port}"
                )
            try:
                if policy.request_timeout is None:
                    reply = await self._roundtrip(request)
                else:
                    reply = await asyncio.wait_for(
                        self._roundtrip(request), policy.request_timeout
                    )
            except (ConnectionError, OSError, FrameError,
                    asyncio.TimeoutError) as err:
                # Transport failure: the connection's frame alignment is
                # unknown — burn it, count it against the breaker, back
                # off, reconnect on the next attempt.
                self._drop_connection()
                if self.breaker is not None:
                    self.breaker.record_failure()
                last_error = err
            else:
                if reply.get("ok", False):
                    if self.breaker is not None:
                        self.breaker.record_success()
                    return reply
                if not reply.get("retryable", False):
                    if self.breaker is not None:
                        self.breaker.record_success()
                    raise self._reply_error(reply)
                # Application-level push-back (Unavailable, RateLimited):
                # the target is alive, so the breaker is not charged.
                last_error = self._reply_error(reply)
            if attempt < policy.max_attempts:
                await asyncio.sleep(policy.delay(attempt, self._rng))
        raise last_error

    # -- convenience verbs -------------------------------------------------
    async def ingest(self, tenant: str, key, weight: float = 1.0, *,
                     value=None, time=None, block: bool = False,
                     request_id: str | None = None,
                     expect_frontier: int | None = None) -> dict:
        """Scalar ``ingest`` (non-blocking unless ``block=True``).

        With a retry policy set, a ``request_id`` is generated
        automatically so retries are idempotent.  ``expect_frontier``
        makes a blocking admission conditional on the tenant's frontier
        (a non-retryable ``StaleFrontier`` error reply otherwise)."""
        request = {
            "verb": "ingest", "tenant": tenant, "key": key,
            "weight": weight, "block": block,
        }
        if value is not None:
            request["value"] = value
        if time is not None:
            request["time"] = time
        if expect_frontier is not None:
            request["expect_frontier"] = int(expect_frontier)
        if request_id is None and self.retry is not None:
            request_id = self.next_request_id()
        if request_id is not None:
            request["request_id"] = request_id
        return await self.call(request)

    async def ingest_many(self, tenant: str, keys, *, weights=None,
                          values=None, times=None, block: bool = True,
                          request_id: str | None = None,
                          expect_frontier: int | None = None) -> dict:
        """Batch ``ingest_many`` (blocking by default, like the API).

        With a retry policy set, a ``request_id`` is generated
        automatically so retries are idempotent.  ``expect_frontier``
        makes a blocking admission conditional on the tenant's frontier
        (a non-retryable ``StaleFrontier`` error reply otherwise)."""
        request = {
            "verb": "ingest_many", "tenant": tenant, "keys": list(keys),
            "block": block,
        }
        if expect_frontier is not None:
            request["expect_frontier"] = int(expect_frontier)
        if weights is not None:
            request["weights"] = list(weights)
        if values is not None:
            request["values"] = list(values)
        if times is not None:
            request["times"] = list(times)
        if request_id is None and self.retry is not None:
            request_id = self.next_request_id()
        if request_id is not None:
            request["request_id"] = request_id
        return await self.call(request)

    async def estimate(self, tenant: str, kind: str | None = None) -> dict:
        """Tenant-scoped ``estimate``."""
        request = {"verb": "estimate", "tenant": tenant}
        if kind is not None:
            request["kind"] = kind
        return await self.call(request)

    async def query(self, tenant: str, aggregate: str, **options) -> dict:
        """Tenant-scoped declarative ``query`` (JSON-able options only)."""
        return await self.call({
            "verb": "query", "tenant": tenant, "aggregate": aggregate,
            **options,
        })

    async def sample(self, tenant: str) -> dict:
        """A tenant's retained sample."""
        return await self.call({"verb": "sample", "tenant": tenant})

    async def admin(self, op: str, **options) -> dict:
        """Any admin op (``create_tenant``, ``metrics``, ...)."""
        return await self.call({"verb": "admin", "op": op, **options})

    async def scrape(self) -> str:
        """The frontend's Prometheus exposition text (frame verb)."""
        reply = await self.call({"verb": "scrape"})
        return reply["text"]

    async def trace(self, service: str | None = None) -> dict:
        """A worker's ingest-span ring, or all workers' summaries."""
        request: dict = {"verb": "trace"}
        if service is not None:
            request["service"] = service
        return await self.call(request)

    async def create_tenant(self, tenant: str, spec, *, quota=None) -> dict:
        """Admin shorthand: register a tenant."""
        options = {"tenant": tenant, "spec": spec}
        if quota is not None:
            options["quota"] = quota
        return await self.admin("create_tenant", **options)
