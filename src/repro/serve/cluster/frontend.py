"""The cluster's network front end: length-prefixed JSON frames.

:class:`ClusterFrontend` exposes a running
:class:`~repro.serve.cluster.Cluster` over TCP with a deliberately tiny
protocol — every frame is a 4-byte big-endian length followed by a UTF-8
JSON object — so any language can speak it in a dozen lines.  Requests
are ``{"verb": ..., ...}``; responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": ..., "error_type": ...}``.  A protocol error
answers instead of killing the connection, and one connection can
pipeline requests (they are served in order on the event loop).

Verbs
-----
``ingest`` / ``ingest_many``
    Tenant event admission.  ``block=true`` uses the backpressure path
    (the response waits for admission), otherwise the non-blocking
    quota-checked path (``admitted`` reports the outcome).
``query`` / ``estimate`` / ``sample``
    Tenant-scoped snapshot-isolated reads.  Query options are the
    JSON-able subset (``aggregate``, ``k``, ``q``, ``ci`` — callables
    like ``where``/``group_by`` cannot cross the wire; run those
    in-process).
``admin``
    ``{"verb": "admin", "op": ...}`` with ops ``create_tenant``,
    ``drop_tenant``, ``describe_tenant``, ``tenants``, ``metrics``,
    ``add_service``, ``remove_service``, ``rebalance``, ``flush``.

:class:`ClusterClient` is the matching thin async client used by the
benchmarks, the demo example, and the tests.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import struct

__all__ = ["ClusterFrontend", "ClusterClient", "FrameError", "MAX_FRAME"]

_HEADER = struct.Struct(">I")
#: Refuse frames above this size (a corrupt length prefix must not make
#: the server try to buffer gigabytes).
MAX_FRAME = 32 * 1024 * 1024

#: Query/estimate keyword options accepted over the wire.  Callable
#: options (``where``, ``group_by``, ``weight_of``) are in-process only.
_QUERY_OPTIONS = ("aggregate", "k", "q", "ci")


class FrameError(RuntimeError):
    """A malformed frame (bad length prefix, not JSON, not an object)."""


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one length-prefixed JSON object; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None
        raise FrameError("connection closed mid-header") from err
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"frame of {length} bytes exceeds MAX_FRAME")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as err:
        raise FrameError("connection closed mid-frame") from err
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise FrameError(f"frame is not UTF-8 JSON: {err}") from err
    if not isinstance(message, dict):
        raise FrameError("frame must encode a JSON object")
    return message


def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Queue one length-prefixed JSON object on ``writer``."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    writer.write(_HEADER.pack(len(body)) + body)


class ClusterFrontend:
    """An asyncio TCP server fronting one cluster.

    >>> import asyncio
    >>> from repro.serve.cluster import Cluster, ClusterFrontend, ClusterClient
    >>> async def demo():
    ...     async with Cluster(services=2) as cluster:
    ...         frontend = ClusterFrontend(cluster)
    ...         await frontend.start()
    ...         client = await ClusterClient.connect(*frontend.address)
    ...         await client.create_tenant(
    ...             "acme", {"name": "bottom_k", "params": {"k": 32, "rng": 3}})
    ...         await client.ingest_many("acme", list(range(100)))
    ...         reply = await client.estimate("acme", "total")
    ...         await client.aclose()
    ...         await frontend.stop()
    ...         return reply["estimate"]
    >>> 30 < asyncio.run(demo()) < 300  # HT estimate of the true 100
    True
    """

    def __init__(self, cluster, *, host: str = "127.0.0.1", port: int = 0):
        self.cluster = cluster
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        if self._server is None:
            raise RuntimeError("frontend not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> "ClusterFrontend":
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("frontend already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        return self

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "ClusterFrontend":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    async def _serve_connection(self, reader, writer) -> None:
        """Serve frames on one connection until EOF or a framing error."""
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except FrameError as err:
                    write_frame(writer, {
                        "ok": False, "error": str(err),
                        "error_type": "FrameError",
                    })
                    await writer.drain()
                    break
                if request is None:
                    break
                reply = await self._dispatch(request)
                try:
                    write_frame(writer, reply)
                except FrameError as err:
                    # An oversized reply (e.g. a huge sample) must answer
                    # with an error frame, not kill the connection; the
                    # size check runs before any bytes hit the transport,
                    # so the stream stays frame-aligned.
                    write_frame(writer, {
                        "ok": False, "error": str(err),
                        "error_type": "FrameError",
                    })
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, request: dict) -> dict:
        """Answer one request; application errors become error replies."""
        verb = request.get("verb")
        handler = getattr(self, f"_verb_{verb}", None) if verb else None
        if handler is None or (verb or "").startswith("_"):
            return {
                "ok": False,
                "error": f"unknown verb {verb!r}",
                "error_type": "ValueError",
            }
        try:
            reply = await handler(request)
        except Exception as err:  # noqa: BLE001 - answer, don't disconnect
            return {
                "ok": False,
                "error": str(err),
                "error_type": type(err).__name__,
            }
        reply.setdefault("ok", True)
        return reply

    @staticmethod
    def _columns(request: dict) -> dict:
        """The optional event columns of an ingest request."""
        return {
            name: request.get(name)
            for name in ("weights", "values", "times")
        }

    async def _verb_ingest(self, request: dict) -> dict:
        """Scalar admission: blocking or quota-checked non-blocking."""
        tenant = request["tenant"]
        kwargs = {
            "value": request.get("value"), "time": request.get("time"),
        }
        weight = float(request.get("weight", 1.0))
        if request.get("block", False):
            await self.cluster.ingest(tenant, request["key"], weight, **kwargs)
            return {"admitted": True}
        admitted = self.cluster.try_ingest(
            tenant, request["key"], weight, **kwargs
        )
        return {"admitted": admitted}

    async def _verb_ingest_many(self, request: dict) -> dict:
        """Batch admission: blocking or quota-checked non-blocking."""
        tenant = request["tenant"]
        keys = request["keys"]
        columns = self._columns(request)
        if request.get("block", False):
            await self.cluster.ingest_many(tenant, keys, **columns)
            return {"admitted": True, "n": len(keys)}
        admitted = self.cluster.try_ingest_many(tenant, keys, **columns)
        return {"admitted": admitted, "n": len(keys) if admitted else 0}

    async def _verb_estimate(self, request: dict) -> dict:
        """Tenant-scoped estimate (JSON-able kinds/options only)."""
        estimate = await self.cluster.estimate(
            request["tenant"], request.get("kind")
        )
        return {"estimate": float(estimate)}

    async def _verb_query(self, request: dict) -> dict:
        """Tenant-scoped declarative query, result flattened to JSON."""
        options = {
            name: request[name] for name in _QUERY_OPTIONS if name in request
        }
        result = await self.cluster.query(request["tenant"], **options)
        reply = {
            "aggregate": result.aggregate,
            "estimate": _jsonable(result.estimate),
            "sample_size": result.sample_size,
            "state_version": result.state_version,
        }
        if result.stderr is not None:
            reply["stderr"] = float(result.stderr)
        if result.ci is not None:
            reply["ci"] = [float(bound) for bound in result.ci]
        return reply

    async def _verb_sample(self, request: dict) -> dict:
        """A tenant's retained sample as parallel JSON columns."""
        sample = await self.cluster.sample(request["tenant"])
        return {
            "keys": [_jsonable(key) for key in list(sample.keys)],
            "weights": [float(w) for w in sample.weights],
            "thresholds": [float(t) for t in sample.thresholds],
            "n": len(sample.keys),
        }

    async def _verb_admin(self, request: dict) -> dict:
        """Namespace/pool administration (see the module docstring)."""
        op = request.get("op")
        cluster = self.cluster
        if op == "create_tenant":
            record = await cluster.create_tenant(
                request["tenant"], request["spec"],
                quota=request.get("quota"),
            )
            return {"tenant": request["tenant"], "service": record.service}
        if op == "drop_tenant":
            await cluster.drop_tenant(request["tenant"])
            return {"tenant": request["tenant"]}
        if op == "describe_tenant":
            return {"description": cluster.describe_tenant(request["tenant"])}
        if op == "tenants":
            return {"tenants": list(cluster.tenants())}
        if op == "metrics":
            return {"metrics": cluster.metrics().to_dict()}
        if op == "add_service":
            name = await cluster.add_service(request.get("name"))
            return {"service": name, "services": list(cluster.services)}
        if op == "remove_service":
            await cluster.remove_service(request["name"])
            return {"services": list(cluster.services)}
        if op == "rebalance":
            plan = await cluster.rebalance()
            return {"moved": [
                {"tenant": move.tenant, "source": move.source,
                 "destination": move.destination}
                for move in plan.moves
            ]}
        if op == "flush":
            await cluster.flush()
            return {}
        raise ValueError(f"unknown admin op {op!r}")


def _jsonable(value):
    """Best-effort JSON form of a query/sample value."""
    if hasattr(value, "__dataclass_fields__"):  # e.g. TopKItem
        return {
            name: _jsonable(getattr(value, name))
            for name in value.__dataclass_fields__
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class ClusterClient:
    """Thin async client speaking the frontend's frame protocol.

    One request at a time per client instance (the protocol itself
    pipelines fine; open more clients for concurrency).
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ClusterClient":
        """Open a connection to a running :class:`ClusterFrontend`."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def aclose(self) -> None:
        """Close the connection."""
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()

    async def call(self, request: dict) -> dict:
        """Send one request frame and await its reply frame.

        Raises ``RuntimeError`` on an error reply (carrying the server's
        ``error_type``/``error``) and ``FrameError`` on a dead
        connection.
        """
        write_frame(self._writer, request)
        await self._writer.drain()
        reply = await read_frame(self._reader)
        if reply is None:
            raise FrameError("server closed the connection")
        if not reply.get("ok", False):
            raise RuntimeError(
                f"{reply.get('error_type', 'Error')}: "
                f"{reply.get('error', 'unknown error')}"
            )
        return reply

    # -- convenience verbs -------------------------------------------------
    async def ingest(self, tenant: str, key, weight: float = 1.0, *,
                     value=None, time=None, block: bool = False) -> dict:
        """Scalar ``ingest`` (non-blocking unless ``block=True``)."""
        request = {
            "verb": "ingest", "tenant": tenant, "key": key,
            "weight": weight, "block": block,
        }
        if value is not None:
            request["value"] = value
        if time is not None:
            request["time"] = time
        return await self.call(request)

    async def ingest_many(self, tenant: str, keys, *, weights=None,
                          values=None, times=None,
                          block: bool = True) -> dict:
        """Batch ``ingest_many`` (blocking by default, like the API)."""
        request = {
            "verb": "ingest_many", "tenant": tenant, "keys": list(keys),
            "block": block,
        }
        if weights is not None:
            request["weights"] = list(weights)
        if values is not None:
            request["values"] = list(values)
        if times is not None:
            request["times"] = list(times)
        return await self.call(request)

    async def estimate(self, tenant: str, kind: str | None = None) -> dict:
        """Tenant-scoped ``estimate``."""
        request = {"verb": "estimate", "tenant": tenant}
        if kind is not None:
            request["kind"] = kind
        return await self.call(request)

    async def query(self, tenant: str, aggregate: str, **options) -> dict:
        """Tenant-scoped declarative ``query`` (JSON-able options only)."""
        return await self.call({
            "verb": "query", "tenant": tenant, "aggregate": aggregate,
            **options,
        })

    async def sample(self, tenant: str) -> dict:
        """A tenant's retained sample."""
        return await self.call({"verb": "sample", "tenant": tenant})

    async def admin(self, op: str, **options) -> dict:
        """Any admin op (``create_tenant``, ``metrics``, ...)."""
        return await self.call({"verb": "admin", "op": op, **options})

    async def create_tenant(self, tenant: str, spec, *, quota=None) -> dict:
        """Admin shorthand: register a tenant."""
        options = {"tenant": tenant, "spec": spec}
        if quota is not None:
            options["quota"] = quota
        return await self.admin("create_tenant", **options)
