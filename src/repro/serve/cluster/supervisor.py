"""Automatic failover: the cluster's self-healing loop.

A :class:`Supervisor` owns one background task that probes every worker
of a :class:`~repro.serve.cluster.Cluster` on a fixed cadence
(:mod:`~repro.serve.cluster.health`) and, when a worker trips the
consecutive-miss threshold, executes failover *while the cluster keeps
serving*: the moment the worker is marked down, reads for its tenants
degrade to the last durable snapshot (``degraded=True`` results with a
pinned ``state_version``) and ingest sheds with the counted
``unavailable`` reason — no caller ever sees ``ServiceCrashed``.

Two recovery policies:

``"restart"`` (default)
    Restart-in-place via :meth:`Cluster.restart_service` — the worker is
    rebuilt bit-exactly from its own directory (newest valid checkpoint
    + WAL-tail replay) under the same name.  The cheap option when the
    disk survived; tenants keep their placement.
``"rehome"``
    Evacuate via :meth:`Cluster.rehome_service` — the dead worker's
    durable state is read offline and installed on the ring-chosen
    survivors, shrinking the pool by one.  The right option when the
    worker's host is gone for good.

``policy`` may also be a callable ``(worker_name, verdict) -> action``
for mixed fleets (e.g. rehome on ``"dead"``, restart on ``"stalled"``).

Every failover is recorded as a :class:`FailoverEvent` with detection
and restoration timestamps — ``benchmarks/bench_failover.py`` reads
these to report detection latency and restore latency under load.  A
failed recovery leaves the worker marked down (degraded serving
continues) and is retried on the next tick.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field

from .health import (
    HealthConfig,
    WorkerHealth,
    probe_service,
)

__all__ = ["Supervisor", "FailoverEvent"]


@dataclass
class FailoverEvent:
    """One detected outage and what the supervisor did about it.

    ``detected_at`` / ``restored_at`` are event-loop timestamps
    (``loop.time()``); ``restored_at`` stays ``None`` while recovery is
    in progress or after a failed attempt (``error`` carries the
    failure; the next tick appends a fresh event for the retry).
    """

    worker: str
    reason: str
    action: str
    detected_at: float
    restored_at: float | None = None
    error: str | None = None
    #: Tenants moved off the worker (``rehome`` only).
    moved: tuple[str, ...] = ()

    @property
    def restore_latency(self) -> float | None:
        """Seconds from detection to restored service (``None`` if not
        restored)."""
        if self.restored_at is None:
            return None
        return self.restored_at - self.detected_at


class Supervisor:
    """Health-check a cluster's workers and fail over automatically.

    Parameters
    ----------
    cluster:
        The started :class:`~repro.serve.cluster.Cluster` to supervise.
    config:
        A :class:`~repro.serve.cluster.health.HealthConfig`; the
        ``interval`` / ``stall_timeout`` / ``max_missed`` keywords build
        one when it is omitted.
    policy:
        ``"restart"``, ``"rehome"``, or a callable
        ``(worker_name, verdict) -> action``.
    on_failover:
        Optional callback invoked with each completed
        :class:`FailoverEvent` (after success *or* failure).
    alerts:
        Optional :class:`~repro.obs.AlertEngine`.  When given, every
        tick ends by sampling a cluster-wide observation window
        (:class:`~repro.obs.ClusterWatcher`) and evaluating the rules
        against it — so alert latency is bounded by one supervisor
        cadence, the same budget failover detection gets.

    Examples
    --------
    >>> import asyncio
    >>> from repro.serve.cluster import Cluster, Supervisor
    >>> async def demo():
    ...     async with Cluster(services=2) as cluster:
    ...         async with Supervisor(cluster, interval=0.01) as sup:
    ...             await cluster.create_tenant(
    ...                 "acme", {"name": "bottom_k", "params": {"k": 8}})
    ...             return sup.status()["svc-0"]["status"]
    >>> asyncio.run(demo())
    'healthy'
    """

    def __init__(
        self,
        cluster,
        *,
        config: HealthConfig | None = None,
        interval: float | None = None,
        stall_timeout: float | None = None,
        max_missed: int | None = None,
        policy="restart",
        on_failover=None,
        alerts=None,
    ):
        if config is None:
            defaults = HealthConfig()
            config = HealthConfig(
                interval=interval if interval is not None
                else defaults.interval,
                stall_timeout=stall_timeout if stall_timeout is not None
                else defaults.stall_timeout,
                max_missed=max_missed if max_missed is not None
                else defaults.max_missed,
            )
        elif any(v is not None for v in (interval, stall_timeout, max_missed)):
            raise ValueError(
                "pass either a HealthConfig or the individual keywords, "
                "not both"
            )
        if not callable(policy) and policy not in ("restart", "rehome"):
            raise ValueError(
                f"policy must be 'restart', 'rehome', or a callable; "
                f"got {policy!r}"
            )
        self.cluster = cluster
        self.config = config
        self.policy = policy
        self.on_failover = on_failover
        self.alerts = alerts
        self._watcher = None
        #: Completed and in-progress failovers, oldest first.
        self.events: list[FailoverEvent] = []
        self._health: dict[str, WorkerHealth] = {}
        self._task: asyncio.Task | None = None
        self._last_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "Supervisor":
        """Launch the probe loop (idempotent start is an error)."""
        if self._task is not None:
            raise RuntimeError("supervisor already started")
        self.cluster._supervised += 1
        self._task = asyncio.get_running_loop().create_task(
            self._loop(), name="repro-supervisor"
        )
        return self

    async def stop(self) -> None:
        """Cancel the probe loop (idempotent).  Any in-flight failover
        is awaited to completion first — a half-executed restart must
        not be abandoned mid-swap."""
        if self._task is None:
            return
        task, self._task = self._task, None
        self.cluster._supervised -= 1
        task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await task

    async def __aenter__(self) -> "Supervisor":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the probe loop is active."""
        return self._task is not None and not self._task.done()

    def status(self) -> dict[str, dict]:
        """Per-worker health: probe history plus the cluster's outage
        map (workers mid-failover report ``status="down"``)."""
        down = self.cluster.down_services()
        out: dict[str, dict] = {}
        for name in self.cluster.services:
            health = self._health.get(name)
            row = {
                "status": "healthy",
                "verdict": health.verdict if health else "healthy",
                "missed": health.missed if health else 0,
                "probes": health.probes if health else 0,
            }
            if name in down:
                row["status"] = "down"
                row["outage"] = down[name]
            elif health is not None:
                row["status"] = health.status
            out[name] = row
        return out

    # ------------------------------------------------------------------
    # The probe loop
    # ------------------------------------------------------------------
    async def _loop(self) -> None:
        while True:
            try:
                await self._tick()
            except asyncio.CancelledError:
                raise
            except Exception as err:  # noqa: BLE001 - the loop must survive
                # A tick must never kill supervision; the error is kept
                # for inspection and the next tick retries.
                self._last_error = err
            await asyncio.sleep(self.config.interval)

    async def _tick(self) -> None:
        """Probe every live worker once; fail over the ones that trip."""
        now = asyncio.get_running_loop().time()
        # Forget histories of workers that left the pool (rehomed).
        for name in list(self._health):
            if name not in self.cluster._workers:
                del self._health[name]
        for name, worker in list(self.cluster._workers.items()):
            if self.cluster.is_down(name):
                # A worker already marked down is one of three things:
                # ours to retry (our last recovery attempt failed), a
                # containment outage (the ingest/flush path caught
                # ``ServiceCrashed`` and marked it ``"crashed"`` before
                # we ever probed), or an outage the operator declared
                # (manual maintenance).  We recover the first two and
                # honor the third.
                last = self._last_event(name)
                if last is not None and last.error is not None:
                    await self._failover(name, last.reason)
                    continue
                outage = self.cluster.down_services().get(name, {})
                if outage.get("reason") == "crashed" and (
                        last is None or last.restored_at is not None):
                    await self._failover(name, "crashed")
                continue
            health = self._health.setdefault(name, WorkerHealth(name))
            verdict = probe_service(worker, now, health, self.config)
            tripped = health.observe(
                verdict, worker.events_applied,
                max_missed=self.config.max_missed,
            )
            if tripped:
                await self._failover(name, verdict)
        if self.alerts is not None:
            if self._watcher is None:
                from ...obs.alerts import ClusterWatcher
                self._watcher = ClusterWatcher(self.cluster)
            # The window closes *after* this tick's probes, so an outage
            # still unresolved here (failed recovery, operator-declared
            # downtime) reaches the rules in the same evaluation —
            # worker-down latency is one cadence, not two.  An outage
            # the tick itself repaired shows up as a ``restarts`` delta
            # instead of a (already stale) down flag.
            self.alerts.observe(self._watcher.sample())

    def _last_event(self, name: str) -> FailoverEvent | None:
        """The most recent failover event for worker ``name``."""
        for event in reversed(self.events):
            if event.worker == name:
                return event
        return None

    async def _failover(self, name: str, verdict: str) -> None:
        """Execute one failover inline (probing pauses while it runs).

        The recovery itself runs in its own shielded task: if ``stop()``
        cancels the probe loop mid-failover, the cancellation lands
        *here*, not inside ``restart_service``/``rehome_service`` — the
        swap runs to completion (``stop()`` awaits it) before the loop
        task finishes cancelling.  A half-executed restart abandoned
        mid-swap would leave the worker down with no supervisor left to
        retry.
        """
        loop = asyncio.get_running_loop()
        action = (
            self.policy(name, verdict) if callable(self.policy)
            else self.policy
        )
        event = FailoverEvent(
            worker=name, reason=verdict, action=action,
            detected_at=loop.time(),
        )
        self.events.append(event)
        recovery = loop.create_task(
            self._recover(name, verdict, event),
            name=f"repro-failover-{name}",
        )
        try:
            await asyncio.shield(recovery)
        except asyncio.CancelledError:
            # ``wait`` (not ``await``): the recovery task swallows its
            # own errors into ``event``, and a second cancel here must
            # still not propagate into it.
            await asyncio.wait([recovery])
            raise
        finally:
            self._health.pop(name, None)  # fresh worker, fresh history
            if self.on_failover is not None:
                self.on_failover(event)

    async def _recover(self, name: str, verdict: str,
                       event: FailoverEvent) -> None:
        """Run one recovery action, recording the outcome on ``event``."""
        loop = asyncio.get_running_loop()
        try:
            if event.action == "rehome":
                plan = await self.cluster.rehome_service(name, reason=verdict)
                event.moved = tuple(move.tenant for move in plan.moves)
            else:
                await self.cluster.restart_service(name, reason=verdict)
        except Exception as err:  # noqa: BLE001 - keep serving degraded
            # The worker stays marked down: degraded reads and counted
            # shedding continue, and the next tick retries recovery.
            event.error = repr(err)
        else:
            event.restored_at = loop.time()
