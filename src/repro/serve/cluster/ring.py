"""Consistent-hash ring: deterministic tenant -> service placement.

The cluster multiplexes many tenants onto a fixed pool of worker
services.  Placement must be (a) deterministic across processes — a
recovered cluster, a client-side router, and a test control replay must
all agree where a tenant lives — and (b) *stable under membership
churn*: adding or removing one service should move only about ``1/n`` of
the tenants, not reshuffle everything (the live-rebalance cost is
proportional to how many tenants move).

Both properties come from the classic consistent-hash construction:
every service contributes ``replicas`` virtual nodes, each a point on a
64-bit circle, and a tenant lands on the first virtual node clockwise of
its own hash point.  Hashing uses the repo's stable BLAKE2b/SplitMix64
key hashes (:mod:`repro.core.hashing`) under a dedicated domain salt, so
placement is decorrelated from sampler priorities and shard indices and
reproduces bit-for-bit on any platform.
"""

from __future__ import annotations

import bisect

from ...core.hashing import hash_key, splitmix64

__all__ = ["HashRing"]

_MASK64 = 0xFFFFFFFFFFFFFFFF
#: Domain-separation constant (ASCII "RING0001"): ring points are
#: statistically independent of priority hashes and shard indices even
#: under the same user-facing salt.
_RING_DOMAIN = 0x52494E47_30303031


def _ring_salt(salt: int) -> int:
    """Mix a user salt into the ring-placement hash domain."""
    return splitmix64((salt ^ _RING_DOMAIN) & _MASK64)


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Parameters
    ----------
    nodes:
        Initial service names.
    replicas:
        Virtual nodes per service.  More replicas smooth the load split
        (the per-service share concentrates around ``1/n`` at a relative
        spread of roughly ``1/sqrt(replicas)``) at a small lookup-table
        cost.
    salt:
        Placement salt; rings built with different salts place tenants
        independently.

    Examples
    --------
    >>> ring = HashRing(["svc-0", "svc-1", "svc-2", "svc-3"])
    >>> ring.node_for("tenant-42") == ring.node_for("tenant-42")
    True
    >>> sorted(ring.nodes)
    ['svc-0', 'svc-1', 'svc-2', 'svc-3']
    """

    def __init__(self, nodes=(), *, replicas: int = 64, salt: int = 0):
        if replicas < 1:
            raise ValueError("replicas must be a positive integer")
        self.replicas = int(replicas)
        self.salt = int(salt)
        self._nodes: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> tuple[str, ...]:
        """The member service names, sorted."""
        return tuple(sorted(self._nodes))

    def _vnode_points(self, node: str) -> list[int]:
        """The virtual-node hash points one service contributes."""
        salt = _ring_salt(self.salt)
        return [
            hash_key(f"{node}#{replica}", salt)
            for replica in range(self.replicas)
        ]

    def add_node(self, node: str) -> None:
        """Add a service's virtual nodes to the ring."""
        if not isinstance(node, str) or not node:
            raise ValueError("node must be a non-empty string")
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for point in self._vnode_points(node):
            at = bisect.bisect_left(self._points, point)
            # 64-bit collisions across distinct vnode labels are ~2**-64
            # per pair; break the tie deterministically by owner name so
            # two processes building the same ring agree regardless.
            while (
                at < len(self._points)
                and self._points[at] == point
                and self._owners[at] < node
            ):
                at += 1
            self._points.insert(at, point)
            self._owners.insert(at, node)

    def remove_node(self, node: str) -> None:
        """Remove a service (its tenants reassign to the survivors)."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def node_for(self, key) -> str:
        """The service owning ``key``: first virtual node clockwise.

        Deterministic in (members, ``replicas``, ``salt``) — the same
        inputs place the same key identically in every process.
        """
        if not self._nodes:
            raise ValueError("ring has no nodes")
        point = hash_key(key, _ring_salt(self.salt))
        at = bisect.bisect_right(self._points, point)
        if at == len(self._points):  # wrap past 2**64 - 1
            at = 0
        return self._owners[at]

    def assignments(self, keys) -> dict[str, list]:
        """Group ``keys`` by owning service (owners in sorted order)."""
        out: dict[str, list] = {node: [] for node in self.nodes}
        for key in keys:
            out[self.node_for(key)].append(key)
        return out

    def copy(self) -> "HashRing":
        """An independent ring with the same members and parameters."""
        return HashRing(self._nodes, replicas=self.replicas, salt=self.salt)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly form (inverse of :meth:`from_dict`)."""
        return {
            "nodes": list(self.nodes),
            "replicas": self.replicas,
            "salt": self.salt,
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "HashRing":
        """Rebuild a ring persisted by :meth:`to_dict`."""
        return cls(
            spec.get("nodes", ()),
            replicas=int(spec.get("replicas", 64)),
            salt=int(spec.get("salt", 0)),
        )
