"""Client-side robustness: retry policy, backoff, circuit breaker.

These are the :class:`~repro.serve.cluster.frontend.ClusterClient`'s
fault-handling primitives, kept dependency-free and clock-injectable so
they are unit-testable without a server:

- :class:`RetryPolicy` — bounded exponential backoff with jitter plus a
  per-request timeout.  Attempts are capped (``max_attempts``), delays
  grow geometrically from ``base_delay`` to ``max_delay``, and each
  delay is jittered downward by up to ``jitter`` of itself so a herd of
  clients retrying the same outage spreads out instead of thundering.
- :class:`CircuitBreaker` — a per-target breaker: after
  ``failure_threshold`` *consecutive* transport failures the circuit
  opens and calls fail fast (:class:`CircuitOpenError`) without touching
  the network; after ``reset_timeout`` seconds the circuit goes
  half-open and lets probes through — one success closes it, one
  failure re-opens it for another full timeout.

What counts as retryable is the client's decision (transport errors,
timeouts, and server replies flagged ``"retryable": true`` — e.g.
``Unavailable`` during failover, ``RateLimited`` from the frontend's
per-connection frame limit); what counts as a *breaker* failure is
narrower — only transport-level failures, because an application-level
pushback reply proves the target is alive.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

__all__ = ["RetryPolicy", "CircuitBreaker", "CircuitOpenError"]


class CircuitOpenError(ConnectionError):
    """The circuit breaker is open: the target failed repeatedly and the
    reset timeout has not elapsed — fail fast, do not touch the wire."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter.

    ``max_attempts`` caps total tries (first call included);
    ``request_timeout`` bounds each round trip (``None`` disables).  The
    delay before retry ``attempt`` (1-based) is
    ``min(max_delay, base_delay * multiplier**(attempt-1))``, jittered
    down by up to ``jitter`` of itself.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    request_timeout: float | None = 30.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not (0 <= self.jitter <= 1):
            raise ValueError("jitter must be in [0, 1]")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive (or None)")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """The backoff before retry ``attempt`` (1-based), jittered.

        >>> policy = RetryPolicy(base_delay=0.1, multiplier=2.0,
        ...                      max_delay=0.5, jitter=0.0)
        >>> [policy.delay(i) for i in (1, 2, 3, 4)]
        [0.1, 0.2, 0.4, 0.5]
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if self.jitter == 0:
            return base
        draw = (rng or random).random()
        return base * (1 - self.jitter * draw)


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe state.

    >>> now = [0.0]
    >>> breaker = CircuitBreaker(failure_threshold=2, reset_timeout=1.0,
    ...                          clock=lambda: now[0])
    >>> breaker.record_failure(); breaker.record_failure()
    >>> breaker.state, breaker.allow()
    ('open', False)
    >>> now[0] += 1.0
    >>> breaker.state, breaker.allow()  # half-open: probes allowed
    ('half_open', True)
    >>> breaker.record_success()
    >>> breaker.state
    'closed'
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 5.0, *, clock=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock if clock is not None else time.monotonic
        self._failures = 0
        self._opened_at: float | None = None

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open``."""
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.reset_timeout:
            return "half_open"
        return "open"

    @property
    def failures(self) -> int:
        """Consecutive transport failures since the last success."""
        return self._failures

    def allow(self) -> bool:
        """Whether a call may touch the wire right now."""
        return self.state != "open"

    def record_success(self) -> None:
        """A call succeeded: close the circuit, clear the streak."""
        self._failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        """A transport failure: extend the streak; trip (or re-trip)
        the circuit at the threshold."""
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._opened_at = self._clock()
