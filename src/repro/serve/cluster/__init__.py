"""Multi-tenant serving cluster: ring routing, quotas, live rebalancing.

This package scales the single-service runtime (:mod:`repro.serve`) out
to many tenants on a fixed worker pool:

- :class:`Cluster` — the facade: tenant namespace, consistent-hash
  placement, quota-fair ingest, snapshot-isolated tenant-scoped reads,
  live rebalancing, crash recovery with placement reconciliation.
- :class:`~repro.serve.cluster.ring.HashRing` — deterministic
  virtual-node consistent hashing (``~1/n`` movement under churn).
- :class:`~repro.serve.cluster.mux.TenantMuxSampler` — the registered
  ``"tenant_mux"`` sampler each worker wraps: per-tenant children keyed
  by composite ``(tenant, key)`` rows, membership changes as WAL-logged
  admin rows.
- :class:`~repro.serve.cluster.tenants.TenantRegistry` /
  :class:`~repro.serve.cluster.tenants.TenantQuota` — namespace, token
  buckets, queue-share caps, counted per-reason rejections.
- :mod:`~repro.serve.cluster.rebalance` — the gate/quiesce/extract/
  install/commit/drop handoff protocol (bit-exact moved state).
- :class:`ClusterFrontend` / :class:`ClusterClient` — the TCP front end
  (length-prefixed JSON frames) and its thin async client.
- :class:`~repro.serve.cluster.metrics.ClusterMetrics` — per-service,
  per-tenant, and merged metric aggregation.

See the "Cluster" section of ``docs/architecture.md`` for the ring
diagram, quota semantics, and the rebalance protocol proof sketch.
"""

from .cluster import Cluster
from .frontend import ClusterClient, ClusterFrontend, FrameError
from .metrics import ClusterMetrics
from .mux import TenantMuxSampler
from .rebalance import RebalancePlan, TenantMove
from .ring import HashRing
from .tenants import TenantQuota, TenantRecord, TenantRegistry, TokenBucket

__all__ = [
    "Cluster",
    "ClusterClient",
    "ClusterFrontend",
    "ClusterMetrics",
    "FrameError",
    "HashRing",
    "RebalancePlan",
    "TenantMove",
    "TenantMuxSampler",
    "TenantQuota",
    "TenantRecord",
    "TenantRegistry",
    "TokenBucket",
]
