"""Multi-tenant serving cluster: ring routing, quotas, live rebalancing.

This package scales the single-service runtime (:mod:`repro.serve`) out
to many tenants on a fixed worker pool:

- :class:`Cluster` — the facade: tenant namespace, consistent-hash
  placement, quota-fair ingest, snapshot-isolated tenant-scoped reads,
  live rebalancing, crash recovery with placement reconciliation.
- :class:`~repro.serve.cluster.ring.HashRing` — deterministic
  virtual-node consistent hashing (``~1/n`` movement under churn).
- :class:`~repro.serve.cluster.mux.TenantMuxSampler` — the registered
  ``"tenant_mux"`` sampler each worker wraps: per-tenant children keyed
  by composite ``(tenant, key)`` rows, membership changes as WAL-logged
  admin rows.
- :class:`~repro.serve.cluster.tenants.TenantRegistry` /
  :class:`~repro.serve.cluster.tenants.TenantQuota` — namespace, token
  buckets, queue-share caps, counted per-reason rejections.
- :mod:`~repro.serve.cluster.rebalance` — the gate/quiesce/extract/
  install/commit/drop handoff protocol (bit-exact moved state).
- :class:`ClusterFrontend` / :class:`ClusterClient` — the TCP front end
  (length-prefixed JSON frames, per-connection hardening) and its thin
  async client (optional retry/backoff, circuit breaker, idempotent
  ingest retries).
- :class:`Supervisor` — the self-healing loop: health probes
  (:mod:`~repro.serve.cluster.health`), automatic restart-in-place or
  rehome failover, degraded serving while a worker is down.
- :class:`~repro.serve.cluster.metrics.ClusterMetrics` /
  :class:`~repro.serve.cluster.metrics.FrontendMetrics` — per-service,
  per-tenant, merged, and connection-level metric aggregation.

See the "Cluster" and "Fault tolerance" sections of
``docs/architecture.md`` for the ring diagram, quota semantics, the
rebalance protocol proof sketch, and the failure model.
"""

from .cluster import Cluster, StaleFrontier
from .controller import ClusterController
from .frontend import (
    ClusterClient,
    ClusterFrontend,
    FrameDisconnect,
    FrameError,
    FrameTimeout,
)
from .health import HealthConfig, WorkerHealth
from .metrics import ClusterMetrics, FrontendMetrics
from .mux import TenantMuxSampler
from .rebalance import RebalancePlan, TenantMove
from .retry import CircuitBreaker, CircuitOpenError, RetryPolicy
from .ring import HashRing
from .supervisor import FailoverEvent, Supervisor
from .tenants import TenantQuota, TenantRecord, TenantRegistry, TokenBucket

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Cluster",
    "ClusterClient",
    "ClusterController",
    "ClusterFrontend",
    "ClusterMetrics",
    "FailoverEvent",
    "FrameDisconnect",
    "FrameError",
    "FrameTimeout",
    "FrontendMetrics",
    "HashRing",
    "HealthConfig",
    "RebalancePlan",
    "RetryPolicy",
    "StaleFrontier",
    "Supervisor",
    "TenantMove",
    "TenantMuxSampler",
    "TenantQuota",
    "TenantRecord",
    "TenantRegistry",
    "TokenBucket",
    "WorkerHealth",
]
