"""Cluster-wide metrics: per-service, per-tenant, and merged views.

Workers already maintain :class:`~repro.serve.metrics.ServiceMetrics`
inline; the cluster layer never re-derives a counter.  ``collect`` takes
one consistent pass over the pool: each worker's metrics snapshot keyed
by service name, a single merged total (via ``ServiceMetrics.merge``,
the satellite this PR extracted exactly for this), and a per-tenant
table joining the registry's admission/rejection counters with the
worker-side applied counts and per-tenant drop attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics import ServiceMetrics

__all__ = ["ClusterMetrics"]


@dataclass
class ClusterMetrics:
    """Aggregated view over a worker pool and its tenant registry.

    ``services`` maps worker name to its own ``ServiceMetrics``;
    ``total`` is their label-wise merge; ``tenants`` maps tenant id to a
    flat row: current placement, cluster-side admissions, worker-side
    applied events, per-tenant backpressure drops, and quota rejections
    by reason.
    """

    services: dict[str, ServiceMetrics] = field(default_factory=dict)
    total: ServiceMetrics = field(default_factory=ServiceMetrics)
    tenants: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def collect(cls, workers: dict, registry) -> "ClusterMetrics":
        """Snapshot ``workers`` (name -> ``StreamService``) and
        ``registry`` into one aggregated view."""
        out = cls()
        for name in sorted(workers):
            snapshot = ServiceMetrics.from_dict(workers[name].metrics.to_dict())
            out.services[name] = snapshot
            out.total.merge(snapshot)
        for tenant in registry.tenants():
            record = registry.get(tenant)
            worker = workers.get(record.service)
            mux = worker.sampler if worker is not None else None
            out.tenants[tenant] = {
                "service": record.service,
                "events_enqueued": record.events_enqueued,
                "events_applied": (
                    mux.events_applied_for(tenant)
                    if mux is not None and mux.has_tenant(tenant)
                    else 0
                ),
                "events_dropped": (
                    worker.metrics.events_dropped_by.get(tenant, 0)
                    if worker is not None
                    else 0
                ),
                "rejected": dict(record.rejected),
                "migrating": record.migrating,
            }
        return out

    def to_dict(self) -> dict:
        """JSON-friendly snapshot (services and tenants name-sorted)."""
        return {
            "services": {
                name: metrics.to_dict()
                for name, metrics in sorted(self.services.items())
            },
            "total": self.total.to_dict(),
            "tenants": {
                tenant: dict(row)
                for tenant, row in sorted(self.tenants.items())
            },
        }

    def as_dict(self) -> dict:
        """Alias of :meth:`to_dict` (mirrors ``ServiceMetrics.as_dict``)."""
        return self.to_dict()
