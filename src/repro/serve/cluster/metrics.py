"""Cluster-wide metrics: per-service, per-tenant, and merged views.

Workers already maintain :class:`~repro.serve.metrics.ServiceMetrics`
inline; the cluster layer never re-derives a counter.  ``collect`` takes
one consistent pass over the pool: each worker's metrics snapshot keyed
by service name, a single merged total (via ``ServiceMetrics.merge``,
the satellite this PR extracted exactly for this), and a per-tenant
table joining the registry's admission/rejection counters with the
worker-side applied counts and per-tenant drop attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics import ServiceMetrics

__all__ = ["ClusterMetrics", "FrontendMetrics"]


@dataclass
class FrontendMetrics:
    """Connection-level counters for :class:`~.frontend.ClusterFrontend`.

    Every hardening decision the front end makes is counted here, so a
    misbehaving client shows up in a dashboard rather than only in the
    server's latency: connections refused at the concurrency cap,
    frames refused by the per-connection rate limit, idle/read timeouts,
    quiet mid-frame disconnects, and ingest replies served from the
    idempotency table instead of re-admitting.
    """

    connections_opened: int = 0
    connections_closed: int = 0
    connections_active: int = 0
    connections_rejected: int = 0
    frames_read: int = 0
    frames_rate_limited: int = 0
    idle_timeouts: int = 0
    read_timeouts: int = 0
    disconnects_mid_frame: int = 0
    frame_errors: int = 0
    replies_deduped: int = 0
    #: Observability surface: Prometheus expositions served (HTTP sniff
    #: or ``scrape`` frame verb) and ``trace`` verb reads answered.
    scrapes_served: int = 0
    trace_reads: int = 0

    def to_dict(self) -> dict:
        """JSON-friendly snapshot."""
        return {
            "connections_opened": self.connections_opened,
            "connections_closed": self.connections_closed,
            "connections_active": self.connections_active,
            "connections_rejected": self.connections_rejected,
            "frames_read": self.frames_read,
            "frames_rate_limited": self.frames_rate_limited,
            "idle_timeouts": self.idle_timeouts,
            "read_timeouts": self.read_timeouts,
            "disconnects_mid_frame": self.disconnects_mid_frame,
            "frame_errors": self.frame_errors,
            "replies_deduped": self.replies_deduped,
            "scrapes_served": self.scrapes_served,
            "trace_reads": self.trace_reads,
        }

    def as_dict(self) -> dict:
        """Alias of :meth:`to_dict`."""
        return self.to_dict()


@dataclass
class ClusterMetrics:
    """Aggregated view over a worker pool and its tenant registry.

    ``services`` maps worker name to its own ``ServiceMetrics``;
    ``total`` is their label-wise merge; ``tenants`` maps tenant id to a
    flat row: current placement, cluster-side admissions, worker-side
    applied events, per-tenant backpressure drops, and quota rejections
    by reason.
    """

    services: dict[str, ServiceMetrics] = field(default_factory=dict)
    total: ServiceMetrics = field(default_factory=ServiceMetrics)
    tenants: dict[str, dict] = field(default_factory=dict)
    #: Workers currently marked down: name -> outage description
    #: (reason, since, degraded_reads, shed_events).
    services_down: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def collect(cls, workers: dict, registry,
                down: dict | None = None) -> "ClusterMetrics":
        """Snapshot ``workers`` (name -> ``StreamService``) and
        ``registry`` into one aggregated view.  ``down`` is the
        cluster's outage map (``Cluster.down_services()``)."""
        out = cls()
        down = down or {}
        out.services_down = {name: dict(row) for name, row in down.items()}
        for name in sorted(workers):
            snapshot = ServiceMetrics.from_dict(workers[name].metrics.to_dict())
            out.services[name] = snapshot
            out.total.merge(snapshot)
        for tenant in registry.tenants():
            record = registry.get(tenant)
            worker = workers.get(record.service)
            mux = worker.sampler if worker is not None else None
            out.tenants[tenant] = {
                "service": record.service,
                "events_enqueued": record.events_enqueued,
                "events_applied": (
                    mux.events_applied_for(tenant)
                    if mux is not None and mux.has_tenant(tenant)
                    else 0
                ),
                "events_dropped": (
                    worker.metrics.events_dropped_by.get(tenant, 0)
                    if worker is not None
                    else 0
                ),
                "rejected": dict(record.rejected),
                "migrating": record.migrating,
                "unavailable": record.service in down,
            }
        return out

    def to_dict(self) -> dict:
        """JSON-friendly snapshot (services and tenants name-sorted)."""
        return {
            "services": {
                name: metrics.to_dict()
                for name, metrics in sorted(self.services.items())
            },
            "total": self.total.to_dict(),
            "tenants": {
                tenant: dict(row)
                for tenant, row in sorted(self.tenants.items())
            },
            "services_down": {
                name: dict(row)
                for name, row in sorted(self.services_down.items())
            },
        }

    def as_dict(self) -> dict:
        """Alias of :meth:`to_dict` (mirrors ``ServiceMetrics.as_dict``)."""
        return self.to_dict()
