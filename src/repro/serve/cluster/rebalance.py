"""Live tenant rebalancing: move sampler state between running workers.

Tenants move because the pool changed (``add_service`` /
``remove_service``) or because placements drifted from the ring
(``rebalance``).  A move ships the tenant's *portable sampler state* —
``to_state()``, RNG continuation included — from source to destination
worker while the rest of the cluster keeps serving.  The execution order
is what makes it safe:

1. **Gate** every moving tenant (blocking ingest suspends, non-blocking
   rejects) and **quiesce**: wait out ingests already in flight, so every
   event a producer was promised is admitted.
2. **Flush + extract**: flush each source worker (the barrier now covers
   all accepted events) and, under its snapshot lock, capture each moving
   tenant's child state and applied count.
3. **Install durably**: enqueue install rows on the destinations and
   flush them — the moved state is in the destination WAL *before*
   anything is removed.
4. **Commit placement**: repoint the registry and persist the cluster
   meta.
5. **Drop sources**: enqueue drop rows on the sources and flush.
6. **Ungate** (in ``finally``): suspended producers resume against the
   new placement.

A crash between (3) and (5) leaves the tenant on two workers; recovery's
reconciliation resolves by the persisted placement, and whichever copy
survives is bit-exact at its WAL frontier — the install row and the
source's original WAL each replay to the same state, because the state
that moved *is* the flushed source state.  No step discards events that
ever reached a WAL, so a mid-rebalance crash loses at most the
admitted-but-unlogged tail, exactly the single-service guarantee.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from ...api import SamplerSpec
from ..service import StreamService
from .mux import drop_op, install_op
from .tenants import REJECT_REASONS

__all__ = ["TenantMove", "RebalancePlan", "plan_moves", "execute",
           "add_service", "remove_service", "rebalance", "rehome_service"]


@dataclass(frozen=True)
class TenantMove:
    """One tenant's handoff: ``source`` worker to ``destination`` worker."""

    tenant: str
    source: str
    destination: str


@dataclass(frozen=True)
class RebalancePlan:
    """An executable set of tenant moves (grouped views for the protocol)."""

    moves: tuple[TenantMove, ...]

    def __len__(self) -> int:
        return len(self.moves)

    def by_source(self) -> dict[str, list[TenantMove]]:
        """Moves grouped by source worker, source-sorted."""
        groups: dict[str, list[TenantMove]] = {}
        for move in self.moves:
            groups.setdefault(move.source, []).append(move)
        return {name: groups[name] for name in sorted(groups)}

    def by_destination(self) -> dict[str, list[TenantMove]]:
        """Moves grouped by destination worker, destination-sorted."""
        groups: dict[str, list[TenantMove]] = {}
        for move in self.moves:
            groups.setdefault(move.destination, []).append(move)
        return {name: groups[name] for name in sorted(groups)}


def plan_moves(cluster) -> RebalancePlan:
    """Every tenant whose ring owner differs from its current placement."""
    moves = []
    for tenant in cluster.registry.tenants():
        record = cluster.registry.get(tenant)
        target = cluster.ring.node_for(tenant)
        if target != record.service:
            moves.append(TenantMove(tenant, record.service, target))
    return RebalancePlan(tuple(moves))


async def execute(cluster, plan: RebalancePlan) -> RebalancePlan:
    """Run the six-step handoff protocol for every move in ``plan``."""
    if not plan.moves:
        return plan
    for move in plan.moves:
        if move.source not in cluster._workers:
            raise ValueError(f"unknown source service {move.source!r}")
        if move.destination not in cluster._workers:
            raise ValueError(f"unknown destination service {move.destination!r}")
    #: Destination copies enqueued but not yet committed (step 4).  A
    #: failure before commit must roll these back: the registry still
    #: points at the sources, so a retry would re-plan the same moves and
    #: install over the leftover copies.
    installed: dict[str, list[TenantMove]] = {}
    states: dict[str, tuple[dict, int]] = {}
    committed = False
    try:
        # (1) Gate, then drain in-flight ingests.
        for move in plan.moves:
            cluster._gate(move.tenant)
        for move in plan.moves:
            await cluster._quiesce(move.tenant)

        # (2) Flush each source, extract portable state under its
        # snapshot lock (no flush can interleave with the extraction).
        for source, group in plan.by_source().items():
            worker = cluster._workers[source]
            await worker.flush()
            async with worker.snapshot():
                mux = worker.sampler
                for move in group:
                    states[move.tenant] = (
                        mux.tenant_sampler(move.tenant).to_state(),
                        mux.events_applied_for(move.tenant),
                    )

        # (3) Install on destinations; flush makes the copies durable
        # *before* any source forgets anything.
        for destination, group in plan.by_destination().items():
            worker = cluster._workers[destination]
            await worker.ingest_many([
                install_op(move.tenant, *states[move.tenant])
                for move in group
            ])
            installed[destination] = group
            await worker.flush()

        # (4) Commit the new placements.
        for move in plan.moves:
            record = cluster.registry.get(move.tenant)
            record.service = move.destination
            record.events_enqueued = states[move.tenant][1]
        cluster._save_meta()
        committed = True

        # (5) Retire the source copies.
        for source, group in plan.by_source().items():
            worker = cluster._workers[source]
            await worker.ingest_many(
                [drop_op(move.tenant) for move in group]
            )
            await worker.flush()
    except BaseException:
        if not committed:
            # Unwind a partially-applied commit first: step (4) repoints
            # registry records *before* the meta write lands, so a failed
            # write must put them back on the sources (whose copies are
            # intact and about to become authoritative again).
            for move in plan.moves:
                if move.tenant not in cluster.registry:
                    continue
                record = cluster.registry.get(move.tenant)
                if record.service == move.destination:
                    record.service = move.source
                    record.events_enqueued = states[move.tenant][1]
            # Then roll back uncommitted destination copies (best effort
            # — the drop rows enqueue behind the install rows on each
            # worker's own queue, so they find the tenant present; a
            # worker too broken to accept them is resolved by cold
            # reconciliation).  Without this, a live retry would re-plan
            # the same moves and install over the leftover copies.
            for destination, group in installed.items():
                worker = cluster._workers[destination]
                with contextlib.suppress(Exception):
                    await worker.ingest_many(
                        [drop_op(move.tenant) for move in group]
                    )
                    await worker.flush()
        raise
    finally:
        # (6) Reopen the gates whatever happened; a failed handoff left
        # either the old or the new placement fully intact.
        for move in plan.moves:
            cluster._ungate(move.tenant)
    return plan


async def rebalance(cluster) -> RebalancePlan:
    """Converge placements back onto the ring (after drift or churn)."""
    cluster._check_started()
    return await execute(cluster, plan_moves(cluster))


async def add_service(cluster, name: str | None = None) -> str:
    """Grow the pool by one started worker and migrate its ring share in.

    Consistent hashing keeps the move set to roughly ``tenants / n``:
    only tenants whose ring owner *becomes* the new worker relocate.
    """
    cluster._check_started()
    if name is None:
        # Skip live workers AND on-disk tombstones of retired ones — a
        # removed worker's directory stays behind, and a fresh service
        # refuses to start over it.
        taken = set(cluster._workers)

        def free(candidate: str) -> bool:
            if candidate in taken:
                return False
            return cluster.dir is None or not (cluster.dir / candidate).exists()

        index = len(taken)
        while not free(f"svc-{index}"):
            index += 1
        name = f"svc-{index}"
    if name in cluster._workers:
        raise ValueError(f"service {name!r} already exists")
    worker = cluster._build_worker(name)
    await worker.start()
    cluster._workers[name] = worker
    cluster.ring.add_node(name)
    try:
        await execute(cluster, plan_moves(cluster))
    finally:
        cluster._save_meta()
    return name


async def rehome_service(cluster, name: str, *,
                         reason: str = "manual") -> RebalancePlan:
    """Evacuate a *dead* worker's tenants onto the surviving pool.

    The live-handoff protocol (:func:`execute`) cannot run here — the
    source worker's consumer is gone, so there is nothing to gate,
    quiesce, or flush.  Instead the dead worker's **durable** state is
    read offline (``StreamService.recover`` on its directory: newest
    valid checkpoint + WAL-tail replay, bit-exact at the durable
    frontier, never started) and installed on the ring-chosen survivors
    with the same durable-before-commit ordering as a live move:

    1. Mark the worker down (reads degrade, ingest sheds) and abort its
       remains; recover its directory offline.
    2. Remove it from the *ring* only, so destinations resolve to
       survivors.  The worker stays in the pool until the evacuation
       commits: a failed install must leave it discoverable, because
       both the supervisor's retry scan and a manual
       ``rehome_service(name)`` retry look workers up in the pool.
    3. Per destination: enqueue install rows (tenants whose create
       never became durable get an install of a fresh spec-built state
       — they restart with counters reset; installs *overwrite*, so a
       retry against a survivor already holding a copy from an earlier
       failed attempt is idempotent) and flush, *then* repoint the
       registry.  FIFO worker queues order any racing post-repoint
       ingest behind the install row, so no event meets an unknown
       tenant.
    4. Retire the worker from the pool and persist the meta (its
       directory stays behind as an inert tombstone, exactly like
       ``remove_service``).  Tenants resume at their durable frontier;
       events past it were never durable anywhere and are the
       producer's to re-send — the single-service loss contract.

    On failure the worker goes back on the ring and stays in the pool,
    marked down: tenants already repointed keep serving from their
    survivors (their installs are durable), the rest keep degrading,
    and the next supervisor tick — or a manual retry — re-plans exactly
    the tenants still placed on the dead worker.

    On an in-memory cluster there is nothing durable: every tenant is
    recreated fresh from its spec on its new worker (documented state
    loss, counters reset).
    """
    cluster._check_started()
    if name not in cluster._workers:
        raise ValueError(f"unknown service {name!r}")
    if len(cluster._workers) == 1:
        raise ValueError("cannot rehome the last service")
    cluster.mark_service_down(name, reason)
    await cluster._workers[name].abort()

    # (1) The dead worker's durable state, read offline.
    states: dict[str, tuple[dict, int]] = {}
    if cluster.dir is not None and (
        cluster.dir / name / "service.pkl"
    ).exists():
        snapshot = StreamService.recover(cluster.dir / name)
        mux = snapshot.sampler
        for tenant in mux.tenants():
            states[tenant] = (
                mux.tenant_sampler(tenant).to_state(),
                mux.events_applied_for(tenant),
            )

    # (2) Off the ring (placement), still in the pool (discoverability).
    cluster.ring.remove_node(name)
    try:
        # (3) Install on survivors, then commit placements.
        moves = []
        by_destination: dict[str, list] = {}
        for tenant in cluster.registry.tenants():
            record = cluster.registry.get(tenant)
            if record.service != name:
                continue
            destination = cluster.ring.node_for(tenant)
            moves.append(TenantMove(tenant, name, destination))
            by_destination.setdefault(destination, []).append(record)
        for destination, group in by_destination.items():
            worker = cluster._workers[destination]
            await worker.ingest_many([
                install_op(record.tenant, *states[record.tenant])
                if record.tenant in states
                else install_op(record.tenant, _fresh_state(record.spec))
                for record in group
            ])
            await worker.flush()
            for record in group:
                record.service = destination
                if record.tenant in states:
                    record.events_enqueued = states[record.tenant][1]
                else:
                    record.events_enqueued = 0
                    record.rejected = {r: 0 for r in REJECT_REASONS}
    except BaseException:
        # Leave the worker down but retryable: back on the ring, still
        # in the pool.  The supervisor's next tick re-runs the
        # evacuation for the tenants still placed here.
        cluster.ring.add_node(name)
        raise

    # (4) The outage is over: the dead worker serves nothing now.
    cluster._workers.pop(name)
    cluster.mark_service_up(name)
    cluster._save_meta()
    return RebalancePlan(tuple(moves))


def _fresh_state(spec) -> dict:
    """A brand-new sampler state built from ``spec``.

    Shipping *installs* (which overwrite) instead of create rows keeps a
    retried rehome idempotent: a create row replayed against a survivor
    that already applied it would raise ``tenant already exists`` inside
    the consumer and crash an otherwise healthy worker.
    """
    if not isinstance(spec, SamplerSpec):
        spec = SamplerSpec.from_dict(spec)
    return spec.build().to_state()


async def remove_service(cluster, name: str) -> RebalancePlan:
    """Drain a worker's tenants to the survivors, then retire it.

    The worker stops (final checkpoint, WAL closed) only after every one
    of its tenants is durably installed elsewhere; its directory remains
    on disk as an inert tombstone.
    """
    cluster._check_started()
    if name not in cluster._workers:
        raise ValueError(f"unknown service {name!r}")
    if len(cluster._workers) == 1:
        raise ValueError("cannot remove the last service")
    cluster.ring.remove_node(name)
    try:
        plan = await execute(cluster, plan_moves(cluster))
    except BaseException:
        cluster.ring.add_node(name)
        cluster._save_meta()
        raise
    worker = cluster._workers.pop(name)
    await worker.stop()
    cluster._save_meta()
    return plan
