"""The tenant multiplexer: many tenant samplers behind one service.

A cluster worker is an ordinary :class:`~repro.serve.StreamService` — one
bounded queue, one micro-batcher, one WAL, one checkpoint store — whose
wrapped sampler is a :class:`TenantMuxSampler`: a registered
``StreamSampler`` holding an independent child sampler per tenant.  Each
event row carries a composite ``(tenant, key)`` key; ``update_many``
groups a batch by tenant and feeds each child its sub-stream through the
vectorized kernels, preserving per-tenant order, so the PR2
chunking-invariance contract lifts directly: any flush/chunk boundaries
produce bit-identical per-tenant states.

Tenant membership changes are **events in the stream**: creating,
installing (rebalance handoff), and dropping a tenant are admin rows
(:func:`create_op` / :func:`install_op` / :func:`drop_op`) ingested
through the same queue as data.  That single decision buys the whole
durability story for free — admin ops are WAL-logged and ordered
relative to the tenant's own events, so ``StreamService.recover`` replays
membership and data together and lands on a bit-exact multi-tenant state
without any cluster-specific recovery code.

Because every child speaks ``to_state()``/``from_state()`` (the paper's
mergeable-summary machinery), a tenant's entire sampler — RNG
continuation included — is *portable*: extract it on one worker, ship it
inside an install op to another, and the moved tenant's estimates are
bit-identical to an unmoved control replay.  That portability is what the
live rebalancer (:mod:`repro.serve.cluster.rebalance`) is built on.
"""

from __future__ import annotations

import numpy as np

from ...api.protocol import StreamSampler, query_support
from ...api.registry import SamplerSpec, register_sampler, sampler_from_state

__all__ = [
    "TenantMuxSampler",
    "ADMIN_KEY",
    "compose_rows",
    "create_op",
    "install_op",
    "drop_op",
]

#: Reserved tenant field marking an admin row; real tenant ids must not
#: start with ``"__"`` (enforced by the tenant registry).
ADMIN_KEY = "__mux_admin__"

_TENANT_SCOPED = (
    "tenant-scoped: query the tenant's child sampler "
    "(Cluster.query(tenant, ...) / TenantMuxSampler.tenant_sampler)"
)


def compose_rows(tenant: str, keys) -> list[tuple]:
    """Composite ``(tenant, key)`` rows for one tenant's key batch."""
    if isinstance(keys, np.ndarray):
        keys = keys.tolist()
    return [(tenant, key) for key in keys]


def create_op(tenant: str, spec: SamplerSpec | dict) -> tuple:
    """An admin row creating ``tenant`` with a fresh sampler from ``spec``."""
    spec = spec.as_dict() if isinstance(spec, SamplerSpec) else dict(spec)
    return (ADMIN_KEY, {"op": "create", "tenant": tenant, "spec": spec})


def install_op(tenant: str, state: dict, applied: int = 0) -> tuple:
    """An admin row installing ``tenant`` from a checkpointed sampler state.

    ``applied`` carries the tenant's event count at extraction so the
    per-tenant applied counters continue across a rebalance handoff.
    """
    return (
        ADMIN_KEY,
        {"op": "install", "tenant": tenant, "state": state,
         "applied": int(applied)},
    )


def drop_op(tenant: str) -> tuple:
    """An admin row removing ``tenant`` and its sampler state."""
    return (ADMIN_KEY, {"op": "drop", "tenant": tenant})


@register_sampler("tenant_mux")
class TenantMuxSampler(StreamSampler):
    """A registered sampler multiplexing independent per-tenant children.

    Parameters
    ----------
    tenants:
        Optional initial membership: ``{tenant_id: spec}`` where each
        spec is a :class:`~repro.api.SamplerSpec` or its
        ``{"name", "params"}`` dict form.  Tenants are usually created
        through admin rows in the event stream instead (see
        :func:`create_op`), which is what makes membership durable under
        the serving runtime's WAL.

    Examples
    --------
    >>> mux = TenantMuxSampler({"acme": {"name": "bottom_k", "params": {"k": 8, "rng": 1}}})
    >>> mux.update(("acme", "item-1"), 2.0)
    True
    >>> mux.tenants()
    ('acme',)
    """

    mergeable = False
    default_estimate_kind = "total"
    #: The mux itself answers no aggregates: queries are tenant-scoped
    #: and run against the per-tenant child samplers, which declare their
    #: own capabilities.
    query_capabilities = query_support(
        sum=_TENANT_SCOPED,
        count=_TENANT_SCOPED,
        mean=_TENANT_SCOPED,
        distinct=_TENANT_SCOPED,
        topk=_TENANT_SCOPED,
        quantile=_TENANT_SCOPED,
    )
    query_variance = _TENANT_SCOPED

    def __init__(self, tenants: dict | None = None):
        self._children: dict[str, StreamSampler] = {}
        self._specs: dict[str, dict] = {}
        self._applied: dict[str, int] = {}
        for tenant, spec in (tenants or {}).items():
            self._admin_create(tenant, spec)

    # ------------------------------------------------------------------
    # Membership (applied through admin rows in the stream)
    # ------------------------------------------------------------------
    @staticmethod
    def _check_tenant_id(tenant) -> str:
        """Validate a tenant id (a plain string outside the admin domain)."""
        if not isinstance(tenant, str) or not tenant:
            raise ValueError("tenant id must be a non-empty string")
        if tenant.startswith("__"):
            raise ValueError(
                f"tenant id {tenant!r} uses the reserved '__' prefix"
            )
        return tenant

    def _admin_create(self, tenant: str, spec) -> None:
        """Create a fresh child sampler for ``tenant`` from ``spec``."""
        self._check_tenant_id(tenant)
        if tenant in self._children:
            raise ValueError(f"tenant {tenant!r} already exists")
        spec = spec if isinstance(spec, SamplerSpec) else SamplerSpec.from_dict(spec)
        self._children[tenant] = spec.build()
        self._specs[tenant] = spec.as_dict()
        self._applied[tenant] = 0

    def _admin_install(self, tenant: str, state: dict, applied: int) -> None:
        """Install ``tenant`` from a portable sampler state (handoff).

        Installing over an existing copy replaces it: the shipped state
        is the flushed source state and therefore authoritative, which
        makes the op idempotent when a failed handoff is retried against
        a destination still holding an earlier, uncommitted copy.
        """
        self._check_tenant_id(tenant)
        self._children[tenant] = sampler_from_state(state)
        self._specs[tenant] = {
            "name": state["sampler"], "params": dict(state.get("params", {}))
        }
        self._applied[tenant] = int(applied)

    def _admin_drop(self, tenant: str) -> None:
        """Remove ``tenant`` and discard its sampler state."""
        if tenant not in self._children:
            raise KeyError(f"unknown tenant {tenant!r}")
        del self._children[tenant]
        del self._specs[tenant]
        del self._applied[tenant]

    def _apply_admin(self, op: dict) -> None:
        """Apply one admin payload (the ``op`` dicts built by the helpers)."""
        kind = op.get("op")
        if kind == "create":
            self._admin_create(op["tenant"], op["spec"])
        elif kind == "install":
            self._admin_install(
                op["tenant"], op["state"], op.get("applied", 0)
            )
        elif kind == "drop":
            self._admin_drop(op["tenant"])
        else:
            raise ValueError(f"unknown tenant admin op {kind!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def tenants(self) -> tuple[str, ...]:
        """Current tenant ids, sorted."""
        return tuple(sorted(self._children))

    def has_tenant(self, tenant: str) -> bool:
        """Whether ``tenant`` currently has a child sampler."""
        return tenant in self._children

    def tenant_sampler(self, tenant: str) -> StreamSampler:
        """The live child sampler of ``tenant`` (raises ``KeyError``)."""
        try:
            return self._children[tenant]
        except KeyError:
            raise KeyError(f"unknown tenant {tenant!r}") from None

    def tenant_spec(self, tenant: str) -> SamplerSpec:
        """The spec ``tenant``'s sampler was built (or installed) from."""
        if tenant not in self._specs:
            raise KeyError(f"unknown tenant {tenant!r}")
        return SamplerSpec.from_dict(self._specs[tenant])

    def events_applied_for(self, tenant: str) -> int:
        """Data events applied to ``tenant``'s sampler (admin rows not
        counted), continued across install handoffs."""
        if tenant not in self._applied:
            raise KeyError(f"unknown tenant {tenant!r}")
        return self._applied[tenant]

    @property
    def applied_counts(self) -> dict[str, int]:
        """Per-tenant applied-event counters (a defensive copy)."""
        return dict(self._applied)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, key, weight: float = 1.0, *, value=None, time=None):
        """Offer one composite ``(tenant, key)`` event (or admin row)."""
        tenant, inner = key
        if tenant == ADMIN_KEY:
            self._apply_admin(inner)
            return None
        try:
            child = self._children[tenant]
        except KeyError:
            raise KeyError(f"unknown tenant {tenant!r}") from None
        self._applied[tenant] += 1
        return child.update(inner, weight, value=value, time=time)

    def update_many(self, keys, weights=None, values=None, times=None) -> None:
        """Offer a batch of composite rows, grouped per tenant.

        Rows are partitioned by tenant and each child ingests its
        sub-stream through its own vectorized ``update_many`` — in
        stream order, so per-tenant state is chunking-invariant across
        any batch boundaries.  Admin rows apply at their position
        relative to *their* tenant's rows (a tenant's pending group is
        flushed before its admin op applies); rows of other tenants
        commute with the op, which is safe because children are fully
        independent.
        """
        columns = [
            None if col is None else np.asarray(col, dtype=float)
            for col in (weights, values, times)
        ]
        has_columns = any(col is not None for col in columns)
        keys_by: dict[str, list] = {}
        idx_by: dict[str, list[int]] = {}

        def apply_group(tenant: str) -> None:
            sub_keys = keys_by.pop(tenant, None)
            if not sub_keys:
                return
            child = self._children.get(tenant)
            if child is None:
                raise KeyError(f"unknown tenant {tenant!r}")
            try:
                batch = np.asarray(sub_keys)
            except ValueError:  # ragged tuple keys refuse to coerce
                batch = sub_keys
            # Only 1-D numeric batches take the vectorized fast path.
            # Equal-length numeric tuple keys coerce to a 2-D numeric
            # array that would be misread as one row per tuple *element*;
            # the list form feeds each tuple through as a single key,
            # matching the scalar update() path.
            if not (isinstance(batch, np.ndarray) and batch.ndim == 1
                    and np.issubdtype(batch.dtype, np.number)):
                batch = sub_keys
            if has_columns:
                at = np.asarray(idx_by.pop(tenant), dtype=np.intp)
                child.update_many(batch, *(
                    None if col is None else col[at] for col in columns
                ))
            else:
                child.update_many(batch)
            self._applied[tenant] += len(sub_keys)

        for i, (tenant, inner) in enumerate(keys):
            if tenant == ADMIN_KEY:
                apply_group(inner.get("tenant", ""))
                self._apply_admin(inner)
                continue
            group = keys_by.get(tenant)
            if group is None:
                group = keys_by[tenant] = []
                if has_columns:
                    idx_by[tenant] = []
            group.append(inner)
            if has_columns:
                idx_by[tenant].append(i)
        for tenant in list(keys_by):
            apply_group(tenant)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def sample(self):
        """The union of all child samples, keys recomposited as
        ``(tenant, key)`` tuples.

        A cross-tenant introspection view (sizes, contract checks, the
        dashboard's "what is retained" panel); estimator-grade reads are
        tenant-scoped through :meth:`tenant_sampler`.  The composite
        carries the first child's priority family — per-tenant families
        can differ, so cross-tenant HT arithmetic on this view is only
        meaningful when every tenant shares one family.
        """
        from ...core.sample import Sample

        parts = [
            (tenant, self._children[tenant].sample())
            for tenant in self.tenants()
        ]
        parts = [(tenant, s) for tenant, s in parts if len(s.keys) > 0]
        if not parts:
            empty = np.empty(0, dtype=float)
            return Sample([], empty, empty, empty, empty)
        keys = [
            (tenant, key) for tenant, s in parts for key in s.keys
        ]
        # The composite carries a time column when any part has one;
        # parts without times contribute NaN rows (excluded by windowed
        # masks), matching the per-row "untimed" convention.
        times = None
        if any(s.times is not None for _, s in parts):
            times = np.concatenate([
                s.times
                if s.times is not None
                else np.full(len(s.keys), np.nan)
                for _, s in parts
            ])
        return Sample(
            keys,
            np.concatenate([s.values for _, s in parts]),
            np.concatenate([s.weights for _, s in parts]),
            np.concatenate([s.priorities for _, s in parts]),
            np.concatenate([s.thresholds for _, s in parts]),
            family=parts[0][1].family,
            times=times,
        )

    def estimate_total(self, tenant: str | None = None, **kw):
        """HT total — one tenant's, or summed across every tenant.

        With ``tenant`` given, delegates to that child's
        ``estimate("total", **kw)``; otherwise sums the per-tenant
        totals (children estimate independently, so the sum is the HT
        estimate of the combined total).
        """
        if tenant is not None:
            return self.tenant_sampler(tenant).estimate("total", **kw)
        return float(sum(
            float(child.estimate("total", **kw))
            for child in self._children.values()
        ))

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def _config(self) -> dict:
        """Constructor kwargs reproducing the current membership."""
        return {"tenants": {t: dict(self._specs[t]) for t in self._specs}}

    def _get_state(self) -> dict:
        """Portable state: every child's checkpoint plus the counters."""
        return {
            "children": {
                tenant: child.to_state()
                for tenant, child in self._children.items()
            },
            "applied": dict(self._applied),
            "order": list(self._children),
        }

    def _set_state(self, state: dict) -> None:
        """Restore membership and every child bit-exactly."""
        children = state.get("children", {})
        order = state.get("order") or sorted(children)
        self._children = {
            tenant: sampler_from_state(children[tenant]) for tenant in order
        }
        self._specs = {
            tenant: {
                "name": children[tenant]["sampler"],
                "params": dict(children[tenant].get("params", {})),
            }
            for tenant in order
        }
        applied = state.get("applied", {})
        self._applied = {
            tenant: int(applied.get(tenant, 0)) for tenant in order
        }
