"""Load-adaptive control plane for the serving runtime.

A :class:`StreamService` exposes three tuning knobs — ``batch_size``,
``max_latency``, and (for resizable samplers) the sample budget ``k`` —
and a :class:`~repro.serve.metrics.ServiceMetrics` instance that says how
the current settings are doing.  This module closes the loop: an
:class:`AdaptiveController` runs on the service's own event loop,
periodically diffs metric snapshots into windowed :class:`ControlSignals`
(ingest rate, queue occupancy, drop rate, deadline-flush share, windowed
p99 flush latency), feeds them through one of five policy *modes*, and
actuates the resulting deltas via :meth:`StreamService.retune` — which
applies them at a flush boundary and WAL-logs them, so recovery replays
the exact same tuning trajectory and stays bit-exact.

The modes mirror the adaptive-sampling policies of production tracing
samplers (head-based samplers that retarget their rate from live QPS and
error signals), specialized to this runtime's knobs:

``balanced``
    Gradual multiplicative moves in both directions; the default.
``high_load``
    Bang-bang: on overload jump straight to the largest batches and the
    smallest sample budget, and step back only when calm.
``error_triggered``
    Drops are the only trigger; on drops, *raise* ``k`` to the ceiling
    (keep maximum detail about the stream while events are being lost)
    and open the batch knobs wide to drain the backlog.
``surge``
    Latency-SLO guard: reacts to windowed p99 alone, doubling batches
    and shedding ``k`` until the SLO holds again.
``low_noise``
    Hysteresis: never reacts to a single window; only after
    ``calm_windows`` consecutive calm windows does it drift toward
    cheaper settings, and any disturbance snaps it back to baseline.

Every policy is *unbiasedness-preserving by construction*: ``k`` moves
only through :meth:`StreamSampler.resize`, whose shrink-with-fold /
grow-with-cap semantics keep Horvitz–Thompson estimates unbiased across
the resize (see ``docs/architecture.md``, "Adaptive control").
"""

from __future__ import annotations

import asyncio
import math

from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from .metrics import ServiceMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .service import StreamService

__all__ = [
    "ControlSignals",
    "ControllerConfig",
    "AdaptiveController",
    "CONTROLLER_MODES",
    "derive_signals",
]

#: The five supported policy modes, in documentation order.
CONTROLLER_MODES = (
    "balanced",
    "high_load",
    "error_triggered",
    "surge",
    "low_noise",
)


def _window_quantile(buckets: dict[int, int], q: float) -> float:
    """Quantile in seconds from a pow2-millisecond bucket delta.

    Same conservative upper-bound convention as
    :meth:`ServiceMetrics.flush_latency_quantile`, applied to a windowed
    histogram difference instead of the lifetime histogram.
    """
    total = sum(buckets.values())
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0
    upper_ms = 1
    for upper_ms, count in sorted(buckets.items()):
        seen += count
        if seen >= rank:
            break
    return upper_ms / 1000.0


@dataclass(frozen=True)
class ControlSignals:
    """One observation window, derived from two metric snapshots.

    All rates are per second over the window; shares and occupancy are
    in ``[0, 1]``.  ``flush_latency_p99`` is the windowed p99 queueing
    delay (how long the oldest event of each flushed batch waited), the
    quantity an ingestion SLO is written against.
    """

    interval: float
    ingest_rate: float
    drop_rate: float
    queue_occupancy: float
    deadline_share: float
    flush_latency_p99: float
    avg_flush_duration: float
    backlog: int

    def to_dict(self) -> dict:
        """JSON-friendly rendering for trajectories and dashboards."""
        return {
            "interval": self.interval,
            "ingest_rate": self.ingest_rate,
            "drop_rate": self.drop_rate,
            "queue_occupancy": self.queue_occupancy,
            "deadline_share": self.deadline_share,
            "flush_latency_p99": self.flush_latency_p99,
            "avg_flush_duration": self.avg_flush_duration,
            "backlog": self.backlog,
        }


def derive_signals(
    prev: ServiceMetrics,
    curr: ServiceMetrics,
    interval: float,
    queue_size: int,
) -> ControlSignals:
    """Diff two metric snapshots into windowed control signals.

    Pure: takes the *before* and *after* snapshots of one observation
    window plus the actual elapsed ``interval`` and the service's
    ``queue_size`` bound, and returns the window's rates and shares.
    Counters are monotone so every delta is non-negative; gauges
    (``queue_depth``) are read from ``curr`` directly.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    enqueued = curr.events_enqueued - prev.events_enqueued
    dropped = curr.events_dropped - prev.events_dropped
    flushes = (
        (curr.flushes_size + curr.flushes_deadline + curr.flushes_drain)
        - (prev.flushes_size + prev.flushes_deadline + prev.flushes_drain)
    )
    deadline = curr.flushes_deadline - prev.flushes_deadline
    duration = curr.flush_duration_sum - prev.flush_duration_sum
    delta_buckets = {
        bucket: count - prev.flush_latency_buckets.get(bucket, 0)
        for bucket, count in curr.flush_latency_buckets.items()
        if count - prev.flush_latency_buckets.get(bucket, 0) > 0
    }
    return ControlSignals(
        interval=float(interval),
        ingest_rate=enqueued / interval,
        drop_rate=dropped / interval,
        queue_occupancy=(
            curr.queue_depth / queue_size if queue_size > 0 else 0.0
        ),
        deadline_share=deadline / flushes if flushes > 0 else 0.0,
        flush_latency_p99=_window_quantile(delta_buckets, 0.99),
        avg_flush_duration=duration / flushes if flushes > 0 else 0.0,
        backlog=int(curr.queue_depth),
    )


@dataclass(frozen=True)
class ControllerConfig:
    """Bounds, thresholds, and cadence for an :class:`AdaptiveController`.

    ``None`` bounds are resolved against the controlled service when the
    controller starts (see :meth:`resolve`): the batch ceiling defaults
    to the queue size (anything larger is dead config — the service
    clamps it), the latency bounds bracket the service's starting
    ``max_latency``, and the ``k`` bounds bracket the sampler's starting
    budget by 4x in each direction.
    """

    #: Seconds between observation windows.
    interval: float = 0.25
    #: The p99 flush-latency objective, in seconds.
    slo_p99: float = 0.05
    #: Occupancy above which the service counts as overloaded.
    high_occupancy: float = 0.5
    #: Occupancy below which (with a healthy p99 and no drops) the
    #: window counts as calm.
    low_occupancy: float = 0.1
    #: Multiplicative step when growing a knob under load.
    grow_factor: float = 2.0
    #: Multiplicative step when relaxing back toward baseline.
    shrink_factor: float = 0.5
    #: Consecutive calm windows ``low_noise`` waits before acting.
    calm_windows: int = 4
    min_batch_size: int = 1
    max_batch_size: int | None = None
    min_max_latency: float | None = None
    max_max_latency: float | None = None
    min_k: int | None = None
    max_k: int | None = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.slo_p99 <= 0:
            raise ValueError("slo_p99 must be positive")
        if not 0.0 <= self.low_occupancy <= self.high_occupancy <= 1.0:
            raise ValueError(
                "need 0 <= low_occupancy <= high_occupancy <= 1"
            )
        if self.grow_factor <= 1.0:
            raise ValueError("grow_factor must exceed 1")
        if not 0.0 < self.shrink_factor < 1.0:
            raise ValueError("shrink_factor must be in (0, 1)")
        if self.calm_windows < 1:
            raise ValueError("calm_windows must be at least 1")

    def resolve(self, service: "StreamService") -> "ControllerConfig":
        """Fill ``None`` bounds from the service's starting configuration."""
        k = _sampler_k(service)
        updates: dict = {}
        if self.max_batch_size is None:
            updates["max_batch_size"] = service.queue_size
        if self.min_max_latency is None:
            updates["min_max_latency"] = min(0.001, service.max_latency)
        if self.max_max_latency is None:
            updates["max_max_latency"] = max(1.0, service.max_latency)
        if k is not None:
            if self.min_k is None:
                updates["min_k"] = max(2, k // 4)
            if self.max_k is None:
                updates["max_k"] = max(k * 4, k)
        return replace(self, **updates) if updates else self


def _sampler_k(service: "StreamService") -> int | None:
    """The sampler's current budget, or ``None`` if it has no usable one.

    Resizable samplers expose ``k`` directly; a
    :class:`~repro.engine.ShardedSampler` keeps the per-shard budget in
    its spec params and mirrors ``resizable`` from the shard class.
    """
    sampler = service.sampler
    if not getattr(sampler, "resizable", False):
        return None
    k = getattr(sampler, "k", None)
    if k is None:
        spec = getattr(sampler, "spec", None)
        if spec is not None:
            k = spec.params.get("k")
    return int(k) if k is not None else None


class AdaptiveController:
    """Periodic observe→decide→actuate loop over one :class:`StreamService`.

    The controller runs as a task on the service's event loop.  Each
    tick it snapshots ``service.metrics``, diffs against the previous
    snapshot into :class:`ControlSignals`, asks the mode policy for a
    retune proposal (:meth:`propose` — pure, unit-testable), and applies
    any non-empty proposal with ``await service.retune(...)``.  Applied
    retunes take effect at the service's next flush boundary and are
    WAL-logged, so a recovered service replays the controller's exact
    decisions without the controller being present.

    ``history`` keeps the last 256 ``(signals, applied)`` pairs for
    dashboards and the benchmark trajectory.  The loop stops itself if
    the service crashes or stops underneath it.
    """

    def __init__(
        self,
        service: "StreamService",
        mode: str = "balanced",
        config: ControllerConfig | None = None,
    ):
        if mode not in CONTROLLER_MODES:
            raise ValueError(
                f"unknown controller mode {mode!r}; expected one of "
                f"{CONTROLLER_MODES}"
            )
        self.service = service
        self.mode = mode
        self.config = config if config is not None else ControllerConfig()
        self.history: deque = deque(maxlen=256)
        self.baseline: dict | None = None
        self._task: asyncio.Task | None = None
        self._prev: ServiceMetrics | None = None
        self._prev_time: float | None = None
        self._calm_streak = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AdaptiveController":
        """Resolve bounds, capture the baseline tuning, start the loop."""
        if self._task is not None:
            raise RuntimeError("controller already started")
        self.config = self.config.resolve(self.service)
        self.baseline = {
            "batch_size": self.service.batch_size,
            "max_latency": self.service.max_latency,
            "k": _sampler_k(self.service),
        }
        self._task = asyncio.get_running_loop().create_task(self._run())
        return self

    async def stop(self) -> None:
        """Cancel the loop (idempotent); pending retunes settle first."""
        task, self._task = self._task, None
        if task is None:
            return
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    async def __aenter__(self) -> "AdaptiveController":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        """Whether the control loop task is alive."""
        return self._task is not None and not self._task.done()

    async def _run(self) -> None:
        from .service import ServiceCrashed

        while True:
            await asyncio.sleep(self.config.interval)
            svc = self.service
            if svc.crashed or not svc._started or svc._stopping:
                return  # nothing left to control
            try:
                await self.step()
            except (ServiceCrashed, RuntimeError):
                # Crashed or began stopping mid-step: stand down.
                return

    # ------------------------------------------------------------------
    # One control tick (the test seam)
    # ------------------------------------------------------------------
    async def step(self) -> ControlSignals | None:
        """Observe one window, decide, and actuate.  Returns the window's
        signals (``None`` on the priming call that has no previous
        snapshot to diff against)."""
        loop = asyncio.get_running_loop()
        now = loop.time()
        curr = ServiceMetrics.from_dict(self.service.metrics.to_dict())
        if self._prev is None:
            self._prev, self._prev_time = curr, now
            return None
        interval = max(now - self._prev_time, 1e-9)
        signals = derive_signals(
            self._prev, curr, interval, self.service.queue_size
        )
        changes = self.propose(signals)
        applied: dict = {}
        if changes:
            applied = await self.service.retune(**changes)
        self.history.append((signals, applied))
        self._prev, self._prev_time = curr, now
        return signals

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    def _is_overloaded(self, s: ControlSignals) -> bool:
        return (
            s.queue_occupancy > self.config.high_occupancy
            or s.flush_latency_p99 > self.config.slo_p99
            or s.drop_rate > 0
        )

    def _is_calm(self, s: ControlSignals) -> bool:
        return (
            s.queue_occupancy < self.config.low_occupancy
            and s.flush_latency_p99 < 0.5 * self.config.slo_p99
            and s.drop_rate == 0
        )

    def _clamp_batch(self, batch_size: float) -> int:
        cfg = self.config
        return int(
            min(max(int(batch_size), cfg.min_batch_size), cfg.max_batch_size)
        )

    def _clamp_latency(self, latency: float) -> float:
        cfg = self.config
        return min(max(latency, cfg.min_max_latency), cfg.max_max_latency)

    def _clamp_k(self, k: float) -> int | None:
        cfg = self.config
        if cfg.min_k is None or cfg.max_k is None:
            return None
        return int(min(max(int(k), cfg.min_k), cfg.max_k))

    def _changes(self, batch_size=None, max_latency=None, k=None) -> dict:
        """Assemble a retune proposal, dropping knobs already at target."""
        svc = self.service
        changes: dict = {}
        if batch_size is not None and batch_size != svc.batch_size:
            changes["batch_size"] = batch_size
        if max_latency is not None and not math.isclose(
            max_latency, svc.max_latency, rel_tol=1e-9
        ):
            changes["max_latency"] = max_latency
        if k is not None and k != _sampler_k(svc):
            changes["k"] = k
        return changes

    def _toward_baseline(self) -> dict:
        """One multiplicative step of every knob back toward baseline."""
        svc, cfg, base = self.service, self.config, self.baseline
        step = cfg.shrink_factor

        def _approach(current: float, target: float) -> float:
            return target + (current - target) * step

        batch = self._clamp_batch(
            round(_approach(svc.batch_size, base["batch_size"]))
        )
        latency = self._clamp_latency(
            _approach(svc.max_latency, base["max_latency"])
        )
        k = None
        if base["k"] is not None:
            current_k = _sampler_k(svc)
            k = self._clamp_k(round(_approach(current_k, base["k"])))
        return self._changes(batch, latency, k)

    def propose(self, signals: ControlSignals) -> dict:
        """Map one window's signals to a retune proposal (pure policy).

        Returns a (possibly empty) kwargs dict for
        :meth:`StreamService.retune`; knobs already at their target are
        omitted, so an empty dict means "hold".
        """
        overloaded = self._is_overloaded(signals)
        calm = self._is_calm(signals)
        self._calm_streak = self._calm_streak + 1 if calm else 0
        handler = getattr(self, f"_propose_{self.mode}")
        return handler(signals, overloaded, calm)

    def _propose_balanced(self, s, overloaded, calm) -> dict:
        svc, cfg = self.service, self.config
        if overloaded:
            batch = self._clamp_batch(svc.batch_size * cfg.grow_factor)
            latency = self._clamp_latency(svc.max_latency * cfg.grow_factor)
            k = None
            current_k = _sampler_k(svc)
            if current_k is not None:
                k = self._clamp_k(current_k * cfg.shrink_factor)
            return self._changes(batch, latency, k)
        if calm:
            return self._toward_baseline()
        return {}

    def _propose_high_load(self, s, overloaded, calm) -> dict:
        cfg = self.config
        if overloaded:
            k = cfg.min_k if self.baseline["k"] is not None else None
            return self._changes(cfg.max_batch_size, cfg.max_max_latency, k)
        if calm:
            return self._toward_baseline()
        return {}

    def _propose_error_triggered(self, s, overloaded, calm) -> dict:
        cfg = self.config
        if s.drop_rate > 0:
            # Events are being lost: open the throughput knobs wide to
            # drain, but *raise* the sample budget — when the stream is
            # lossy, the retained sample is the only record of it.
            k = cfg.max_k if self.baseline["k"] is not None else None
            return self._changes(cfg.max_batch_size, cfg.max_max_latency, k)
        if calm:
            return self._toward_baseline()
        return {}

    def _propose_surge(self, s, overloaded, calm) -> dict:
        svc, cfg = self.service, self.config
        if s.flush_latency_p99 > cfg.slo_p99:
            batch = self._clamp_batch(svc.batch_size * cfg.grow_factor)
            k = cfg.min_k if self.baseline["k"] is not None else None
            return self._changes(batch, cfg.max_max_latency, k)
        if calm:
            return self._toward_baseline()
        return {}

    def _propose_low_noise(self, s, overloaded, calm) -> dict:
        svc, cfg = self.service, self.config
        if not calm:
            # Any disturbance: snap every knob straight back to baseline.
            base = self.baseline
            return self._changes(
                base["batch_size"], base["max_latency"], base["k"]
            )
        if self._calm_streak >= cfg.calm_windows:
            batch = self._clamp_batch(svc.batch_size * cfg.grow_factor)
            k = None
            current_k = _sampler_k(svc)
            if current_k is not None:
                k = self._clamp_k(current_k * cfg.shrink_factor)
            return self._changes(batch, None, k)
        return {}

    def trajectory(self) -> list[dict]:
        """The retained history as JSON-friendly rows (oldest first)."""
        return [
            {"signals": signals.to_dict(), "applied": dict(applied)}
            for signals, applied in self.history
        ]
