"""Async streaming serving runtime: ingest while you query, survive crashes.

The paper's premise is that **one** continuously-maintained adaptive
sample answers arbitrary downstream queries; this package is the
long-running runtime that premise deserves.  A
:class:`StreamService` wraps any registered sampler (or a
:class:`~repro.engine.ShardedSampler`) and provides:

* **Bounded async ingestion** — ``await service.ingest_many(...)`` with
  backpressure at ``queue_size`` buffered events (or counted drops via
  the non-blocking ``try_ingest`` variants).
* **Micro-batching** — events flush into the vectorized ``update_many``
  kernels on batch size *and* a max-latency deadline
  (:mod:`repro.serve.batcher`).
* **Snapshot-isolated reads** — ``sample()``/``estimate()``/``query()``
  pinned to one ``state_version``; no reader ever sees a half-applied
  batch (:class:`ServiceSnapshot`).
* **Durability** — a segmented write-ahead log (:mod:`repro.serve.wal`)
  plus periodic atomic checkpoints (:mod:`repro.serve.checkpoints`),
  with :meth:`StreamService.recover` replaying the log tail to a
  bit-identical state.
* **Metrics** — ingested/dropped/applied counts, queue depth, batch-size
  histogram, checkpoint lag (:mod:`repro.serve.metrics`).
* **Multi-tenancy** — :mod:`repro.serve.cluster` multiplexes many
  tenants onto a pool of these services with consistent-hash routing,
  per-tenant quotas, live rebalancing, and a TCP front end.
* **Adaptive control** — an :class:`AdaptiveController` retunes
  ``batch_size``/``max_latency``/sampler ``k`` online from live metrics
  (:mod:`repro.serve.control`); retunes apply at flush boundaries, are
  WAL-logged, and keep estimators unbiased across sampler resizes.
* **Self-healing** — a :class:`~repro.serve.cluster.Supervisor`
  health-checks the pool and fails over automatically (restart-in-place
  or rehome) while the cluster keeps serving degraded reads and sheds
  ingest with counted rejections; :mod:`repro.serve.chaos` is the fault
  injection harness that proves it.

See the "Serving" and "Cluster" sections of ``docs/architecture.md`` for
the runtime loop diagram and the durability/recovery guarantees.
"""

from .batcher import MicroBatcher
from .checkpoints import CheckpointStore
from .control import (
    AdaptiveController,
    CONTROLLER_MODES,
    ControllerConfig,
    ControlSignals,
    derive_signals,
)
from .metrics import ServiceMetrics
from .service import ServiceCrashed, ServiceSnapshot, StreamService

# .cluster imports .service, so it must come after (it also registers the
# "tenant_mux" sampler as an import side effect — `import repro` alone
# makes the cluster worker sampler constructible from the registry).
from .chaos import ChaosError, ChaosInjector, Fault
from .cluster import (
    CircuitBreaker,
    Cluster,
    ClusterClient,
    ClusterController,
    ClusterFrontend,
    ClusterMetrics,
    FrontendMetrics,
    HashRing,
    RetryPolicy,
    StaleFrontier,
    Supervisor,
    TenantMuxSampler,
    TenantQuota,
)
from .wal import WalRecord, WriteAheadLog, replay_records

__all__ = [
    "StreamService",
    "ServiceSnapshot",
    "ServiceCrashed",
    "MicroBatcher",
    "ServiceMetrics",
    "AdaptiveController",
    "ControllerConfig",
    "ControlSignals",
    "CONTROLLER_MODES",
    "derive_signals",
    "CheckpointStore",
    "WriteAheadLog",
    "WalRecord",
    "replay_records",
    "ChaosError",
    "ChaosInjector",
    "Fault",
    "CircuitBreaker",
    "Cluster",
    "ClusterClient",
    "ClusterController",
    "ClusterFrontend",
    "ClusterMetrics",
    "FrontendMetrics",
    "HashRing",
    "RetryPolicy",
    "StaleFrontier",
    "Supervisor",
    "TenantMuxSampler",
    "TenantQuota",
]
