"""Atomic, self-validating sampler checkpoints.

A checkpoint captures a sampler's full ``to_state()`` dict (RNG streams
included — the same plain-dict round-trip the sharded engine ships across
process pools) at a known stream offset, so recovery replays only the
write-ahead-log tail after it instead of the whole history.

Two crash-safety properties:

* **Atomic visibility.**  The file is written to a temp name and
  ``os.replace``d into place, so a partially-written checkpoint is never
  visible under its final name — a crash mid-write leaves only the old
  checkpoints plus a stray ``.tmp`` (cleaned up on the next write).
* **Self-validating.**  The payload is framed with a CRC32 the same way
  as WAL records, so a checkpoint file truncated or corrupted *after* the
  fact (disk trouble, a torn copy) is detected at load time and skipped,
  falling back to the next-newest valid checkpoint.  The store retains
  the last ``retain`` checkpoints — and the log keeps the segments the
  oldest retained one needs — precisely so that fallback has somewhere
  to land.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import re
import struct
import zlib
from typing import Callable

__all__ = ["CheckpointStore"]

_HEADER = struct.Struct("<II")

_CKPT_RE = re.compile(r"^ckpt-(\d{16})\.pkl$")


class CheckpointStore:
    """Writer/loader for the ``ckpt-<offset:016d>.pkl`` files in a
    service directory.

    Parameters
    ----------
    root:
        Service directory; checkpoints live in ``<root>/ckpt/``.
    retain:
        How many newest checkpoints to keep (>= 1).  Older ones are
        deleted after each successful write.
    fault_hook:
        Test seam, called as ``fault_hook(stage)`` at
        ``"checkpoint.before"`` / ``"checkpoint.mid"`` (temp file partly
        written, not yet renamed) / ``"checkpoint.after"`` (renamed, not
        yet pruned).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        retain: int = 2,
        fault_hook: Callable[[str], None] | None = None,
    ):
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.retain = int(retain)
        self.fault_hook = fault_hook
        self._dir = pathlib.Path(root) / "ckpt"
        self._dir.mkdir(parents=True, exist_ok=True)

    def _hook(self, stage: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(stage)

    def _checkpoints(self) -> list[tuple[int, pathlib.Path]]:
        """``(offset, path)`` for every checkpoint file, oldest first."""
        out = []
        for path in self._dir.iterdir():
            match = _CKPT_RE.match(path.name)
            if match:
                out.append((int(match.group(1)), path))
        return sorted(out)

    def offsets(self) -> tuple[int, ...]:
        """Stream offsets of the checkpoints on disk, oldest first."""
        return tuple(offset for offset, _ in self._checkpoints())

    def oldest_retained_offset(self) -> int:
        """The offset below which the WAL may be pruned (0 if none)."""
        offsets = self.offsets()
        return offsets[0] if offsets else 0

    def write(self, offset: int, payload: dict) -> pathlib.Path:
        """Atomically persist ``payload`` as the checkpoint at ``offset``.

        ``payload`` must be picklable (it is the service's
        ``{"state": sampler.to_state(), ...}`` dict).  Retention pruning
        runs after the rename, so a crash anywhere leaves at least the
        previous checkpoints intact.
        """
        self._hook("checkpoint.before")
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        final = self._dir / f"ckpt-{int(offset):016d}.pkl"
        tmp = final.with_suffix(".pkl.tmp")
        with open(tmp, "wb") as fh:
            fh.write(_HEADER.pack(len(body), zlib.crc32(body)))
            fh.write(body[: len(body) // 2])
            fh.flush()
            self._hook("checkpoint.mid")
            fh.write(body[len(body) // 2:])
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        self._hook("checkpoint.after")
        for old, path in self._checkpoints()[: -self.retain]:
            if old != offset:
                path.unlink()
        for stray in self._dir.glob("*.tmp"):
            stray.unlink()
        return final

    def load_latest(self) -> tuple[int, dict] | None:
        """The newest *valid* checkpoint as ``(offset, payload)``.

        Checkpoints failing the CRC frame or unpickling are skipped
        (newest first), so truncation/corruption degrades to a longer
        WAL replay rather than a failed recovery.  Returns ``None`` when
        no valid checkpoint exists.
        """
        for offset, path in reversed(self._checkpoints()):
            data = path.read_bytes()
            if len(data) < _HEADER.size:
                continue
            length, crc = _HEADER.unpack(data[: _HEADER.size])
            body = data[_HEADER.size: _HEADER.size + length]
            if len(body) != length or zlib.crc32(body) != crc:
                continue
            try:
                return offset, pickle.loads(body)
            except Exception:
                continue
        return None
