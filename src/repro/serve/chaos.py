"""Chaos harness: declarative fault injection for the serving stack.

The service, WAL, and checkpoint layers already expose a ``fault_hook``
seam — ``hook(stage)`` fires at every durability-critical point
(``wal.append.before/mid/after``, ``checkpoint.before/mid/after``,
``flush.before``, ``apply.before/after``; a cluster prefixes each stage
with the worker name, e.g. ``svc-1:wal.append.mid``).  This module turns
that seam into a composable chaos harness: declare *which* stage fails,
*when*, and *how*, and hand the injector to
:class:`~repro.serve.StreamService` or
:class:`~repro.serve.cluster.Cluster` as ``fault_hook=``.

>>> from repro.serve.chaos import ChaosInjector, Fault
>>> chaos = ChaosInjector(
...     Fault("svc-0:wal.append.mid", at=3),           # crash svc-0's 3rd append
...     Fault("svc-1:flush.before", action="stall",    # wedge svc-1's consumer
...           delay=30.0, times=1000),
... )
>>> # Cluster(services=2, fault_hook=chaos) ...

Fault actions:

``"raise"``
    Raise :class:`ChaosError` (or the fault's own ``error``) at the
    stage — simulates a crash of the I/O path.  Works at every stage.
``"stall"``
    Return an ``asyncio.sleep(delay)`` awaitable — simulates a wedged
    dependency (disk hang, GC pause).  Only the *service-level* stages
    (``flush.before``, ``apply.before``, ``apply.after``) await their
    hook's result; the WAL/checkpoint stages are synchronous and ignore
    awaitables, so stall faults on them do nothing.

Occurrence windows make faults deterministic: a fault matches its
``stage`` pattern (``fnmatch`` — ``"*:wal.append.mid"`` hits every
worker), counts its own matches, and fires only for occurrences
``at .. at+times-1``.  One injector call fires at most one fault (first
declaration wins), and every firing is recorded in
:attr:`ChaosInjector.fired` so tests can assert the fault actually
happened — a chaos test whose fault never fired proves nothing.

For the network layer, :func:`misbehaving_connection` speaks raw bytes
at a :class:`~repro.serve.cluster.ClusterFrontend` — truncated frames,
slowloris trickles, silent connections — to drive the frontend's
per-connection hardening.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

__all__ = ["ChaosError", "Fault", "ChaosInjector", "misbehaving_connection"]


class ChaosError(RuntimeError):
    """The error an injected fault raises (a simulated infrastructure
    failure: disk write error, torn append, dead checkpoint store)."""


@dataclass
class Fault:
    """One declarative fault: where, when, and how to fail.

    ``stage`` is an ``fnmatch`` pattern against hook stage names;
    ``at`` is the 1-based match occurrence at which the fault starts
    firing and ``times`` how many consecutive occurrences fire.
    ``action`` is ``"raise"`` (with ``error`` or a :class:`ChaosError`)
    or ``"stall"`` (an ``asyncio.sleep(delay)`` awaitable).
    """

    stage: str
    at: int = 1
    times: int = 1
    action: str = "raise"
    delay: float = 0.05
    error: BaseException | None = None
    #: Matches seen so far (mutated by the injector).
    seen: int = field(default=0, compare=False)

    def __post_init__(self):
        if self.action not in ("raise", "stall"):
            raise ValueError(
                f"action must be 'raise' or 'stall', got {self.action!r}"
            )
        if self.at < 1:
            raise ValueError("at is a 1-based occurrence, must be >= 1")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def armed(self) -> bool:
        """Whether the current occurrence falls in the firing window."""
        return self.at <= self.seen < self.at + self.times


class ChaosInjector:
    """A ``fault_hook`` that fires declared :class:`Fault`\\ s.

    Pass the injector itself as ``fault_hook=`` — it is a plain
    callable ``(stage) -> None | awaitable``.  Thread-safe enough for
    the single event loop it runs on; counters are per-fault.
    """

    def __init__(self, *faults: Fault):
        self.faults = list(faults)
        #: Log of every firing: ``(stage, action)`` tuples in order.
        self.fired: list[tuple[str, str]] = []

    def add(self, fault: Fault) -> "ChaosInjector":
        """Declare another fault (chainable)."""
        self.faults.append(fault)
        return self

    def count(self, pattern: str) -> int:
        """How many firings hit stages matching ``pattern``."""
        return sum(
            1 for stage, _ in self.fired if fnmatchcase(stage, pattern)
        )

    def __call__(self, stage: str):
        for fault in self.faults:
            if not fnmatchcase(stage, fault.stage):
                continue
            fault.seen += 1
            if not fault.armed():
                continue
            self.fired.append((stage, fault.action))
            if fault.action == "stall":
                return asyncio.sleep(fault.delay)
            raise fault.error if fault.error is not None else ChaosError(
                f"injected fault at {stage}"
            )
        return None


async def misbehaving_connection(
    host: str,
    port: int,
    *,
    send: bytes = b"",
    linger: float = 0.0,
    abort: bool = False,
) -> bytes:
    """Open a raw connection to a frontend and misbehave on purpose.

    Writes ``send`` (possibly a truncated frame), sleeps ``linger``
    seconds holding the connection open (a slowloris / silent peer),
    then closes — abruptly when ``abort`` is set.  Returns whatever the
    server sent back before the close, so tests can assert on (or
    confirm the absence of) an error reply.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        if send:
            writer.write(send)
            await writer.drain()
        if linger:
            await asyncio.sleep(linger)
        received = bytearray()
        with contextlib.suppress(asyncio.TimeoutError, ConnectionError,
                                 OSError):
            while True:
                chunk = await asyncio.wait_for(reader.read(4096), 0.05)
                if not chunk:
                    break
                received.extend(chunk)
        return bytes(received)
    finally:
        if abort and writer.transport is not None:
            writer.transport.abort()
        else:
            writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
