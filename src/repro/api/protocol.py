"""The unified :class:`StreamSampler` protocol.

Ting's adaptive threshold framework (SIGMOD 2022) builds every sampler in
this library out of the same three ingredients — per-item priorities, an
adaptive threshold rule, and pseudo-HT estimation — so all of them can (and
now do) share one canonical surface:

* ``update(key, weight=1.0, *, value=None, time=None)`` — offer one item;
* ``update_many(keys, weights=None, values=None, times=None)`` — vectorized
  batch ingestion (numpy fast path where the sampler supports it, a plain
  loop otherwise);
* ``sample()`` — finalize into a :class:`repro.core.sample.Sample`;
* ``merge(other)`` — in-place union with another sampler over a disjoint
  stream, returning ``self`` (``a | b`` is the pure variant, via
  :func:`merged`);
* ``estimate(kind=..., predicate=..., **kw)`` — one facade over the
  per-sampler ``estimate_*`` methods;
* ``to_state()`` / ``from_state()`` — plain-dict round-trip serialization
  for checkpointing and cross-process shipping.

Concrete samplers register themselves under a config-friendly name with
:func:`repro.api.registry.register_sampler`, which is what makes
``repro.make_sampler("bottom_k", k=100)`` work.

On top of the imperative facade sits the declarative query layer
(:mod:`repro.query`): every class carries a capability table
(:attr:`StreamSampler.query_capabilities`, declared with
:func:`query_support` in the same spirit as the ``mergeable`` ClassVar)
saying which query aggregates it answers and *why* the others are out of
scope, and :meth:`StreamSampler.query` plans/executes/caches declarative
queries against it.
"""

from __future__ import annotations

import abc
import functools
import inspect
import warnings
from typing import ClassVar, Mapping

import numpy as np

from ..core.priorities import (
    ExponentialPriority,
    InverseWeightPriority,
    PriorityFamily,
    Uniform01Priority,
)

__all__ = [
    "StreamSampler",
    "QUERY_AGGREGATES",
    "query_support",
    "merged",
    "family_to_name",
    "family_from_name",
    "rng_to_state",
    "rng_from_state",
]

#: The aggregates the declarative query layer (:mod:`repro.query`) knows
#: how to execute.  Every sampler class accounts for each of them in its
#: :attr:`StreamSampler.query_capabilities` table — either as supported or
#: with a declared reason for the gap.
QUERY_AGGREGATES = ("sum", "count", "mean", "distinct", "topk", "quantile")

#: Gap reason used by the protocol default: a sampler that never declared
#: capabilities supports nothing, for this stated reason.
_NO_SAMPLE_REASON = (
    "does not declare query capabilities (no Sample-backed query execution)"
)

#: Gap reason for the windowed-query default: a sampler that records no
#: per-item arrival times cannot scope estimation to a time window or
#: discount by age.
_NO_TIME_REASON = (
    "records no per-item arrival times; windowed/decayed queries "
    "(window=/last=/decay=) need a time-indexed sampler"
)


def query_support(*supported: str, **gaps: str) -> dict[str, bool | str]:
    """Build a complete per-aggregate capability table.

    Positional names are supported aggregates; keyword arguments map each
    remaining aggregate to the *reason* it is out of scope.  Together they
    must account for every name in :data:`QUERY_AGGREGATES` exactly once —
    partial or overlapping declarations are construction-time errors, so a
    sampler cannot silently drift out of sync with the query layer.

    >>> caps = query_support("sum", "count", "mean", "topk", "quantile",
    ...                      distinct="samples occurrences, not distinct keys")
    >>> caps["sum"], caps["distinct"]
    (True, 'samples occurrences, not distinct keys')
    """
    table: dict[str, bool | str] = {}
    for name in supported:
        if name not in QUERY_AGGREGATES:
            raise ValueError(
                f"unknown query aggregate {name!r}; expected one of "
                + ", ".join(QUERY_AGGREGATES)
            )
        table[name] = True
    for name, reason in gaps.items():
        if name not in QUERY_AGGREGATES:
            raise ValueError(
                f"unknown query aggregate {name!r}; expected one of "
                + ", ".join(QUERY_AGGREGATES)
            )
        if name in table:
            raise ValueError(
                f"aggregate {name!r} declared both supported and gapped"
            )
        if not isinstance(reason, str) or not reason:
            raise ValueError(
                f"gap reason for {name!r} must be a non-empty string"
            )
        table[name] = reason
    missing = [name for name in QUERY_AGGREGATES if name not in table]
    if missing:
        raise ValueError(
            "capability table must account for every aggregate; missing: "
            + ", ".join(missing)
        )
    return {name: table[name] for name in QUERY_AGGREGATES}


def _bumps_state_version(fn):
    """Wrap a mutator so it advances the owner's ``state_version``.

    Applied automatically by ``StreamSampler.__init_subclass__`` to every
    ``update``/``update_many``/``merge``/``_set_state`` a subclass defines,
    so the query-result cache can invalidate on any mutation without each
    sampler having to remember to bump anything.
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        self.__dict__["_state_version"] = (
            self.__dict__.get("_state_version", 0) + 1
        )
        return fn(self, *args, **kwargs)

    wrapper._bumps_state_version = True
    return wrapper


#: Mutators whose subclass overrides are auto-wrapped for version bumping.
#: Beyond the protocol surface, this covers the sampler-specific public
#: mutators (window advancement, sketch trimming) so every state change a
#: caller can make invalidates cached query results.
_VERSIONED_MUTATORS = (
    "update", "update_many", "merge", "_set_state", "advance", "trim",
    "resize",
)

#: Cap on cached query results per sampler instance (FIFO eviction).
_QUERY_CACHE_LIMIT = 128

#: Serializable priority families, by config name.
_FAMILIES: dict[str, type[PriorityFamily]] = {
    "uniform": Uniform01Priority,
    "inverse_weight": InverseWeightPriority,
    "exponential": ExponentialPriority,
}


def family_to_name(family: PriorityFamily) -> str:
    """Return the config name of a priority family (for ``to_state``)."""
    for name, cls in _FAMILIES.items():
        if type(family) is cls:
            return name
    raise ValueError(
        f"{type(family).__name__} has no registered config name and cannot "
        "be serialized; use one of " + ", ".join(sorted(_FAMILIES))
    )


def family_from_name(name: str | PriorityFamily | None) -> PriorityFamily | None:
    """Build a priority family from its config name (``None`` passes through)."""
    if name is None or isinstance(name, PriorityFamily):
        return name
    try:
        return _FAMILIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown priority family {name!r}; expected one of "
            + ", ".join(sorted(_FAMILIES))
        ) from None


def rng_to_state(rng: np.random.Generator) -> dict:
    """Capture a numpy generator's bit-generator state as a plain dict."""
    return rng.bit_generator.state


def rng_from_state(state: dict) -> np.random.Generator:
    """Rebuild a numpy generator from :func:`rng_to_state` output."""
    rng = np.random.default_rng()
    bit_gen = type(rng.bit_generator)
    if state.get("bit_generator", "PCG64") != bit_gen.__name__:
        bit_cls = getattr(np.random, state["bit_generator"])
        gen = np.random.Generator(bit_cls())
        gen.bit_generator.state = state
        return gen
    rng.bit_generator.state = state
    return rng


class StreamSampler(abc.ABC):
    """Abstract base class for every streaming sampler and sketch.

    Subclasses implement :meth:`update` (and usually :meth:`sample`), plus
    the two state hooks ``_config()`` and ``_get_state()``/``_set_state()``
    that power :meth:`to_state`/:meth:`from_state`.  Everything else —
    batch ingestion, the estimator facade, pure merges, copying — comes for
    free from this base class.
    """

    #: Registry name, set by :func:`repro.api.registry.register_sampler`.
    sampler_name: ClassVar[str | None] = None
    #: Whether :meth:`merge` combines two instances over disjoint streams
    #: into a valid sketch of the concatenated stream.  Classes that
    #: implement ``merge`` declare this True; execution layers (the sharded
    #: engine) consult it to reject configurations they cannot reduce.
    mergeable: ClassVar[bool] = False
    #: The ``estimate()`` facade's default ``kind``.
    default_estimate_kind: ClassVar[str] = "total"
    #: When set, ``estimate(<non-kind>)`` is interpreted as a legacy call
    #: passing this parameter positionally (e.g. ``sketch.estimate(key)``).
    legacy_estimate_param: ClassVar[str | None] = None
    #: Per-aggregate capability table for the declarative query layer —
    #: every :data:`QUERY_AGGREGATES` name maps to ``True`` (supported) or
    #: a reason string for the gap.  Declare with :func:`query_support`;
    #: the base default supports nothing.
    query_capabilities: ClassVar[Mapping[str, bool | str]] = {
        name: _NO_SAMPLE_REASON for name in QUERY_AGGREGATES
    }
    #: Whether this sampler's ``sample()`` carries genuine pseudo-inclusion
    #: probabilities, licensing the HT plug-in variance and the normal
    #: confidence intervals of ``query(..., ci=...)``.  Classes whose
    #: samples degenerate to probability-1 rows (pre-adjusted weights,
    #: deterministic counters) set a reason string instead, and the query
    #: layer refuses ``ci=`` requests with that reason.
    query_variance: ClassVar[bool | str] = True
    #: Whether ``query(..., window=/last=/decay=)`` can scope estimation
    #: by arrival time.  ``True`` requires ``sample()`` to attach a
    #: ``times`` column (the planner's time pass masks and discounts by
    #: it); samplers without a time notion keep the default reason string
    #: and the planner refuses time-scoped queries with it.
    query_windowed: ClassVar[bool | str] = _NO_TIME_REASON
    #: Whether :meth:`resize` can change the sketch budget ``k`` online
    #: while keeping the estimators unbiased (shrink folds the retained
    #: set under a lowered threshold; grow caps the threshold at its
    #: pre-resize value, which 1-substitutability makes sound).  Classes
    #: that implement ``resize`` declare this True; the serving control
    #: plane consults it before proposing ``k`` retunes.
    resizable: ClassVar[bool] = False

    def __init_subclass__(cls, **kwargs):
        """Auto-wrap subclass mutators so ``state_version`` tracks them."""
        super().__init_subclass__(**kwargs)
        for name in _VERSIONED_MUTATORS:
            fn = cls.__dict__.get(name)
            if callable(fn) and not getattr(fn, "_bumps_state_version", False):
                setattr(cls, name, _bumps_state_version(fn))

    # ------------------------------------------------------------------
    # Canonical stream interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def update(self, key, weight: float = 1.0, *, value=None, time=None):
        """Offer one item to the sampler.

        Parameters
        ----------
        key:
            Item identifier (any hashable object).
        weight:
            Sampling weight (ignored by unweighted samplers).
        value:
            Payload aggregated by subset-sum estimators; defaults to the
            weight.
        time:
            Arrival time, for time-aware samplers (sliding windows, decay).

        Returns
        -------
        bool or None
            ``True``/``False`` when the sampler can cheaply report whether
            the item is currently retained, ``None`` otherwise.
        """

    def update_many(self, keys, weights=None, values=None, times=None) -> None:
        """Offer a batch of items.

        The base implementation is a plain loop over :meth:`update`;
        samplers with a numpy fast path (bottom-k, Poisson, the distinct
        sketches) override it with genuinely vectorized bulk ingestion.
        Both paths consume randomness identically, so a given seed yields
        the same sample either way.
        """
        keys = _as_key_list(keys)
        n = len(keys)
        weights = _as_optional_array(weights, n, "weights")
        values = _as_optional_array(values, n, "values")
        times = _as_optional_array(times, n, "times")
        for i, key in enumerate(keys):
            self.update(
                key,
                1.0 if weights is None else float(weights[i]),
                value=None if values is None else float(values[i]),
                time=None if times is None else float(times[i]),
            )

    def extend(self, keys, weights=None, values=None) -> None:
        """Deprecated alias of :meth:`update_many`."""
        warnings.warn(
            f"{type(self).__name__}.extend() is deprecated; use "
            "update_many(keys, weights=..., values=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.update_many(keys, weights=weights, values=values)

    def sample(self):
        """Finalize into a :class:`repro.core.sample.Sample`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not produce Sample containers"
        )

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "StreamSampler") -> "StreamSampler":
        """Absorb ``other`` (a sampler over a disjoint stream) into ``self``.

        In-place; returns ``self`` so merges chain.  Use :func:`merged` or
        the ``|`` operator for the pure variant.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support merging"
        )

    def __or__(self, other: "StreamSampler") -> "StreamSampler":
        """Pure merge: ``a | b`` returns a new sampler, leaving both inputs
        untouched (equivalent to :func:`merged`)."""
        if not isinstance(other, StreamSampler):
            return NotImplemented
        return merged(self, other)

    # ------------------------------------------------------------------
    # Online resizing
    # ------------------------------------------------------------------
    def resize(self, k: int) -> "StreamSampler":
        """Change the sketch budget to ``k`` mid-stream, in place.

        Only classes declaring :attr:`resizable` implement this.  The
        contract: after ``resize``, estimates remain unbiased for the
        whole stream (prefix ingested before the resize included) —
        shrinking folds the retained set under the new, lower threshold;
        growing keeps admitting under the pre-resize threshold as a cap
        until the enlarged budget genuinely fills.  Returns ``self``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support online resizing"
        )

    # ------------------------------------------------------------------
    # Estimation facade
    # ------------------------------------------------------------------
    @classmethod
    def estimate_kinds(cls) -> tuple[str, ...]:
        """The ``kind`` values :meth:`estimate` accepts for this sampler."""
        kinds = []
        for name in dir(cls):
            if name.startswith("estimate_") and name != "estimate_kinds":
                if callable(getattr(cls, name)):
                    kinds.append(name[len("estimate_"):])
        return tuple(sorted(kinds))

    def estimate(self, kind: str | None = None, predicate=None, **kw):
        """Unified estimator facade.

        Dispatches ``estimate(kind="total", predicate=...)`` to the
        sampler's ``estimate_total(predicate=...)`` method and so on; with
        no arguments the sampler's natural estimator
        (:attr:`default_estimate_kind`) runs.  Extra keyword arguments are
        forwarded (e.g. ``estimate("count", key="x")`` on a top-k sampler).
        """
        explicit = kind is not None
        if kind is None:
            kind = self.default_estimate_kind
        kinds = self.estimate_kinds()
        resolved = isinstance(kind, str) and kind in kinds
        if resolved and explicit and self.legacy_estimate_param is not None:
            # A legacy key may collide with a kind name ("count", ...); if
            # the kind's estimator cannot even be called with the provided
            # arguments, the caller meant the legacy positional key.  The
            # probe must include the predicate (it is forwarded below), or
            # estimate("subset_sum", predicate=...) would misroute to the
            # legacy path whenever the estimator requires its predicate.
            fn = getattr(self, f"estimate_{kind}")
            probe = dict(kw)
            if (
                predicate is not None
                and "predicate" in inspect.signature(fn).parameters
            ):
                probe["predicate"] = predicate
            try:
                inspect.signature(fn).bind(**probe)
            except TypeError:
                resolved = False
        if not resolved:
            if self.legacy_estimate_param is not None:
                warnings.warn(
                    f"{type(self).__name__}.estimate({kind!r}) with a "
                    f"positional {self.legacy_estimate_param} is deprecated; "
                    f"use estimate_{self.default_estimate_kind}"
                    f"({self.legacy_estimate_param}=...) or "
                    f"estimate(kind, {self.legacy_estimate_param}=...)",
                    DeprecationWarning,
                    stacklevel=2,
                )
                kw[self.legacy_estimate_param] = kind
                kind = self.default_estimate_kind
            else:
                raise ValueError(self._unknown_kind_message(kind))
        fn = getattr(self, f"estimate_{kind}")
        if predicate is not None:
            if "predicate" not in inspect.signature(fn).parameters:
                raise ValueError(
                    f"estimator kind {kind!r} of {type(self).__name__} does "
                    "not accept a predicate"
                )
            kw["predicate"] = predicate
        return fn(**kw)

    def _unknown_kind_message(self, kind) -> str:
        """Unknown-``kind`` diagnostics, derived from the live surfaces.

        Both listings come from single sources of truth — the scanned
        ``estimate_*`` methods and the declared capability table — never
        from hand-maintained strings, so the message cannot drift from
        what the sampler actually accepts (pinned by
        ``tests/query/test_capability_pinning.py``).
        """
        msg = (
            f"{type(self).__name__} has no estimator kind {kind!r}; "
            f"available kinds: {', '.join(self.estimate_kinds())}"
        )
        supported = self.supported_aggregates()
        if supported:
            msg += (
                "; declarative queries (.query()) support aggregates: "
                + ", ".join(supported)
            )
        return msg

    # ------------------------------------------------------------------
    # Declarative query layer
    # ------------------------------------------------------------------
    def supported_aggregates(self) -> tuple[str, ...]:
        """Aggregates :meth:`query` answers for this sampler.

        Reads :attr:`query_capabilities` on the instance, so execution
        layers that mirror a wrapped class's table (the sharded engine)
        report the wrapped capabilities.
        """
        return tuple(
            name
            for name in QUERY_AGGREGATES
            if self.query_capabilities.get(name) is True
        )

    def query_gap_reason(self, aggregate: str) -> str | None:
        """The declared reason ``aggregate`` is unsupported (None if it
        is supported)."""
        if aggregate not in QUERY_AGGREGATES:
            raise ValueError(
                f"unknown query aggregate {aggregate!r}; expected one of "
                + ", ".join(QUERY_AGGREGATES)
            )
        entry = self.query_capabilities.get(aggregate, _NO_SAMPLE_REASON)
        return None if entry is True else str(entry)

    @property
    def state_version(self) -> int:
        """Monotonic mutation counter (bumped by every update/merge/restore).

        Maintained automatically by the ``__init_subclass__`` mutator
        wrapping; the (version, fingerprint) pair keys the :meth:`query`
        result cache, so cached answers invalidate on any state change.
        """
        return self.__dict__.get("_state_version", 0)

    def query(self, query=None, /, **kw):
        """Answer a declarative :class:`repro.query.Query` over this sampler.

        Accepts a prebuilt :class:`~repro.query.Query`, an aggregate name
        plus keyword options, or the :class:`~repro.query.Query` keyword
        arguments directly::

            sampler.query("sum", where=lambda k: k % 2 == 0, ci=0.95)
            sampler.query(aggregate="mean", group_by=region_of)
            sampler.query(Query("distinct"))

        Results are cached per instance, keyed by ``(state_version,
        query.fingerprint())`` — repeated dashboard polls between updates
        are O(1), and any mutation invalidates the cache.  Execution is a
        single vectorized pass over :meth:`sample`'s arrays; see
        :mod:`repro.query` for planning, executors and variance plug-ins.
        """
        from ..query import Query
        from ..query.planner import execute

        if isinstance(query, Query):
            if kw:
                raise TypeError(
                    "pass either a Query object or keyword arguments, not both"
                )
            spec = query
        elif isinstance(query, str):
            spec = Query(aggregate=query, **kw)
        elif query is None:
            spec = Query(**kw)
        else:
            raise TypeError(
                "query() takes a Query, an aggregate name, or Query keyword "
                f"arguments; got {type(query).__name__}"
            )
        version = self.state_version
        cache = self.__dict__.setdefault("_query_cache", {})
        fp = spec.fingerprint()
        hit = cache.get(fp)
        if hit is not None and hit[0] == version:
            return hit[2]
        result = execute(self, spec)
        cache.pop(fp, None)
        while len(cache) >= _QUERY_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        # The entry retains the spec itself: callables fingerprint by
        # id(), so the cached spec must keep them alive — otherwise a
        # recycled id from a fresh lambda could false-hit a stale entry.
        cache[fp] = (version, spec, result)
        return result

    def snapshot_state(self) -> tuple[int, dict]:
        """Atomic ``(state_version, to_state())`` pair.

        The version hook for checkpoint writers (the serving runtime's
        :class:`~repro.serve.CheckpointStore`): capturing both in one
        call pins which mutation epoch a persisted checkpoint describes,
        so a recovered sampler can be correlated with the version-pinned
        query results (:attr:`repro.query.QueryResult.state_version`)
        that were served from it.
        """
        return self.state_version, self.to_state()

    def observe(self) -> dict:
        """Operational gauges describing the sampler's live state.

        The observability hook (:mod:`repro.obs`): a flat
        ``{name: float}`` map of whatever this sampler can report from
        the shared gauge vocabulary — ``state_version`` always;
        ``items_seen``, ``k``, ``fill`` (current retained sample size),
        and ``threshold`` (the inclusion bound tau, ``+Inf`` while a
        bottom-k structure is underfull) when the class exposes them.
        A read-only probe: it must never mutate state (it is
        deliberately *not* in the version-bumped mutator set) and never
        raise — subclasses overriding it should extend the dict, not
        replace the contract.
        """
        gauges = {"state_version": float(self.state_version)}
        for name in ("items_seen", "k", "threshold"):
            try:
                value = getattr(self, name)
            except AttributeError:
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                gauges[name] = float(value)
        try:
            gauges["fill"] = float(len(self))
        except TypeError:
            pass
        return gauges

    # ------------------------------------------------------------------
    # State serialization
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle support: drop the query-result cache and its version.

        Cached specs may hold unpicklable callables, and a revived copy
        is a different instance whose cache must start cold anyway — the
        same contract as the :meth:`to_state` round-trip.
        """
        state = dict(self.__dict__)
        state.pop("_query_cache", None)
        state.pop("_state_version", None)
        return state

    def to_state(self) -> dict:
        """Serialize to a plain dict (constructor params + internal state).

        The result round-trips through :meth:`from_state` (or the
        polymorphic :func:`repro.api.registry.sampler_from_state`) and is
        picklable for cross-process shipping.
        """
        return {
            "sampler": self.sampler_name or type(self).__name__,
            "version": 1,
            "params": self._config(),
            "state": self._get_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamSampler":
        """Rebuild a sampler from :meth:`to_state` output."""
        obj = cls(**state["params"])
        obj._set_state(state["state"])
        return obj

    def copy(self) -> "StreamSampler":
        """An independent deep copy (via the state round-trip)."""
        return type(self).from_state(self.to_state())

    # Hooks for subclasses -----------------------------------------------
    def _config(self) -> dict:
        """Constructor keyword arguments reproducing this sampler's config."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state serialization"
        )

    def _get_state(self) -> dict:
        """Mutable internal state as a plain dict (default: stateless)."""
        return {}

    def _set_state(self, state: dict) -> None:
        """Restore internal state captured by :meth:`_get_state`."""
        if state:
            raise NotImplementedError(
                f"{type(self).__name__} does not implement state restoration"
            )


def merged(a: StreamSampler, b: StreamSampler) -> StreamSampler:
    """Pure merge: combine two samplers without mutating either input.

    Equivalent to ``a.copy().merge(b)`` — the protocol-level
    :meth:`StreamSampler.merge` is in-place, so this helper (also spelled
    ``a | b``) is the functional form for reduce-style pipelines that must
    keep their inputs intact.
    """
    return a.copy().merge(b)


# ----------------------------------------------------------------------
# Shared coercion helpers for update_many implementations
# ----------------------------------------------------------------------
def _as_key_list(keys) -> list:
    """Coerce a key batch to a plain list (numpy scalars become python)."""
    if isinstance(keys, np.ndarray):
        return keys.tolist()
    return list(keys)


def _as_optional_array(arr, n: int, name: str) -> np.ndarray | None:
    """Coerce an optional per-item column to a float array of length n."""
    if arr is None:
        return None
    out = np.asarray(arr, dtype=float)
    if out.size != n:
        raise ValueError(f"{name} must have the same length as keys")
    return out
