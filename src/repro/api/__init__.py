"""Unified sampler API: protocol, registry/factory, and serialization.

See :mod:`repro.api.protocol` for the :class:`StreamSampler` contract and
:mod:`repro.api.registry` for config-driven construction
(``make_sampler``/``SamplerSpec``) and checkpoint revival
(``sampler_from_state``).
"""

from .protocol import (
    QUERY_AGGREGATES,
    StreamSampler,
    family_from_name,
    family_to_name,
    merged,
    query_support,
    rng_from_state,
    rng_to_state,
)
from .registry import (
    SamplerSpec,
    available_samplers,
    get_sampler_class,
    make_sampler,
    register_sampler,
    sampler_from_state,
)

__all__ = [
    "StreamSampler",
    "QUERY_AGGREGATES",
    "query_support",
    "merged",
    "family_to_name",
    "family_from_name",
    "rng_to_state",
    "rng_from_state",
    "register_sampler",
    "make_sampler",
    "get_sampler_class",
    "available_samplers",
    "sampler_from_state",
    "SamplerSpec",
]
