"""Sampler registry and config-driven factory.

Deployments construct samplers from configuration rather than code: a
config names a registered sampler ("bottom_k", "sliding_window", ...) plus
its keyword parameters, and :func:`make_sampler` (or a
:class:`SamplerSpec`) builds it.  Checkpoint dicts produced by
``StreamSampler.to_state`` carry the same name, so
:func:`sampler_from_state` can revive a sampler without knowing its class.

Every sampler in :mod:`repro.samplers` and every baseline sketch in
:mod:`repro.baselines` registers itself with the
:func:`register_sampler` class decorator at import time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "register_sampler",
    "make_sampler",
    "get_sampler_class",
    "available_samplers",
    "sampler_from_state",
    "SamplerSpec",
]

_REGISTRY: dict[str, type] = {}


def register_sampler(name: str):
    """Class decorator registering a sampler under a config name.

    Sets ``cls.sampler_name`` (used by ``to_state``) and makes the class
    constructible via :func:`make_sampler` and :class:`SamplerSpec`.
    """

    def decorator(cls):
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"sampler name {name!r} already registered to "
                f"{existing.__name__}"
            )
        _REGISTRY[name] = cls
        cls.sampler_name = name
        return cls

    return decorator


def _ensure_registered() -> None:
    """Import the sampler packages so their decorators have run."""
    from .. import baselines, engine, samplers  # noqa: F401  (import side effect)


def get_sampler_class(name: str) -> type:
    """Return the class registered under ``name``."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown sampler {name!r}; available: "
            + ", ".join(available_samplers())
        ) from None


def available_samplers() -> tuple[str, ...]:
    """Names of every registered sampler, sorted."""
    _ensure_registered()
    return tuple(sorted(_REGISTRY))


def make_sampler(name: str, **params):
    """Build a registered sampler from its config name.

    >>> sampler = make_sampler("bottom_k", k=100)
    >>> sampler.update("item", weight=2.0)
    True
    """
    return get_sampler_class(name)(**params)


def sampler_from_state(state: dict):
    """Revive any registered sampler from a ``to_state`` checkpoint dict."""
    return get_sampler_class(state["sampler"]).from_state(state)


@dataclass(frozen=True)
class SamplerSpec:
    """A declarative sampler configuration (name + constructor params).

    The dataclass is what config files deserialize into; ``build()`` turns
    it into a live sampler.

    >>> spec = SamplerSpec("bottom_k", {"k": 64})
    >>> type(spec.build()).__name__
    'BottomKSampler'
    """

    name: str
    params: dict = field(default_factory=dict)

    def build(self):
        """Instantiate the configured sampler."""
        return make_sampler(self.name, **self.params)

    def as_dict(self) -> dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, spec: dict) -> "SamplerSpec":
        """Build a spec from ``{"name": ..., "params": {...}}``."""
        return cls(name=spec["name"], params=dict(spec.get("params", {})))
