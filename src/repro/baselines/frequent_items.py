"""FrequentItems sketch — the Apache DataSketches baseline of Figure 3.

A Misra–Gries variant with lazy median purges (Anderson et al., IMC 2017,
cited as [1]): counts live in a hash map of capacity ``max_map_size``; when
the load factor passes 0.75 the sketch subtracts the median count from
every entry, drops non-positive entries, and remembers the cumulative
subtraction as the global error offset.  Estimates are ``count + offset``
(upper bound); the guarantee is ``offset <= n / (0.75 * max_map_size)``.

The paper reports the sketch "size" as 0.75x the allocated hash table
(:attr:`FrequentItemsSketch.nominal_size`), and queries the top-k by
estimate — both conventions are reproduced here and used by
``repro.experiments.figure3``.
"""

from __future__ import annotations

import statistics
from typing import Iterable

__all__ = ["FrequentItemsSketch"]


class FrequentItemsSketch:
    """Misra–Gries sketch with DataSketches-style median purges.

    Parameters
    ----------
    max_map_size:
        Allocated hash-map capacity; the sketch purges when the number of
        tracked keys would exceed ``0.75 * max_map_size``.
    """

    LOAD_FACTOR = 0.75

    def __init__(self, max_map_size: int):
        if max_map_size < 2:
            raise ValueError("max_map_size must be at least 2")
        self.max_map_size = int(max_map_size)
        self.counts: dict[object, int] = {}
        self.offset = 0  # cumulative purge subtraction (max undercount)
        self.items_seen = 0

    @property
    def nominal_size(self) -> int:
        """The size the paper reports: 0.75x the allocated table."""
        return int(self.LOAD_FACTOR * self.max_map_size)

    def update(self, key: object, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key``."""
        if count <= 0:
            raise ValueError("count must be positive")
        self.items_seen += count
        if key in self.counts:
            self.counts[key] += count
            return
        if len(self.counts) >= self.nominal_size:
            self._purge()
        # After a purge the new key may still not fit only if every count
        # was identical; subtracting the median removes at least half the
        # entries otherwise.  Insert unconditionally, matching DataSketches.
        self.counts[key] = count

    def extend(self, keys: Iterable[object]) -> None:
        """Bulk :meth:`update`."""
        for key in keys:
            self.update(key)

    def _purge(self) -> None:
        """Subtract the median count, drop non-positive entries."""
        median = int(statistics.median(self.counts.values()))
        median = max(median, 1)
        self.offset += median
        self.counts = {
            key: c - median for key, c in self.counts.items() if c - median > 0
        }

    def __len__(self) -> int:
        return len(self.counts)

    def estimate(self, key: object) -> int:
        """Upper-bound estimate ``count + offset`` (0 for untracked keys)."""
        if key not in self.counts:
            return 0
        return self.counts[key] + self.offset

    def lower_bound(self, key: object) -> int:
        """Guaranteed lower bound on the true count."""
        return self.counts.get(key, 0)

    def top(self, j: int) -> list[tuple[object, int]]:
        """The ``j`` keys with the largest estimates."""
        ranked = sorted(self.counts.items(), key=lambda kv: kv[1], reverse=True)
        return [(key, c + self.offset) for key, c in ranked[:j]]

    @property
    def maximum_error(self) -> int:
        """Current worst-case undercount for any tracked key."""
        return self.offset
