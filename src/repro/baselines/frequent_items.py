"""FrequentItems sketch — the Apache DataSketches baseline of Figure 3.

A Misra–Gries variant with lazy median purges (Anderson et al., IMC 2017,
cited as [1]): counts live in a hash map of capacity ``max_map_size``; when
the load factor passes 0.75 the sketch subtracts the median count from
every entry, drops non-positive entries, and remembers the cumulative
subtraction as the global error offset.  Estimates are ``count + offset``
(upper bound); the guarantee is ``offset <= n / (0.75 * max_map_size)``.

The paper reports the sketch "size" as 0.75x the allocated hash table
(:attr:`FrequentItemsSketch.nominal_size`), and queries the top-k by
estimate — both conventions are reproduced here and used by
``repro.experiments.figure3``.
"""

from __future__ import annotations

import heapq
import statistics

import numpy as np

from ..api import StreamSampler, query_support, register_sampler
from ..api.protocol import _as_key_list, _as_optional_array
from ..core.kernels import int_key_array
from ..core.priorities import Uniform01Priority
from ..core.sample import Sample

#: Chunk length of the batch ingestion scan (see ``update_many``).
_CHUNK = 4096

__all__ = ["FrequentItemsSketch"]


@register_sampler("frequent_items")
class FrequentItemsSketch(StreamSampler):
    """Misra–Gries sketch with DataSketches-style median purges.

    Parameters
    ----------
    max_map_size:
        Allocated hash-map capacity; the sketch purges when the number of
        tracked keys would exceed ``0.75 * max_map_size``.
    """

    LOAD_FACTOR = 0.75
    default_estimate_kind = "count"
    legacy_estimate_param = "key"
    _DETERMINISTIC_REASON = (
        "deterministic undercount sketch (biased by design); no inclusion "
        "probabilities for HT estimation"
    )
    query_capabilities = query_support(
        sum=_DETERMINISTIC_REASON,
        count=_DETERMINISTIC_REASON,
        mean=_DETERMINISTIC_REASON,
        distinct=_DETERMINISTIC_REASON,
        topk=_DETERMINISTIC_REASON,
        quantile=_DETERMINISTIC_REASON,
    )
    query_variance = _DETERMINISTIC_REASON

    def __init__(self, max_map_size: int):
        if max_map_size < 2:
            raise ValueError("max_map_size must be at least 2")
        self.max_map_size = int(max_map_size)
        self.counts: dict[object, int] = {}
        self.offset = 0  # cumulative purge subtraction (max undercount)
        self.items_seen = 0

    @property
    def nominal_size(self) -> int:
        """The size the paper reports: 0.75x the allocated table."""
        return int(self.LOAD_FACTOR * self.max_map_size)

    def update(
        self,
        key: object,
        weight: float = 1.0,
        *,
        value=None,
        time=None,
        count: int | None = None,
    ) -> None:
        """Add occurrences of ``key``.

        ``count`` (equivalently a positional integer ``weight``, kept for
        the canonical protocol signature) is the number of occurrences.
        """
        count = int(weight) if count is None else int(count)
        if count <= 0:
            raise ValueError("count must be positive")
        self.items_seen += count
        if key in self.counts:
            self.counts[key] += count
            return
        if len(self.counts) >= self.nominal_size:
            self._purge()
        # After a purge the new key may still not fit only if every count
        # was identical; subtracting the median removes at least half the
        # entries otherwise.  Insert unconditionally, matching DataSketches.
        self.counts[key] = count

    def update_many(self, keys, weights=None, values=None, times=None) -> None:
        """Vectorized bulk :meth:`update`.

        Occurrences of tracked keys are pure counter additions and commute
        between purges; purges can only trigger on an *untracked* key's
        arrival, and purges are the only point where the exact counter
        values matter (the median).  The batch path therefore defers all
        increments: it scans the stream in chunks (one vectorized mask
        lookup per chunk finds the untracked-key positions), replays only
        the untracked-key events in stream order, and materializes the
        deferred span of increments in a single ``bincount``/``unique``
        pass right before each purge — whose dropped keys turn their
        remaining chunk occurrences back into events.  The sketch is
        deterministic, so the resulting state is identical to scalar
        ingestion.

        Key batches that are not bounded non-negative integer arrays fall
        back to the scalar loop.
        """
        raw = keys
        n = len(keys)
        if n == 0:
            return
        w = _as_optional_array(weights, n, "weights")
        if w is None:
            occ_counts = None
        else:
            occ_counts = w.astype(np.int64)
            if np.any(occ_counts <= 0):
                raise ValueError("count must be positive")
        arr = int_key_array(raw if isinstance(raw, np.ndarray) else None)
        if arr is None:
            key_list = _as_key_list(raw)
            if occ_counts is None:
                for key in key_list:
                    self.update(key)
            else:
                for key, count in zip(key_list, occ_counts.tolist()):
                    self.update(key, count=count)
            return

        counts = self.counts
        nominal = self.nominal_size
        total = n if occ_counts is None else int(occ_counts.sum())
        kmax = int(arr.max()) + 1
        tracked = np.zeros(kmax, dtype=bool)
        in_range = [
            k for k in counts
            if isinstance(k, (int, np.integer)) and 0 <= k < kmax
        ]
        if in_range:
            tracked[in_range] = True

        heappush, heappop = heapq.heappush, heapq.heappop
        flush_from = 0          # first position whose increment is deferred
        event_corr: dict = {}   # key -> deferred-span weight of its events

        def flush(bound: int) -> None:
            """Apply the deferred increments in [flush_from, bound).

            Every occurrence in the span is an increment of a tracked key
            except the event positions (an inserting event's own occurrence
            entered the map via the insert); their weights are recorded in
            ``event_corr`` and subtracted.
            """
            nonlocal flush_from
            if bound <= flush_from:
                event_corr.clear()
                return
            seg = arr[flush_from:bound]
            wseg = None if occ_counts is None else occ_counts[flush_from:bound]
            if kmax <= 4 * seg.size:
                if wseg is None:
                    pending = np.bincount(seg, minlength=kmax)
                else:
                    pending = np.bincount(seg, weights=wseg, minlength=kmax)
                for key, c in event_corr.items():
                    pending[key] -= c
                for key in np.flatnonzero(pending).tolist():
                    counts[key] += int(pending[key])
            else:
                if wseg is None:
                    uniq, cnts = np.unique(seg, return_counts=True)
                else:
                    uniq, inv = np.unique(seg, return_inverse=True)
                    cnts = np.bincount(inv, weights=wseg)
                corr_get = event_corr.get
                for key, c in zip(uniq.tolist(), cnts.tolist()):
                    c = int(c) - corr_get(key, 0)
                    if c:
                        counts[key] += c
            event_corr.clear()
            flush_from = bound

        pos = 0
        bailed = False
        while pos < n:
            ce = min(n, pos + _CHUNK)
            chunk = arr[pos:ce]
            cand = np.flatnonzero(~tracked[chunk]).tolist()
            if not cand:
                pos = ce
                continue
            if pos and 2 * len(cand) > ce - pos:
                bailed = True  # event-dominated past warm-up: go scalar
                break
            ci = 0
            n_cand = len(cand)
            chunk_len = ce - pos
            extra: list[int] = []  # re-dropped keys' remaining positions
            while True:
                nxt_c = cand[ci] if ci < n_cand else _CHUNK
                nxt_e = extra[0] if extra else _CHUNK
                rel = nxt_c if nxt_c <= nxt_e else nxt_e
                if rel >= chunk_len:
                    break
                while ci < n_cand and cand[ci] == rel:
                    ci += 1
                while extra and extra[0] == rel:
                    heappop(extra)
                key = int(chunk[rel])
                if tracked[key]:
                    continue  # tracked since the mask was built: deferred
                count = 1 if occ_counts is None else int(occ_counts[pos + rel])
                if len(counts) >= nominal:
                    flush(pos + rel)
                    dropped = self._purge()
                    counts = self.counts  # _purge rebinds the map
                    if dropped:
                        dflags = np.zeros(kmax, dtype=bool)
                        in_batch = [
                            k for k in dropped
                            if isinstance(k, (int, np.integer))
                            and 0 <= k < kmax
                        ]
                        if in_batch:
                            dflags[in_batch] = True
                            tracked[in_batch] = False
                            for r2 in np.flatnonzero(
                                dflags[chunk[rel + 1:]]
                            ).tolist():
                                heappush(extra, rel + 1 + r2)
                counts[key] = count
                tracked[key] = True
                event_corr[key] = event_corr.get(key, 0) + count
            pos = ce
        flush(pos)
        self.items_seen += (
            pos if occ_counts is None else int(occ_counts[:pos].sum())
        )
        if bailed:
            rest = arr[pos:].tolist()
            if occ_counts is None:
                for key in rest:
                    self.update(key)
            else:
                for key, count in zip(rest, occ_counts[pos:].tolist()):
                    self.update(key, count=count)

    def _purge(self) -> list:
        """Subtract the median count, drop non-positive entries.

        Returns the dropped keys (the batch path turns their remaining
        occurrences back into events).
        """
        median = int(statistics.median(self.counts.values()))
        median = max(median, 1)
        self.offset += median
        survivors = {}
        dropped = []
        for key, c in self.counts.items():
            if c - median > 0:
                survivors[key] = c - median
            else:
                dropped.append(key)
        self.counts = survivors
        return dropped

    def __len__(self) -> int:
        return len(self.counts)

    def estimate_count(self, key: object) -> int:
        """Upper-bound estimate ``count + offset`` (0 for untracked keys).

        The legacy spelling ``estimate(key)`` still works through the
        protocol facade (with a deprecation warning).
        """
        if key not in self.counts:
            return 0
        return self.counts[key] + self.offset

    def lower_bound(self, key: object) -> int:
        """Guaranteed lower bound on the true count."""
        return self.counts.get(key, 0)

    def top(self, j: int) -> list[tuple[object, int]]:
        """The ``j`` keys with the largest estimates."""
        ranked = sorted(self.counts.items(), key=lambda kv: kv[1], reverse=True)
        return [(key, c + self.offset) for key, c in ranked[:j]]

    @property
    def maximum_error(self) -> int:
        """Current worst-case undercount for any tracked key."""
        return self.offset

    def sample(self) -> Sample:
        """Tracked keys with their count estimates as values.

        The sketch is deterministic (no thresholds); values carry the
        upper-bound estimates, so ``sample().ht_total()`` bounds the
        tracked mass from above.
        """
        keys = list(self.counts)
        return Sample(
            keys=keys,
            values=np.array(
                [self.counts[k] + self.offset for k in keys], dtype=float
            ),
            weights=np.ones(len(keys)),
            priorities=np.zeros(len(keys)),
            thresholds=np.full(len(keys), np.inf),
            family=Uniform01Priority(),
            population_size=self.items_seen,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _config(self) -> dict:
        return {"max_map_size": self.max_map_size}

    def _get_state(self) -> dict:
        return {
            "counts": list(self.counts.items()),
            "offset": self.offset,
            "items_seen": self.items_seen,
        }

    def _set_state(self, state: dict) -> None:
        self.counts = dict(state["counts"])
        self.offset = int(state["offset"])
        self.items_seen = int(state["items_seen"])
