"""FrequentItems sketch — the Apache DataSketches baseline of Figure 3.

A Misra–Gries variant with lazy median purges (Anderson et al., IMC 2017,
cited as [1]): counts live in a hash map of capacity ``max_map_size``; when
the load factor passes 0.75 the sketch subtracts the median count from
every entry, drops non-positive entries, and remembers the cumulative
subtraction as the global error offset.  Estimates are ``count + offset``
(upper bound); the guarantee is ``offset <= n / (0.75 * max_map_size)``.

The paper reports the sketch "size" as 0.75x the allocated hash table
(:attr:`FrequentItemsSketch.nominal_size`), and queries the top-k by
estimate — both conventions are reproduced here and used by
``repro.experiments.figure3``.
"""

from __future__ import annotations

import statistics

import numpy as np

from ..api import StreamSampler, register_sampler
from ..core.priorities import Uniform01Priority
from ..core.sample import Sample

__all__ = ["FrequentItemsSketch"]


@register_sampler("frequent_items")
class FrequentItemsSketch(StreamSampler):
    """Misra–Gries sketch with DataSketches-style median purges.

    Parameters
    ----------
    max_map_size:
        Allocated hash-map capacity; the sketch purges when the number of
        tracked keys would exceed ``0.75 * max_map_size``.
    """

    LOAD_FACTOR = 0.75
    default_estimate_kind = "count"
    legacy_estimate_param = "key"

    def __init__(self, max_map_size: int):
        if max_map_size < 2:
            raise ValueError("max_map_size must be at least 2")
        self.max_map_size = int(max_map_size)
        self.counts: dict[object, int] = {}
        self.offset = 0  # cumulative purge subtraction (max undercount)
        self.items_seen = 0

    @property
    def nominal_size(self) -> int:
        """The size the paper reports: 0.75x the allocated table."""
        return int(self.LOAD_FACTOR * self.max_map_size)

    def update(
        self,
        key: object,
        weight: float = 1.0,
        *,
        value=None,
        time=None,
        count: int | None = None,
    ) -> None:
        """Add occurrences of ``key``.

        ``count`` (equivalently a positional integer ``weight``, kept for
        the canonical protocol signature) is the number of occurrences.
        """
        count = int(weight) if count is None else int(count)
        if count <= 0:
            raise ValueError("count must be positive")
        self.items_seen += count
        if key in self.counts:
            self.counts[key] += count
            return
        if len(self.counts) >= self.nominal_size:
            self._purge()
        # After a purge the new key may still not fit only if every count
        # was identical; subtracting the median removes at least half the
        # entries otherwise.  Insert unconditionally, matching DataSketches.
        self.counts[key] = count

    def _purge(self) -> None:
        """Subtract the median count, drop non-positive entries."""
        median = int(statistics.median(self.counts.values()))
        median = max(median, 1)
        self.offset += median
        self.counts = {
            key: c - median for key, c in self.counts.items() if c - median > 0
        }

    def __len__(self) -> int:
        return len(self.counts)

    def estimate_count(self, key: object) -> int:
        """Upper-bound estimate ``count + offset`` (0 for untracked keys).

        The legacy spelling ``estimate(key)`` still works through the
        protocol facade (with a deprecation warning).
        """
        if key not in self.counts:
            return 0
        return self.counts[key] + self.offset

    def lower_bound(self, key: object) -> int:
        """Guaranteed lower bound on the true count."""
        return self.counts.get(key, 0)

    def top(self, j: int) -> list[tuple[object, int]]:
        """The ``j`` keys with the largest estimates."""
        ranked = sorted(self.counts.items(), key=lambda kv: kv[1], reverse=True)
        return [(key, c + self.offset) for key, c in ranked[:j]]

    @property
    def maximum_error(self) -> int:
        """Current worst-case undercount for any tracked key."""
        return self.offset

    def sample(self) -> Sample:
        """Tracked keys with their count estimates as values.

        The sketch is deterministic (no thresholds); values carry the
        upper-bound estimates, so ``sample().ht_total()`` bounds the
        tracked mass from above.
        """
        keys = list(self.counts)
        return Sample(
            keys=keys,
            values=np.array(
                [self.counts[k] + self.offset for k in keys], dtype=float
            ),
            weights=np.ones(len(keys)),
            priorities=np.zeros(len(keys)),
            thresholds=np.full(len(keys), np.inf),
            family=Uniform01Priority(),
            population_size=self.items_seen,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _config(self) -> dict:
        return {"max_map_size": self.max_map_size}

    def _get_state(self) -> dict:
        return {
            "counts": list(self.counts.items()),
            "offset": self.offset,
            "items_seen": self.items_seen,
        }

    def _set_state(self, state: dict) -> None:
        self.counts = dict(state["counts"])
        self.offset = int(state["offset"])
        self.items_seen = int(state["items_seen"])
