"""Space-Saving and Unbiased Space-Saving baselines.

* :class:`SpaceSavingSketch` — Metwally et al.'s deterministic frequent-item
  sketch (cited as [22]): fixed capacity ``m``; a new key evicts the
  minimum-count entry and inherits ``min_count + 1`` with error bound
  ``min_count``.
* :class:`UnbiasedSpaceSavingSketch` — Ting (2018), cited as [30]: identical
  except the *label* of the minimum counter is handed to the new key only
  with probability ``1 / (min_count + 1)``.  This makes every counter an
  unbiased estimate of its labelled key's count, enabling the disaggregated
  subset sums that the paper's adaptive top-k sampler (Section 3.3)
  generalizes with thresholds.

Both serve as context baselines for Figure 3 and as comparison points in
the top-k tests.

Batch ingestion
---------------
The min-counter heap is *content addressed*: entries are
``(count, insertion_position, key)`` and an entry is current iff its count
matches the live counter (a key's count strictly increases while tracked,
and — because the minimum counter value never decreases — an evicted key
re-enters at a strictly higher count, so a count value is never revisited).
Eviction victims are therefore a pure function of the counter state —
smallest count, ties broken by earliest insertion — which frees the batch
path from replicating the scalar loop's per-increment heap pushes: it
bulk-counts runs of tracked keys at C speed (``Counter.update``) and lets
:meth:`_CounterStore.pop_min` lazily re-push a key's current entry whenever
it pops a stale one.  Equivalence with scalar ingestion is exact, including
eviction tie-breaks.
"""

from __future__ import annotations

import bisect
import heapq
from collections import Counter
from typing import Callable

import numpy as np

from ..api import StreamSampler, query_support, register_sampler
from ..api.protocol import _as_key_list, rng_from_state, rng_to_state
from ..core.kernels import DrawBuffer, int_key_array
from ..core.priorities import Uniform01Priority
from ..core.rng import as_generator
from ..core.sample import Sample

__all__ = ["SpaceSavingSketch", "UnbiasedSpaceSavingSketch"]

#: Chunk length of the batch ingestion scan; bounds both the cost of the
#: per-eviction "reschedule remaining occurrences" rescan and the staleness
#: of the per-chunk untracked-key candidate mask.
_CHUNK = 2048


class _CounterStore:
    """Capacity-bounded counter map with O(log m) min-counter access.

    Heap entries are ``(count, insertion_position, key)``: ties in count
    evict the earliest-inserted key (any min counter is a valid Space-Saving
    victim; insertion order is the batch-friendly deterministic choice).  A
    key's count strictly increases while tracked and can never return to a
    previously-held value after an eviction (the min counter is monotone),
    so an entry is current iff its count matches ``counts[key]`` —
    ``(count, insertion)`` pairs are unique and the key element of the
    tuple is never compared.

    Scalar ingestion pushes one entry per touch and lets ``pop_min`` skip
    stale ones (the textbook lazy heap).  Batch ingestion bulk-updates
    ``counts`` without pushing and calls ``pop_min(repair=True)``, which
    re-pushes the current entry of any live key it pops stale; at batch end
    every live key gets a fresh current entry so plain ``pop_min`` stays
    correct afterwards.  The heap is compacted once the stale fraction
    grows; compaction preserves exactly the current entries, so it never
    changes eviction order.
    """

    __slots__ = ("capacity", "counts", "errors", "ins", "_heap")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.counts: Counter = Counter()
        self.errors: dict[object, int] = {}
        self.ins: dict[object, int] = {}  # key -> insertion position
        self._heap: list[tuple[int, int, object]] = []

    def increment(self, key: object, by: int = 1) -> None:
        """Bump a tracked key's counter (lazy-heap entry appended)."""
        self.counts[key] += by
        heapq.heappush(self._heap, (self.counts[key], self.ins[key], key))
        if len(self._heap) > 8 * self.capacity + 64:
            self.compact()

    def insert(self, key: object, count: int, error: int, position: int) -> None:
        """Track a key with the given counter, error bound and tiebreak."""
        self.counts[key] = count
        self.errors[key] = error
        self.ins[key] = position
        heapq.heappush(self._heap, (count, position, key))

    def pop_min(self, repair: bool = False):
        """Remove and return the (key, count) minimizing (count, insertion).

        ``repair=True`` is the batch path's lazy-repair mode: popping a
        stale entry of a live key re-pushes its current entry (bulk count
        updates do not push) instead of discarding it.
        """
        heap = self._heap
        while heap:
            count, _, key = heapq.heappop(heap)
            current = self.counts.get(key)
            if current == count:
                del self.counts[key]
                del self.ins[key]
                self.errors.pop(key, None)
                return key, count
            if repair and current is not None:
                heapq.heappush(heap, (current, self.ins[key], key))
        raise KeyError("store is empty")

    def compact(self) -> None:
        """Drop stale heap entries (one current entry per live key)."""
        self._heap = [
            (count, self.ins[key], key) for key, count in self.counts.items()
        ]
        heapq.heapify(self._heap)

    def __len__(self) -> int:
        return len(self.counts)


def _batch_ingest(sketch, raw_keys, handover_draw=None) -> bool | None:
    """Shared exact batch driver for the two Space-Saving variants.

    Occurrences of *tracked* keys commute between evictions, so runs of
    them are bulk-added at C speed (``Counter``'s ``_count_elements``) with
    no heap pushes, while occurrences of untracked keys (the *events*)
    replay in stream order with the store's pop/insert logic inlined.  The
    stream is scanned in chunks: one vectorized mask lookup finds each
    chunk's untracked-key positions, and an eviction of a key tracked since
    before the chunk consults a lazily-built per-chunk occurrence index to
    turn the victim's later occurrences back into events (a victim first
    inserted within the chunk is already covered by the candidate mask).

    ``handover_draw`` is None for deterministic Space-Saving; the unbiased
    variant passes its uniform source and relabels the min counter with
    probability ``1 / new_count``.

    Requires a bounded non-negative integer key array; other key batches
    fall back to the scalar loop (``None`` is returned for dispatch).
    Returns the number of leading items ingested: on a near-distinct
    stream (a later chunk still mostly untracked keys) the event machinery
    cannot beat the scalar loop, so the driver restores the heap
    invariant and hands the remainder back to the caller's scalar path.
    """
    arr = int_key_array(raw_keys)
    if arr is None:
        return None
    n = arr.size
    if n == 0:
        return n
    store = sketch._store
    counts = store.counts
    errors = store.errors
    ins = store.ins
    heap = store._heap
    capacity = sketch.capacity
    base = sketch.items_seen  # stream position of batch item i is base + i + 1
    kmax = int(arr.max()) + 1

    tracked = np.zeros(kmax, dtype=bool)
    in_range = [
        k for k in counts
        if isinstance(k, (int, np.integer)) and 0 <= k < kmax
    ]
    if in_range:
        tracked[in_range] = True

    heappush, heappop = heapq.heappush, heapq.heappop
    try:  # Counter.update's C core, without the method-wrapper overhead
        from _collections import _count_elements as count_into
    except ImportError:  # pragma: no cover - non-CPython
        def count_into(mapping, iterable):
            for elem in iterable:
                mapping[elem] = mapping.get(elem, 0) + 1
    bisect_left = bisect.bisect_left
    counts_get = counts.get
    pos = 0
    while pos < n:
        ce = min(n, pos + _CHUNK)
        chunk = arr[pos:ce]
        lst = chunk.tolist()
        cand = np.flatnonzero(~tracked[chunk]).tolist()
        if pos and 2 * len(cand) > ce - pos:
            break  # still event-dominated past warm-up: bail to scalar
        ci = 0
        n_cand = len(cand)
        chunk_len = ce - pos
        extra: list[int] = []  # rescheduled (chunk-relative) event positions
        became_tracked: set = set()  # keys first inserted within this chunk
        # Occurrence index for eviction rescans, built on first use: chunk
        # positions grouped by key (order within a key is irrelevant — the
        # rescheduled positions go through a heap).
        occ_order = occ_keys = None
        run_start = 0
        while True:
            nxt_c = cand[ci] if ci < n_cand else _CHUNK
            nxt_e = extra[0] if extra else _CHUNK
            rel = nxt_c if nxt_c <= nxt_e else nxt_e
            if rel >= chunk_len:
                if chunk_len > run_start:
                    count_into(counts, lst[run_start:])
                break
            if rel > run_start:
                count_into(counts, lst[run_start:rel])
            # Consume every source entry pointing at this position.
            while ci < n_cand and cand[ci] == rel:
                ci += 1
            while extra and extra[0] == rel:
                heappop(extra)
            key = lst[rel]
            if tracked[key]:
                # Tracked since the chunk mask was built: plain increment.
                counts[key] += 1
            elif len(counts) < capacity:
                p1 = base + pos + rel + 1
                counts[key] = 1
                errors[key] = 0
                ins[key] = p1
                heappush(heap, (1, p1, key))
                tracked[key] = True
                became_tracked.add(key)
            else:
                # Inlined pop_min(repair=True): pop the current min entry,
                # lazily re-pushing current entries of bulk-counted keys.
                while True:
                    min_count, _, min_key = heappop(heap)
                    current = counts_get(min_key)
                    if current == min_count:
                        break
                    if current is not None:
                        heappush(heap, (current, ins[min_key], min_key))
                p1 = base + pos + rel + 1
                new_count = min_count + 1
                if handover_draw is None or handover_draw() < 1.0 / new_count:
                    # Deterministic (or won handover): newcomer replaces it.
                    del counts[min_key]
                    del ins[min_key]
                    errors.pop(min_key, None)
                    counts[key] = new_count
                    errors[key] = min_count
                    ins[key] = p1
                    heappush(heap, (new_count, p1, key))
                    tracked[key] = True
                    became_tracked.add(key)
                    evicted = min_key
                else:
                    # Lost handover: the min counter keeps its label.
                    counts[min_key] = new_count
                    errors[min_key] = min_count
                    ins[min_key] = p1
                    heappush(heap, (new_count, p1, min_key))
                    evicted = None
                if (
                    evicted is not None
                    and type(evicted) is int
                    and 0 <= evicted < kmax
                ):
                    tracked[evicted] = False
                    # The victim's later occurrences in this chunk must be
                    # events again.  A victim first inserted within this
                    # chunk was untracked when the candidate mask was
                    # built, so ``cand`` already covers it; only a victim
                    # tracked since before the chunk needs a rescan.
                    # Later chunks rescan the updated mask either way.
                    if evicted not in became_tracked:
                        if occ_order is None:
                            order = np.argsort(chunk)
                            occ_order = order.tolist()
                            occ_keys = chunk[order].tolist()
                        j = bisect_left(occ_keys, evicted)
                        while j < chunk_len and occ_keys[j] == evicted:
                            r2 = occ_order[j]
                            if r2 > rel:
                                heappush(extra, r2)
                            j += 1
            run_start = rel + 1
        pos = ce

    # Restore the boundary invariant — every live key gets a current heap
    # entry (bulk counting above pushed none) — then shed stale entries.
    for key, count in counts.items():
        heappush(heap, (count, ins[key], key))
    if len(heap) > 8 * capacity + 64:
        store.compact()
    sketch.items_seen += pos
    return pos


@register_sampler("space_saving")
class SpaceSavingSketch(StreamSampler):
    """Deterministic Space-Saving: guaranteed error <= n / m."""

    default_estimate_kind = "count"
    legacy_estimate_param = "key"
    _DETERMINISTIC_REASON = (
        "deterministic upper-bound counter (biased by design); no "
        "inclusion probabilities for HT estimation"
    )
    query_capabilities = query_support(
        sum=_DETERMINISTIC_REASON,
        count=_DETERMINISTIC_REASON,
        mean=_DETERMINISTIC_REASON,
        distinct=_DETERMINISTIC_REASON,
        topk=_DETERMINISTIC_REASON,
        quantile=_DETERMINISTIC_REASON,
    )
    query_variance = _DETERMINISTIC_REASON

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self._store = _CounterStore(capacity)
        self.items_seen = 0

    def update(
        self, key: object, weight: float = 1.0, *, value=None, time=None
    ) -> None:
        """Count one occurrence, evicting the min counter when full."""
        self.items_seen += 1
        store = self._store
        if key in store.counts:
            store.increment(key)
            return
        if len(store) < self.capacity:
            store.insert(key, 1, 0, self.items_seen)
            return
        _, min_count = store.pop_min()
        store.insert(key, min_count + 1, min_count, self.items_seen)

    def update_many(self, keys, weights=None, values=None, times=None) -> None:
        """Vectorized bulk :meth:`update` (see :func:`_batch_ingest`)."""
        done = _batch_ingest(self, keys)
        if done is None:
            for key in _as_key_list(keys):
                self.update(key)
        elif done < len(keys):
            for key in _as_key_list(keys)[done:]:
                self.update(key)

    def __len__(self) -> int:
        return len(self._store)

    def estimate_count(self, key: object) -> int:
        """Upper-bound count estimate (0 for untracked keys).

        The legacy spelling ``estimate(key)`` still works through the
        protocol facade (with a deprecation warning).
        """
        return self._store.counts.get(key, 0)

    def guaranteed(self, key: object) -> int:
        """Lower bound: estimate minus the inherited error."""
        if key not in self._store.counts:
            return 0
        return self._store.counts[key] - self._store.errors.get(key, 0)

    def top(self, j: int) -> list[tuple[object, int]]:
        """The ``j`` keys with the largest counters."""
        ranked = sorted(
            self._store.counts.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:j]

    def sample(self) -> Sample:
        """Tracked keys with counter values (deterministic, no thresholds)."""
        return _counter_sample(self._store, self.items_seen)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _config(self) -> dict:
        return {"capacity": self.capacity}

    def _get_state(self) -> dict:
        return _store_state(self._store, self.items_seen)

    def _set_state(self, state: dict) -> None:
        self._store = _store_from_state(state, self.capacity)
        self.items_seen = int(state["items_seen"])


@register_sampler("unbiased_space_saving")
class UnbiasedSpaceSavingSketch(StreamSampler):
    """Unbiased Space-Saving (Ting 2018): probabilistic label handover.

    On an untracked key the minimum counter is incremented and relabelled
    to the new key with probability ``1 / new_count`` — making each counter
    value an unbiased estimator of its label's true count and supporting
    unbiased subset sums over label predicates.
    """

    default_estimate_kind = "count"
    legacy_estimate_param = "key"
    #: Counter values are unbiased per-label count estimates on
    #: probability-1 rows: sums over labels are unbiased (Ting 2018), but
    #: nothing probability-weighted survives.
    query_capabilities = query_support(
        "sum", "topk",
        count=(
            "rows carry probability-1 per-label estimates; sum(1/p) is "
            "just the counter-table size"
        ),
        mean=(
            "per-label count estimates expose no inclusion probabilities "
            "for ratio estimation"
        ),
        distinct=(
            "retains only the tracked labels; not a distinct-count sketch"
        ),
        quantile=(
            "per-label count estimates expose no inclusion probabilities "
            "for CDF estimation"
        ),
    )
    query_variance = (
        "counter values are unbiased estimates on probability-1 rows; the "
        "HT plug-in variance is identically zero"
    )

    def __init__(self, capacity: int, rng=None):
        self.capacity = int(capacity)
        self._store = _CounterStore(capacity)
        self.rng = as_generator(rng if rng is not None else 0)
        self.items_seen = 0

    def update(
        self, key: object, weight: float = 1.0, *, value=None, time=None
    ) -> None:
        """Count one occurrence with probabilistic label handover."""
        self.items_seen += 1
        store = self._store
        if key in store.counts:
            store.increment(key)
            return
        if len(store) < self.capacity:
            store.insert(key, 1, 0, self.items_seen)
            return
        min_key, min_count = store.pop_min()
        new_count = min_count + 1
        if self.rng.random() < 1.0 / new_count:
            store.insert(key, new_count, min_count, self.items_seen)
        else:
            store.insert(min_key, new_count, min_count, self.items_seen)

    def update_many(self, keys, weights=None, values=None, times=None) -> None:
        """Vectorized bulk :meth:`update` (see :func:`_batch_ingest`).

        Handover draws are block-buffered with rewind
        (:class:`repro.core.kernels.DrawBuffer`), so the generator stream —
        and therefore every label decision — matches scalar ingestion.
        """
        with DrawBuffer(self.rng, expected=len(keys)) as draw:
            done = _batch_ingest(self, keys, handover_draw=draw)
        # Any scalar remainder draws from the generator directly, after the
        # DrawBuffer context has rewound its unused block.
        if done is None:
            for key in _as_key_list(keys):
                self.update(key)
        elif done < len(keys):
            for key in _as_key_list(keys)[done:]:
                self.update(key)

    def __len__(self) -> int:
        return len(self._store)

    def estimate_count(self, key: object) -> int:
        """Unbiased count estimate of ``key`` (0 when untracked).

        The legacy spelling ``estimate(key)`` still works through the
        protocol facade (with a deprecation warning).
        """
        return self._store.counts.get(key, 0)

    def estimate_subset_sum(self, predicate: Callable[[object], bool]) -> float:
        """Unbiased estimate of total occurrences of keys in a subset."""
        return float(
            sum(c for key, c in self._store.counts.items() if predicate(key))
        )

    def top(self, j: int) -> list[tuple[object, int]]:
        """The ``j`` keys with the largest counters."""
        ranked = sorted(
            self._store.counts.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:j]

    def sample(self) -> Sample:
        """Tracked keys with counter values (each an unbiased estimate)."""
        return _counter_sample(self._store, self.items_seen)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _config(self) -> dict:
        return {"capacity": self.capacity}

    def _get_state(self) -> dict:
        state = _store_state(self._store, self.items_seen)
        state["rng"] = rng_to_state(self.rng)
        return state

    def _set_state(self, state: dict) -> None:
        self._store = _store_from_state(state, self.capacity)
        self.items_seen = int(state["items_seen"])
        self.rng = rng_from_state(state["rng"])


def _counter_sample(store: _CounterStore, items_seen: int) -> Sample:
    """Counter-map contents as a deterministic Sample (thresholds +inf)."""
    keys = list(store.counts)
    return Sample(
        keys=keys,
        values=np.array([store.counts[k] for k in keys], dtype=float),
        weights=np.ones(len(keys)),
        priorities=np.zeros(len(keys)),
        thresholds=np.full(len(keys), np.inf),
        family=Uniform01Priority(),
        population_size=items_seen,
    )


def _store_state(store: _CounterStore, items_seen: int) -> dict:
    """Serializable view of a counter store."""
    return {
        "counts": list(store.counts.items()),
        "errors": list(store.errors.items()),
        "items_seen": items_seen,
    }


def _store_from_state(state: dict, capacity: int) -> _CounterStore:
    """Rebuild a counter store (heap included) from :func:`_store_state`.

    Insertion positions are not serialized; keys are re-inserted in stored
    order, so eviction tie-breaks after a round-trip may differ from an
    uninterrupted run (the contract test's ``resume_identical=False``).
    """
    store = _CounterStore(capacity)
    errors = dict(state["errors"])
    for position, (key, count) in enumerate(state["counts"]):
        store.insert(key, count, errors.get(key, 0), position + 1)
    return store
