"""Space-Saving and Unbiased Space-Saving baselines.

* :class:`SpaceSavingSketch` — Metwally et al.'s deterministic frequent-item
  sketch (cited as [22]): fixed capacity ``m``; a new key evicts the
  minimum-count entry and inherits ``min_count + 1`` with error bound
  ``min_count``.
* :class:`UnbiasedSpaceSavingSketch` — Ting (2018), cited as [30]: identical
  except the *label* of the minimum counter is handed to the new key only
  with probability ``1 / (min_count + 1)``.  This makes every counter an
  unbiased estimate of its labelled key's count, enabling the disaggregated
  subset sums that the paper's adaptive top-k sampler (Section 3.3)
  generalizes with thresholds.

Both serve as context baselines for Figure 3 and as comparison points in
the top-k tests.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from ..api import StreamSampler, register_sampler
from ..api.protocol import rng_from_state, rng_to_state
from ..core.priorities import Uniform01Priority
from ..core.rng import as_generator
from ..core.sample import Sample

__all__ = ["SpaceSavingSketch", "UnbiasedSpaceSavingSketch"]


class _CounterStore:
    """Capacity-bounded counter map with O(log m) min-counter access."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.counts: dict[object, int] = {}
        self.errors: dict[object, int] = {}
        self._heap: list[tuple[int, int, object]] = []  # (count, tiebreak, key)
        self._tick = 0

    def _push(self, key: object) -> None:
        self._tick += 1
        heapq.heappush(self._heap, (self.counts[key], self._tick, key))

    def increment(self, key: object, by: int = 1) -> None:
        self.counts[key] += by
        self._push(key)  # lazy: stale heap entries are skipped on pop

    def insert(self, key: object, count: int, error: int) -> None:
        self.counts[key] = count
        self.errors[key] = error
        self._push(key)

    def pop_min(self) -> tuple[object, int]:
        """Remove and return the (key, count) with the smallest count."""
        while self._heap:
            count, _, key = heapq.heappop(self._heap)
            if self.counts.get(key) == count:
                del self.counts[key]
                self.errors.pop(key, None)
                return key, count
        raise KeyError("store is empty")

    def __len__(self) -> int:
        return len(self.counts)


@register_sampler("space_saving")
class SpaceSavingSketch(StreamSampler):
    """Deterministic Space-Saving: guaranteed error <= n / m."""

    default_estimate_kind = "count"
    legacy_estimate_param = "key"

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self._store = _CounterStore(capacity)
        self.items_seen = 0

    def update(
        self, key: object, weight: float = 1.0, *, value=None, time=None
    ) -> None:
        """Count one occurrence, evicting the min counter when full."""
        self.items_seen += 1
        store = self._store
        if key in store.counts:
            store.increment(key)
            return
        if len(store) < self.capacity:
            store.insert(key, 1, 0)
            return
        _, min_count = store.pop_min()
        store.insert(key, min_count + 1, min_count)

    def __len__(self) -> int:
        return len(self._store)

    def estimate_count(self, key: object) -> int:
        """Upper-bound count estimate (0 for untracked keys).

        The legacy spelling ``estimate(key)`` still works through the
        protocol facade (with a deprecation warning).
        """
        return self._store.counts.get(key, 0)

    def guaranteed(self, key: object) -> int:
        """Lower bound: estimate minus the inherited error."""
        if key not in self._store.counts:
            return 0
        return self._store.counts[key] - self._store.errors.get(key, 0)

    def top(self, j: int) -> list[tuple[object, int]]:
        """The ``j`` keys with the largest counters."""
        ranked = sorted(
            self._store.counts.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:j]

    def sample(self) -> Sample:
        """Tracked keys with counter values (deterministic, no thresholds)."""
        return _counter_sample(self._store, self.items_seen)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _config(self) -> dict:
        return {"capacity": self.capacity}

    def _get_state(self) -> dict:
        return _store_state(self._store, self.items_seen)

    def _set_state(self, state: dict) -> None:
        self._store = _store_from_state(state, self.capacity)
        self.items_seen = int(state["items_seen"])


@register_sampler("unbiased_space_saving")
class UnbiasedSpaceSavingSketch(StreamSampler):
    """Unbiased Space-Saving (Ting 2018): probabilistic label handover.

    On an untracked key the minimum counter is incremented and relabelled
    to the new key with probability ``1 / new_count`` — making each counter
    value an unbiased estimator of its label's true count and supporting
    unbiased subset sums over label predicates.
    """

    default_estimate_kind = "count"
    legacy_estimate_param = "key"

    def __init__(self, capacity: int, rng=None):
        self.capacity = int(capacity)
        self._store = _CounterStore(capacity)
        self.rng = as_generator(rng if rng is not None else 0)
        self.items_seen = 0

    def update(
        self, key: object, weight: float = 1.0, *, value=None, time=None
    ) -> None:
        """Count one occurrence with probabilistic label handover."""
        self.items_seen += 1
        store = self._store
        if key in store.counts:
            store.increment(key)
            return
        if len(store) < self.capacity:
            store.insert(key, 1, 0)
            return
        min_key, min_count = store.pop_min()
        new_count = min_count + 1
        if self.rng.random() < 1.0 / new_count:
            store.insert(key, new_count, min_count)
        else:
            store.insert(min_key, new_count, min_count)

    def __len__(self) -> int:
        return len(self._store)

    def estimate_count(self, key: object) -> int:
        """Unbiased count estimate of ``key`` (0 when untracked).

        The legacy spelling ``estimate(key)`` still works through the
        protocol facade (with a deprecation warning).
        """
        return self._store.counts.get(key, 0)

    def estimate_subset_sum(self, predicate: Callable[[object], bool]) -> float:
        """Unbiased estimate of total occurrences of keys in a subset."""
        return float(
            sum(c for key, c in self._store.counts.items() if predicate(key))
        )

    def top(self, j: int) -> list[tuple[object, int]]:
        """The ``j`` keys with the largest counters."""
        ranked = sorted(
            self._store.counts.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:j]

    def sample(self) -> Sample:
        """Tracked keys with counter values (each an unbiased estimate)."""
        return _counter_sample(self._store, self.items_seen)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _config(self) -> dict:
        return {"capacity": self.capacity}

    def _get_state(self) -> dict:
        state = _store_state(self._store, self.items_seen)
        state["rng"] = rng_to_state(self.rng)
        return state

    def _set_state(self, state: dict) -> None:
        self._store = _store_from_state(state, self.capacity)
        self.items_seen = int(state["items_seen"])
        self.rng = rng_from_state(state["rng"])


def _counter_sample(store: _CounterStore, items_seen: int) -> Sample:
    """Counter-map contents as a deterministic Sample (thresholds +inf)."""
    keys = list(store.counts)
    return Sample(
        keys=keys,
        values=np.array([store.counts[k] for k in keys], dtype=float),
        weights=np.ones(len(keys)),
        priorities=np.zeros(len(keys)),
        thresholds=np.full(len(keys), np.inf),
        family=Uniform01Priority(),
        population_size=items_seen,
    )


def _store_state(store: _CounterStore, items_seen: int) -> dict:
    """Serializable view of a counter store."""
    return {
        "counts": list(store.counts.items()),
        "errors": list(store.errors.items()),
        "items_seen": items_seen,
    }


def _store_from_state(state: dict, capacity: int) -> _CounterStore:
    """Rebuild a counter store (heap included) from :func:`_store_state`."""
    store = _CounterStore(capacity)
    errors = dict(state["errors"])
    for key, count in state["counts"]:
        store.insert(key, count, errors.get(key, 0))
    return store
