"""Space-Saving and Unbiased Space-Saving baselines.

* :class:`SpaceSavingSketch` — Metwally et al.'s deterministic frequent-item
  sketch (cited as [22]): fixed capacity ``m``; a new key evicts the
  minimum-count entry and inherits ``min_count + 1`` with error bound
  ``min_count``.
* :class:`UnbiasedSpaceSavingSketch` — Ting (2018), cited as [30]: identical
  except the *label* of the minimum counter is handed to the new key only
  with probability ``1 / (min_count + 1)``.  This makes every counter an
  unbiased estimate of its labelled key's count, enabling the disaggregated
  subset sums that the paper's adaptive top-k sampler (Section 3.3)
  generalizes with thresholds.

Both serve as context baselines for Figure 3 and as comparison points in
the top-k tests.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from ..core.rng import as_generator

__all__ = ["SpaceSavingSketch", "UnbiasedSpaceSavingSketch"]


class _CounterStore:
    """Capacity-bounded counter map with O(log m) min-counter access."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.counts: dict[object, int] = {}
        self.errors: dict[object, int] = {}
        self._heap: list[tuple[int, int, object]] = []  # (count, tiebreak, key)
        self._tick = 0

    def _push(self, key: object) -> None:
        self._tick += 1
        heapq.heappush(self._heap, (self.counts[key], self._tick, key))

    def increment(self, key: object, by: int = 1) -> None:
        self.counts[key] += by
        self._push(key)  # lazy: stale heap entries are skipped on pop

    def insert(self, key: object, count: int, error: int) -> None:
        self.counts[key] = count
        self.errors[key] = error
        self._push(key)

    def pop_min(self) -> tuple[object, int]:
        """Remove and return the (key, count) with the smallest count."""
        while self._heap:
            count, _, key = heapq.heappop(self._heap)
            if self.counts.get(key) == count:
                del self.counts[key]
                self.errors.pop(key, None)
                return key, count
        raise KeyError("store is empty")

    def __len__(self) -> int:
        return len(self.counts)


class SpaceSavingSketch:
    """Deterministic Space-Saving: guaranteed error <= n / m."""

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self._store = _CounterStore(capacity)
        self.items_seen = 0

    def update(self, key: object) -> None:
        """Count one occurrence, evicting the min counter when full."""
        self.items_seen += 1
        store = self._store
        if key in store.counts:
            store.increment(key)
            return
        if len(store) < self.capacity:
            store.insert(key, 1, 0)
            return
        _, min_count = store.pop_min()
        store.insert(key, min_count + 1, min_count)

    def extend(self, keys: Iterable[object]) -> None:
        """Bulk :meth:`update`."""
        for key in keys:
            self.update(key)

    def __len__(self) -> int:
        return len(self._store)

    def estimate(self, key: object) -> int:
        """Upper-bound count estimate (0 for untracked keys)."""
        return self._store.counts.get(key, 0)

    def guaranteed(self, key: object) -> int:
        """Lower bound: estimate minus the inherited error."""
        if key not in self._store.counts:
            return 0
        return self._store.counts[key] - self._store.errors.get(key, 0)

    def top(self, j: int) -> list[tuple[object, int]]:
        """The ``j`` keys with the largest counters."""
        ranked = sorted(
            self._store.counts.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:j]


class UnbiasedSpaceSavingSketch:
    """Unbiased Space-Saving (Ting 2018): probabilistic label handover.

    On an untracked key the minimum counter is incremented and relabelled
    to the new key with probability ``1 / new_count`` — making each counter
    value an unbiased estimator of its label's true count and supporting
    unbiased subset sums over label predicates.
    """

    def __init__(self, capacity: int, rng=None):
        self.capacity = int(capacity)
        self._store = _CounterStore(capacity)
        self.rng = as_generator(rng if rng is not None else 0)
        self.items_seen = 0

    def update(self, key: object) -> None:
        """Count one occurrence with probabilistic label handover."""
        self.items_seen += 1
        store = self._store
        if key in store.counts:
            store.increment(key)
            return
        if len(store) < self.capacity:
            store.insert(key, 1, 0)
            return
        min_key, min_count = store.pop_min()
        new_count = min_count + 1
        if self.rng.random() < 1.0 / new_count:
            store.insert(key, new_count, min_count)
        else:
            store.insert(min_key, new_count, min_count)

    def extend(self, keys: Iterable[object]) -> None:
        """Bulk :meth:`update`."""
        for key in keys:
            self.update(key)

    def __len__(self) -> int:
        return len(self._store)

    def estimate(self, key: object) -> int:
        """Unbiased count estimate of ``key`` (0 when untracked)."""
        return self._store.counts.get(key, 0)

    def estimate_subset_sum(self, predicate: Callable[[object], bool]) -> float:
        """Unbiased estimate of total occurrences of keys in a subset."""
        return float(
            sum(c for key, c in self._store.counts.items() if predicate(key))
        )

    def top(self, j: int) -> list[tuple[object, int]]:
        """The ``j`` keys with the largest counters."""
        ranked = sorted(
            self._store.counts.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:j]
