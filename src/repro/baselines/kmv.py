"""KMV (k minimum values) distinct counter — the "bottom-k sketch" of Fig 4.

Keeps the ``k`` smallest coordinated hashes; the classic unbiased estimator
is ``(k - 1) / h_(k)`` where ``h_(k)`` is the k-th smallest hash (Giroire;
Beyer et al., cited as [15], [3]).  Unions merge the retained hash sets and
re-sketch to the k smallest — the "basic bottom-k" union whose error Figure
4 compares against Theta and the paper's per-item-threshold merge.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from ..core.hashing import hash_to_unit

__all__ = ["KMVSketch", "kmv_union"]


class KMVSketch:
    """k-minimum-values sketch over coordinated Uniform(0, 1) hashes."""

    def __init__(self, k: int, salt: int = 0):
        if k < 2:
            raise ValueError("k must be at least 2")
        self.k = int(k)
        self.salt = int(salt)
        self._heap: list[float] = []  # max-heap (negated) of the k smallest
        self._hashes: set[float] = set()
        self._exact = 0  # distinct count while underfull

    def update(self, key: object) -> None:
        """Offer a key; duplicates are idempotent (same hash)."""
        h = hash_to_unit(key, self.salt)
        self._offer(h)

    def _offer(self, h: float) -> None:
        if h in self._hashes:
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, -h)
            self._hashes.add(h)
            self._exact += 1
            return
        worst = -self._heap[0]
        if h >= worst:
            self._exact = self.k + 1  # saturated: no longer exact
            return
        heapq.heapreplace(self._heap, -h)
        self._hashes.discard(worst)
        self._hashes.add(h)
        self._exact = self.k + 1

    def extend(self, keys: Iterable[object]) -> None:
        """Bulk :meth:`update`."""
        for key in keys:
            self.update(key)

    @property
    def is_exact(self) -> bool:
        """True while fewer than k distinct keys have been offered."""
        return self._exact <= self.k

    @property
    def kth_minimum(self) -> float:
        if len(self._heap) < self.k:
            return 1.0
        return -self._heap[0]

    def __len__(self) -> int:
        return len(self._hashes)

    def estimate(self) -> float:
        """``(k - 1) / h_(k)``, or the exact count while underfull."""
        if self.is_exact:
            return float(len(self._hashes))
        return (self.k - 1) / self.kth_minimum

    @classmethod
    def from_hashes(cls, hashes, k: int, salt: int = 0) -> "KMVSketch":
        """Build a sketch from precomputed distinct hash values (vectorized)."""
        import numpy as np

        hashes = np.asarray(hashes, dtype=float)
        out = cls(k, salt=salt)
        keep = min(k + 1, hashes.size)
        if keep:
            smallest = np.partition(hashes, keep - 1)[:keep]
            for h in np.sort(smallest):
                out._offer(float(h))
        if hashes.size > k:
            out._exact = out.k + 1
        return out

    def union(self, other: "KMVSketch") -> "KMVSketch":
        """Re-sketch the merged hash sets down to the k smallest."""
        if other.salt != self.salt:
            raise ValueError("cannot union sketches with different salts")
        out = KMVSketch(max(self.k, other.k), salt=self.salt)
        merged = self._hashes | other._hashes
        saturated = not (self.is_exact and other.is_exact)
        for h in merged:
            out._offer(h)
        if saturated:
            out._exact = out.k + 1
        return out


def kmv_union(sketches: Iterable[KMVSketch]) -> KMVSketch:
    """Union an iterable of KMV sketches left to right."""
    sketches = list(sketches)
    if not sketches:
        raise ValueError("need at least one sketch")
    out = sketches[0]
    for sk in sketches[1:]:
        out = out.union(sk)
    return out
