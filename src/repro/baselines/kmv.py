"""KMV (k minimum values) distinct counter — the "bottom-k sketch" of Fig 4.

Keeps the ``k`` smallest coordinated hashes; the classic unbiased estimator
is ``(k - 1) / h_(k)`` where ``h_(k)`` is the k-th smallest hash (Giroire;
Beyer et al., cited as [15], [3]).  Unions merge the retained hash sets and
re-sketch to the k smallest — the "basic bottom-k" union whose error Figure
4 compares against Theta and the paper's per-item-threshold merge.
"""

from __future__ import annotations

import heapq
from typing import Iterable

import numpy as np

from ..api import StreamSampler, merged, query_support, register_sampler
from ..api.protocol import _as_key_list
from ..core.hashing import batch_hash_to_unit, hash_to_unit
from ..core.kernels import smallest_distinct
from ..core.priorities import Uniform01Priority
from ..core.sample import Sample

__all__ = ["KMVSketch", "kmv_union"]


@register_sampler("kmv")
class KMVSketch(StreamSampler):
    """k-minimum-values sketch over coordinated Uniform(0, 1) hashes."""

    default_estimate_kind = "distinct"
    mergeable = True
    resizable = True
    #: Retains only hash values (no keys, weights, or payloads): the
    #: count-style aggregates apply and nothing else can.
    query_capabilities = query_support(
        "count", "distinct",
        sum="retains only hash values, no payloads (sum degenerates to distinct)",
        mean="retains only hash values, no payloads",
        topk="rows are anonymous hashes; there are no keys to rank",
        quantile="retains only hash values, no payload distribution",
    )

    def __init__(self, k: int, salt: int = 0):
        if k < 2:
            raise ValueError("k must be at least 2")
        self.k = int(k)
        self.salt = int(salt)
        self._heap: list[float] = []  # max-heap (negated) of the k smallest
        self._hashes: set[float] = set()
        self._exact = 0  # distinct count while underfull
        # Admission cap left behind by a grow-resize: the effective
        # threshold may never exceed the k-th minimum at resize time, so
        # ``|retained| / threshold`` stays unbiased (1.0 = no cap; the
        # capped estimator reduces to the classic ``(k-1)/h_(k)`` then).
        self._cap = 1.0

    def update(
        self, key: object, weight: float = 1.0, *, value=None, time=None
    ) -> None:
        """Offer a key; duplicates are idempotent (same hash)."""
        h = hash_to_unit(key, self.salt)
        self._offer(h)

    def update_many(self, keys, weights=None, values=None, times=None) -> None:
        """Vectorized bulk :meth:`update`.

        Hashes the batch with numpy and offers only the ``k + 1`` smallest
        distinct hashes (the only values that can change the sketch),
        preserving the saturation flag exactly.
        """
        keys = _as_key_list(keys)
        if not keys:
            return
        smallest = smallest_distinct(
            batch_hash_to_unit(keys, self.salt), self.k + 1
        )
        for hv in smallest:
            self._offer(float(hv))
        if smallest.size > self.k:
            self._exact = self.k + 1

    def _offer(self, h: float) -> None:
        if h >= self._cap:
            return
        if h in self._hashes:
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, -h)
            self._hashes.add(h)
            self._exact += 1
            return
        worst = -self._heap[0]
        if h >= worst:
            self._exact = self.k + 1  # saturated: no longer exact
            return
        heapq.heapreplace(self._heap, -h)
        self._hashes.discard(worst)
        self._hashes.add(h)
        self._exact = self.k + 1

    @property
    def is_exact(self) -> bool:
        """True while fewer than k distinct keys have been offered."""
        return self._exact <= self.k

    @property
    def kth_minimum(self) -> float:
        """The k-th smallest retained hash (1.0 while underfull)."""
        if len(self._heap) < self.k:
            return 1.0
        return -self._heap[0]

    @property
    def threshold(self) -> float:
        """Effective sampling threshold: the k-th minimum, capped by any
        grow-resize (equal to :attr:`kth_minimum` when never resized)."""
        return min(self._cap, self.kth_minimum)

    def __len__(self) -> int:
        return len(self._hashes)

    def estimate_distinct(self) -> float:
        """``|{h < threshold}| / threshold``, or the exact count while
        underfull.

        With no resize cap this is exactly the classic ``(k - 1) /
        h_(k)`` (the witness hash equals the threshold and is excluded);
        after a grow-resize the capped threshold keeps it unbiased while
        the enlarged sketch refills.  Also reachable as ``estimate()``
        through the protocol facade (the sketch's default estimator kind
        is ``"distinct"``).
        """
        if self.is_exact:
            return float(len(self._hashes))
        t = self.threshold
        return sum(1 for h in self._hashes if h < t) / t

    def sample(self) -> Sample:
        """Retained hashes below the k-th minimum as a uniform Sample.

        ``sample().ht_total()`` reproduces :meth:`estimate_distinct` once
        the sketch is saturated.
        """
        t = self.threshold if not self.is_exact else 1.0
        hashes = sorted(h for h in self._hashes if h < t)
        n = len(hashes)
        return Sample(
            keys=hashes,
            values=np.ones(n),
            weights=np.ones(n),
            priorities=np.asarray(hashes, dtype=float),
            thresholds=np.full(n, t),
            family=Uniform01Priority(),
        )

    @classmethod
    def from_hashes(cls, hashes, k: int, salt: int = 0) -> "KMVSketch":
        """Build a sketch from precomputed distinct hash values (vectorized)."""
        import numpy as np

        hashes = np.asarray(hashes, dtype=float)
        out = cls(k, salt=salt)
        keep = min(k + 1, hashes.size)
        if keep:
            smallest = np.partition(hashes, keep - 1)[:keep]
            for h in np.sort(smallest):
                out._offer(float(h))
        if hashes.size > k:
            out._exact = out.k + 1
        return out

    def resize(self, k: int) -> "KMVSketch":
        """Change the nominal size mid-stream, keeping the estimate unbiased.

        Shrinking keeps the ``k`` smallest hashes (what a fresh ``k``
        sketch of the same stream would hold); a shrunk exact sketch that
        overflows the new budget becomes a saturated one.  Growing
        freezes the current k-th minimum as an admission cap so the
        capped ``|retained| / threshold`` estimator stays unbiased while
        the enlarged sketch refills; a still-exact sketch just grows.
        """
        if k < 2:
            raise ValueError("k must be at least 2")
        k = int(k)
        if k == self.k:
            return self
        if k < self.k:
            if len(self._hashes) > k or not self.is_exact:
                keep = sorted(self._hashes)[:k]
                self._hashes = set(keep)
                self._heap = [-h for h in keep]
                heapq.heapify(self._heap)
                self._exact = k + 1
        elif not self.is_exact:
            self._cap = self.threshold
            self._exact = k + 1
        self.k = k
        return self

    def merge(self, other: "KMVSketch") -> "KMVSketch":
        """Absorb another sketch in place (returns self).

        Re-sketches the merged hash sets down to the k smallest.  A
        saturated input only retains its own k minima, so the merged
        nominal size is the *minimum* k over saturated inputs (the classic
        KMV union rule); while every input is still exact the union stays
        exact and adopts the larger k.
        """
        if other.salt != self.salt:
            raise ValueError("cannot merge sketches with different salts")
        limits = [s.k for s in (self, other) if not s.is_exact]
        pool = self._hashes | other._hashes
        self.k = min(limits) if limits else max(self.k, other.k)
        self._cap = min(self._cap, other._cap)
        self._heap = []
        self._hashes = set()
        self._exact = 0
        for h in sorted(pool):
            self._offer(h)
        if limits:
            self._exact = self.k + 1
        return self

    def union(self, other: "KMVSketch") -> "KMVSketch":
        """Pure union: a new sketch, leaving both inputs untouched
        (equivalent to ``self | other``)."""
        return merged(self, other)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _config(self) -> dict:
        return {"k": self.k, "salt": self.salt}

    def _get_state(self) -> dict:
        return {
            "hashes": sorted(self._hashes),
            "exact": self._exact,
            "cap": self._cap,
        }

    def _set_state(self, state: dict) -> None:
        self._hashes = set(state["hashes"])
        self._heap = [-h for h in self._hashes]
        heapq.heapify(self._heap)
        self._exact = int(state["exact"])
        self._cap = float(state.get("cap", 1.0))


def kmv_union(sketches: Iterable[KMVSketch]) -> KMVSketch:
    """Union an iterable of KMV sketches left to right (pure)."""
    sketches = list(sketches)
    if not sketches:
        raise ValueError("need at least one sketch")
    out = sketches[0].copy()
    for sk in sketches[1:]:
        out.merge(sk)
    return out
