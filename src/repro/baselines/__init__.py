"""Baselines the paper compares against, re-implemented from scratch.

* :class:`FrequentItemsSketch` — Apache DataSketches' Misra–Gries variant
  (Figure 3's comparator).
* :class:`SpaceSavingSketch` / :class:`UnbiasedSpaceSavingSketch` —
  Metwally et al. and Ting (2018) frequent-item sketches.
* :class:`ThetaSketch` — min-theta union distinct counting (Figure 4).
* :class:`KMVSketch` — the basic bottom-k distinct counter (Figure 4).
"""

from .frequent_items import FrequentItemsSketch
from .kmv import KMVSketch, kmv_union
from .space_saving import SpaceSavingSketch, UnbiasedSpaceSavingSketch
from .theta import ThetaSketch, theta_union

__all__ = [
    "FrequentItemsSketch",
    "SpaceSavingSketch",
    "UnbiasedSpaceSavingSketch",
    "ThetaSketch",
    "theta_union",
    "KMVSketch",
    "kmv_union",
]
