"""Theta sketch baseline (Dasgupta–Lang–Rhodes–Thaler, cited as [11]).

The Theta sketch keeps the ``k`` smallest coordinated hash values together
with a global threshold ``theta``; the estimate is ``|retained| / theta``.
Unions take the *minimum* theta of the inputs, keep the retained hashes
below it, and trim back to nominal size — discarding samples the inputs
paid for.  That discard is exactly what the paper's per-item-threshold
merge (Section 3.5, :func:`repro.samplers.distinct.lcs_union`) avoids;
Figure 4 measures the resulting accuracy gap.

This implementation mirrors the DataSketches QuickSelect behaviour closely
enough for the comparison: streaming keeps ``k`` smallest (+ witness),
``union`` sets ``theta = min(theta_A, theta_B, (k+1)-th smallest of the
retained union)``.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from ..core.hashing import hash_to_unit

__all__ = ["ThetaSketch", "theta_union"]


class ThetaSketch:
    """Bottom-k distinct-counting sketch with a global theta threshold."""

    def __init__(self, k: int, salt: int = 0):
        if k < 1:
            raise ValueError("k must be a positive integer")
        self.k = int(k)
        self.salt = int(salt)
        self._heap: list[float] = []  # max-heap (negated) of k+1 smallest hashes
        self._hashes: set[float] = set()
        self._theta_cap = 1.0  # carries the min-theta of unions

    def update(self, key: object) -> None:
        """Offer a key; duplicates are idempotent (same hash)."""
        h = hash_to_unit(key, self.salt)
        self._offer(h)

    def _offer(self, h: float) -> None:
        if not h < self._theta_cap:
            return
        if h in self._hashes:
            return
        if len(self._heap) <= self.k:
            heapq.heappush(self._heap, -h)
            self._hashes.add(h)
            return
        worst = -self._heap[0]
        if h >= worst:
            return
        heapq.heapreplace(self._heap, -h)
        self._hashes.discard(worst)
        self._hashes.add(h)

    def extend(self, keys: Iterable[object]) -> None:
        """Bulk :meth:`update`."""
        for key in keys:
            self.update(key)

    @property
    def theta(self) -> float:
        """Sampling threshold: min of the union cap and the (k+1)-th hash."""
        if len(self._heap) <= self.k:
            return self._theta_cap
        return min(-self._heap[0], self._theta_cap)

    def retained(self) -> list[float]:
        """Hash values strictly below theta (the usable entries)."""
        t = self.theta
        return [h for h in self._hashes if h < t]

    def __len__(self) -> int:
        return len(self.retained())

    def estimate(self) -> float:
        """``|retained| / theta``; exact while the sketch is underfull."""
        t = self.theta
        return len(self.retained()) / t

    @classmethod
    def from_hashes(cls, hashes, k: int, salt: int = 0) -> "ThetaSketch":
        """Build a sketch directly from precomputed distinct hash values.

        Vectorized construction path for the large Monte-Carlo experiments:
        only the ``k + 2`` smallest hashes can affect the sketch state, so
        they are selected with a partition and offered normally.
        """
        import numpy as np

        hashes = np.asarray(hashes, dtype=float)
        out = cls(k, salt=salt)
        keep = min(k + 2, hashes.size)
        if keep:
            smallest = np.partition(hashes, keep - 1)[:keep]
            for h in np.sort(smallest):
                out._offer(float(h))
        return out

    def union(self, other: "ThetaSketch") -> "ThetaSketch":
        """DataSketches-style union: min-theta, then trim to nominal k."""
        if other.salt != self.salt:
            raise ValueError("cannot union sketches with different salts")
        out = ThetaSketch(max(self.k, other.k), salt=self.salt)
        out._theta_cap = min(self.theta, other.theta)
        for h in set(self.retained()) | set(other.retained()):
            out._offer(h)
        return out


def theta_union(sketches: Iterable[ThetaSketch]) -> ThetaSketch:
    """Union an iterable of Theta sketches left to right."""
    sketches = list(sketches)
    if not sketches:
        raise ValueError("need at least one sketch")
    out = sketches[0]
    for sk in sketches[1:]:
        out = out.union(sk)
    return out
