"""Theta sketch baseline (Dasgupta–Lang–Rhodes–Thaler, cited as [11]).

The Theta sketch keeps the ``k`` smallest coordinated hash values together
with a global threshold ``theta``; the estimate is ``|retained| / theta``.
Unions take the *minimum* theta of the inputs, keep the retained hashes
below it, and trim back to nominal size — discarding samples the inputs
paid for.  That discard is exactly what the paper's per-item-threshold
merge (Section 3.5, :func:`repro.samplers.distinct.lcs_union`) avoids;
Figure 4 measures the resulting accuracy gap.

This implementation mirrors the DataSketches QuickSelect behaviour closely
enough for the comparison: streaming keeps ``k`` smallest (+ witness),
``union`` sets ``theta = min(theta_A, theta_B, (k+1)-th smallest of the
retained union)``.
"""

from __future__ import annotations

import heapq
from typing import Iterable

import numpy as np

from ..api import StreamSampler, merged, query_support, register_sampler
from ..api.protocol import _as_key_list
from ..core.hashing import batch_hash_to_unit, hash_to_unit
from ..core.kernels import smallest_distinct
from ..core.priorities import Uniform01Priority
from ..core.sample import Sample

__all__ = ["ThetaSketch", "theta_union"]


@register_sampler("theta")
class ThetaSketch(StreamSampler):
    """Bottom-k distinct-counting sketch with a global theta threshold."""

    default_estimate_kind = "distinct"
    mergeable = True
    resizable = True
    #: Retains only hash values (no keys, weights, or payloads): the
    #: count-style aggregates apply and nothing else can.
    query_capabilities = query_support(
        "count", "distinct",
        sum="retains only hash values, no payloads (sum degenerates to distinct)",
        mean="retains only hash values, no payloads",
        topk="rows are anonymous hashes; there are no keys to rank",
        quantile="retains only hash values, no payload distribution",
    )

    def __init__(self, k: int, salt: int = 0):
        if k < 1:
            raise ValueError("k must be a positive integer")
        self.k = int(k)
        self.salt = int(salt)
        self._heap: list[float] = []  # max-heap (negated) of k+1 smallest hashes
        self._hashes: set[float] = set()
        self._theta_cap = 1.0  # carries the min-theta of unions

    def update(
        self, key: object, weight: float = 1.0, *, value=None, time=None
    ) -> None:
        """Offer a key; duplicates are idempotent (same hash)."""
        h = hash_to_unit(key, self.salt)
        self._offer(h)

    def update_many(self, keys, weights=None, values=None, times=None) -> None:
        """Vectorized bulk :meth:`update`.

        Hashes the batch with numpy and offers only the ``k + 2`` smallest
        distinct hashes — the only values that can affect the sketch state.
        """
        keys = _as_key_list(keys)
        if not keys:
            return
        h = batch_hash_to_unit(keys, self.salt)
        for hv in smallest_distinct(h, self.k + 2):
            self._offer(float(hv))

    def _offer(self, h: float) -> None:
        if not h < self._theta_cap:
            return
        if h in self._hashes:
            return
        if len(self._heap) <= self.k:
            heapq.heappush(self._heap, -h)
            self._hashes.add(h)
            return
        worst = -self._heap[0]
        if h >= worst:
            return
        heapq.heapreplace(self._heap, -h)
        self._hashes.discard(worst)
        self._hashes.add(h)

    @property
    def theta(self) -> float:
        """Sampling threshold: min of the union cap and the (k+1)-th hash."""
        if len(self._heap) <= self.k:
            return self._theta_cap
        return min(-self._heap[0], self._theta_cap)

    def retained(self) -> list[float]:
        """Hash values strictly below theta (the usable entries)."""
        t = self.theta
        return [h for h in self._hashes if h < t]

    def __len__(self) -> int:
        return len(self.retained())

    def estimate_distinct(self) -> float:
        """``|retained| / theta``; exact while the sketch is underfull.

        Also reachable as ``estimate()`` through the protocol facade (the
        sketch's default estimator kind is ``"distinct"``).
        """
        t = self.theta
        return len(self.retained()) / t

    def sample(self) -> Sample:
        """Retained hashes below theta as a uniform Sample.

        ``sample().ht_total()`` equals :meth:`estimate_distinct`.
        """
        t = self.theta
        hashes = sorted(self.retained())
        n = len(hashes)
        return Sample(
            keys=hashes,
            values=np.ones(n),
            weights=np.ones(n),
            priorities=np.asarray(hashes, dtype=float),
            thresholds=np.full(n, t),
            family=Uniform01Priority(),
        )

    @classmethod
    def from_hashes(cls, hashes, k: int, salt: int = 0) -> "ThetaSketch":
        """Build a sketch directly from precomputed distinct hash values.

        Vectorized construction path for the large Monte-Carlo experiments:
        only the ``k + 2`` smallest hashes can affect the sketch state, so
        they are selected with a partition and offered normally.
        """
        import numpy as np

        hashes = np.asarray(hashes, dtype=float)
        out = cls(k, salt=salt)
        keep = min(k + 2, hashes.size)
        if keep:
            smallest = np.partition(hashes, keep - 1)[:keep]
            for h in np.sort(smallest):
                out._offer(float(h))
        return out

    def resize(self, k: int) -> "ThetaSketch":
        """Change the nominal size mid-stream, keeping the estimate unbiased.

        Shrinking keeps the ``k+1`` smallest hashes (the state a fresh
        ``k`` sketch of the same stream would hold).  Growing freezes the
        current theta as the cap — the same mechanism unions already use —
        until the enlarged sketch genuinely fills past it.
        """
        if k < 1:
            raise ValueError("k must be a positive integer")
        k = int(k)
        if k == self.k:
            return self
        if k < self.k:
            keep = sorted(self._hashes)[: k + 1]
            self._hashes = set(keep)
            self._heap = [-h for h in keep]
            heapq.heapify(self._heap)
        else:
            self._theta_cap = self.theta
        self.k = k
        return self

    def merge(self, other: "ThetaSketch") -> "ThetaSketch":
        """DataSketches-style union in place (returns self): min-theta,
        then trim to nominal k."""
        if other.salt != self.salt:
            raise ValueError("cannot merge sketches with different salts")
        pool = set(self.retained()) | set(other.retained())
        cap = min(self.theta, other.theta)
        self.k = max(self.k, other.k)
        self._theta_cap = cap
        self._heap = []
        self._hashes = set()
        for h in pool:
            self._offer(h)
        return self

    def union(self, other: "ThetaSketch") -> "ThetaSketch":
        """Pure union: a new sketch, leaving both inputs untouched
        (equivalent to ``self | other``)."""
        return merged(self, other)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _config(self) -> dict:
        return {"k": self.k, "salt": self.salt}

    def _get_state(self) -> dict:
        return {"hashes": sorted(self._hashes), "theta_cap": self._theta_cap}

    def _set_state(self, state: dict) -> None:
        self._hashes = set(state["hashes"])
        self._heap = [-h for h in self._hashes]
        heapq.heapify(self._heap)
        self._theta_cap = float(state["theta_cap"])


def theta_union(sketches: Iterable[ThetaSketch]) -> ThetaSketch:
    """Union an iterable of Theta sketches left to right (pure)."""
    sketches = list(sketches)
    if not sketches:
        raise ValueError("need at least one sketch")
    out = sketches[0].copy()
    for sk in sketches[1:]:
        out.merge(sk)
    return out
