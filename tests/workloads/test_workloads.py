"""Tests for the workload generators (repro.workloads)."""

import numpy as np
import pytest
from scipy import stats

from repro.workloads.arrivals import (
    homogeneous_arrivals,
    inhomogeneous_arrivals,
    piecewise_rate,
    spike_rate,
)
from repro.workloads.pitman_yor import pitman_yor_stream, true_top_k
from repro.workloads.sets import many_small_sets, max_jaccard, set_pair_with_jaccard
from repro.workloads.sizes import SURVEY_MAX_SIZE, SURVEY_MEAN_SIZE, survey_sizes
from repro.workloads.weights import (
    correlated_weight_pair,
    lognormal_weights,
    pareto_weights,
)
from repro.workloads.zipf import zipf_stream, zipf_weights


class TestPitmanYor:
    def test_deterministic_given_seed(self):
        a = pitman_yor_stream(500, 0.5, np.random.default_rng(1))
        b = pitman_yor_stream(500, 0.5, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_ids_in_appearance_order(self):
        stream = pitman_yor_stream(2000, 0.5, np.random.default_rng(2))
        first_seen = {}
        for pos, item in enumerate(stream.tolist()):
            first_seen.setdefault(item, pos)
        order = [item for item, _ in sorted(first_seen.items(), key=lambda kv: kv[1])]
        assert order == sorted(order)

    def test_distinct_count_grows_with_beta(self):
        n = 8000
        distinct = {}
        for beta in (0.1, 0.5, 0.9):
            acc = [
                len(np.unique(pitman_yor_stream(n, beta, np.random.default_rng(s))))
                for s in range(3)
            ]
            distinct[beta] = np.mean(acc)
        assert distinct[0.1] < distinct[0.5] < distinct[0.9]

    def test_beta_zero_is_crp(self):
        # Chinese restaurant process: E[#distinct] ~= log n for theta = 1.
        n = 5000
        acc = [
            len(np.unique(pitman_yor_stream(n, 0.0, np.random.default_rng(s))))
            for s in range(20)
        ]
        expected = np.sum(1.0 / (1.0 + np.arange(n)))
        assert np.mean(acc) == pytest.approx(expected, rel=0.2)

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            pitman_yor_stream(10, 1.0)
        with pytest.raises(ValueError):
            pitman_yor_stream(0, 0.5)

    def test_true_top_k(self):
        stream = np.array([3, 3, 3, 1, 1, 2])
        assert true_top_k(stream, 2) == [3, 1]


class TestArrivals:
    def test_homogeneous_count(self):
        counts = [
            homogeneous_arrivals(100.0, 0.0, 10.0, np.random.default_rng(s)).size
            for s in range(30)
        ]
        assert np.mean(counts) == pytest.approx(1000, rel=0.05)

    def test_sorted_and_in_range(self, rng):
        t = homogeneous_arrivals(50.0, 2.0, 6.0, rng)
        assert np.all(np.diff(t) >= 0)
        assert t.min() >= 2.0 and t.max() <= 6.0

    def test_inhomogeneous_matches_integral(self):
        rate = spike_rate(100.0, 400.0, 4.0, 5.0)
        counts = [
            inhomogeneous_arrivals(rate, 400.0, 0.0, 10.0, np.random.default_rng(s)).size
            for s in range(30)
        ]
        # integral: 100*10 + 300*1 extra during the spike = 1300.
        assert np.mean(counts) == pytest.approx(1300, rel=0.06)

    def test_spike_rate_shape(self):
        rate = spike_rate(10.0, 50.0, 1.0, 2.0)
        np.testing.assert_allclose(rate(np.array([0.5, 1.5, 2.5])), [10, 50, 10])

    def test_spike_validation(self):
        with pytest.raises(ValueError):
            spike_rate(10.0, 5.0, 0.0, 1.0)

    def test_piecewise_rate(self):
        rate = piecewise_rate([1.0, 2.0], [5.0, 10.0, 2.0])
        np.testing.assert_allclose(rate(np.array([0.5, 1.5, 5.0])), [5, 10, 2])
        with pytest.raises(ValueError):
            piecewise_rate([1.0], [5.0])


class TestSets:
    def test_exact_jaccard(self):
        a, b = set_pair_with_jaccard(1000, 2000, 0.2)
        inter = np.intersect1d(a, b).size
        union = np.union1d(a, b).size
        assert inter / union == pytest.approx(0.2, abs=0.01)
        assert a.size == 1000 and b.size == 2000

    def test_zero_jaccard_disjoint(self):
        a, b = set_pair_with_jaccard(100, 300, 0.0)
        assert np.intersect1d(a, b).size == 0

    def test_max_jaccard(self):
        assert max_jaccard(100, 300) == pytest.approx(1 / 3)
        with pytest.raises(ValueError):
            set_pair_with_jaccard(100, 300, 0.5)

    def test_many_small_sets_disjoint(self):
        big, smalls = many_small_sets(100, 5, 10)
        allsets = [big] + smalls
        combined = np.concatenate(allsets)
        assert combined.size == np.unique(combined).size == 150


class TestSizes:
    def test_calibrated_statistics(self):
        sizes = survey_sizes(40_000, np.random.default_rng(0))
        assert sizes.max() == SURVEY_MAX_SIZE
        assert sizes.mean() == pytest.approx(SURVEY_MEAN_SIZE, rel=0.03)
        assert sizes.min() >= 1.0

    def test_minimum_population(self):
        with pytest.raises(ValueError):
            survey_sizes(1)


class TestWeights:
    def test_correlation_endpoints(self):
        w1, w2 = correlated_weight_pair(20_000, 1.0, rng=np.random.default_rng(1))
        assert np.corrcoef(np.log(w1), np.log(w2))[0, 1] == pytest.approx(1.0)
        w1, w2 = correlated_weight_pair(20_000, 0.0, rng=np.random.default_rng(2))
        assert abs(np.corrcoef(np.log(w1), np.log(w2))[0, 1]) < 0.03

    def test_intermediate_correlation(self):
        w1, w2 = correlated_weight_pair(30_000, 0.6, rng=np.random.default_rng(3))
        assert np.corrcoef(np.log(w1), np.log(w2))[0, 1] == pytest.approx(0.6, abs=0.02)

    def test_positivity(self, rng):
        assert np.all(lognormal_weights(1000, rng=rng) > 0)
        assert np.all(pareto_weights(1000, rng=rng) > 0)

    def test_correlation_validation(self):
        with pytest.raises(ValueError):
            correlated_weight_pair(10, 2.0)


class TestZipf:
    def test_weights_shape(self):
        w = zipf_weights(100, 1.0)
        assert w[0] == 1.0
        assert w[9] == pytest.approx(0.1)

    def test_stream_frequencies(self):
        stream = zipf_stream(100_000, 50, 1.0, rng=np.random.default_rng(4))
        ids, counts = np.unique(stream, return_counts=True)
        expected = zipf_weights(50, 1.0)
        expected = expected / expected.sum()
        observed = counts / counts.sum()
        # The head frequencies should track the Zipf law closely.
        np.testing.assert_allclose(observed[:5], expected[:5], rtol=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
