"""Tenant namespace, quotas, and token buckets (deterministic clocks)."""

from __future__ import annotations

import pytest

from repro.api import SamplerSpec
from repro.serve.cluster import TenantQuota, TenantRegistry, TokenBucket
from repro.serve.cluster.tenants import REJECT_REASONS, check_tenant_id

SPEC = SamplerSpec("bottom_k", {"k": 8, "rng": 1})


class Clock:
    """A hand-cranked monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_starts_full_and_caps_at_burst(self):
        clock = Clock()
        bucket = TokenBucket(10.0, burst=5.0, clock=clock)
        assert bucket.try_acquire(5)
        assert not bucket.try_acquire(1)
        clock.now += 100.0  # refill far past the cap
        assert bucket.tokens == pytest.approx(5.0)

    def test_refills_at_rate(self):
        clock = Clock()
        bucket = TokenBucket(10.0, burst=5.0, clock=clock)
        bucket.try_acquire(5)
        clock.now += 0.25
        assert bucket.try_acquire(2)
        assert not bucket.try_acquire(1)

    def test_acquire_delay_goes_into_debt(self):
        clock = Clock()
        bucket = TokenBucket(100.0, burst=10.0, clock=clock)
        assert bucket.acquire_delay(10) == 0.0
        # 40 tokens of debt at 100/s: ready in 0.4s, and the debt queues.
        assert bucket.acquire_delay(40) == pytest.approx(0.4)
        assert bucket.acquire_delay(10) == pytest.approx(0.5)
        clock.now += 0.5
        assert bucket.acquire_delay(1) == pytest.approx(0.01)

    def test_sustained_rate_equals_configured_rate(self):
        clock = Clock()
        bucket = TokenBucket(50.0, burst=10.0, clock=clock)
        total_wait = 0.0
        for _ in range(100):
            delay = bucket.acquire_delay(5)
            total_wait += delay
            clock.now += delay
        # 500 events at 50/s from a 10-token head start: ~9.8s of waiting.
        assert total_wait == pytest.approx((500 - 10) / 50.0)

    def test_rejects_non_positive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.0)


class TestTenantQuota:
    def test_validation(self):
        with pytest.raises(ValueError, match="events_per_sec"):
            TenantQuota(events_per_sec=0)
        with pytest.raises(ValueError, match="burst"):
            TenantQuota(burst=-1)
        with pytest.raises(ValueError, match="queue_share"):
            TenantQuota(queue_share=1.5)

    def test_unlimited_quota_has_no_bucket(self):
        assert TenantQuota().bucket() is None

    def test_burst_defaults_to_one_second_of_rate(self):
        bucket = TenantQuota(events_per_sec=25.0).bucket(Clock())
        assert bucket.burst == 25.0

    def test_dict_round_trip(self):
        quota = TenantQuota(events_per_sec=10.0, burst=3.0, queue_share=0.5)
        assert TenantQuota.from_dict(quota.to_dict()) == quota
        assert TenantQuota.from_dict(None) == TenantQuota()


class TestTenantIds:
    def test_reserved_prefix_is_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            check_tenant_id("__mux_admin__")

    @pytest.mark.parametrize("bad", ["", None, 7, b"x"])
    def test_non_strings_are_rejected(self, bad):
        with pytest.raises(ValueError):
            check_tenant_id(bad)


class TestTenantRegistry:
    def test_create_describe_drop(self):
        registry = TenantRegistry(clock=Clock())
        record = registry.create("acme", SPEC, service="svc-1")
        assert "acme" in registry and len(registry) == 1
        assert record.service == "svc-1"
        assert registry.get("acme").spec == SPEC
        dropped = registry.drop("acme")
        assert dropped is record
        assert "acme" not in registry
        with pytest.raises(KeyError, match="unknown tenant"):
            registry.get("acme")

    def test_duplicate_create_is_rejected(self):
        registry = TenantRegistry()
        registry.create("acme", SPEC)
        with pytest.raises(ValueError, match="already exists"):
            registry.create("acme", SPEC)

    def test_rejection_counters(self):
        registry = TenantRegistry()
        record = registry.create("acme", SPEC)
        record.reject("rate", 3)
        record.reject("backpressure")
        assert record.rejected == {
            "rate": 3, "share": 0, "backpressure": 1, "unavailable": 0,
        }
        with pytest.raises(ValueError, match="unknown rejection reason"):
            record.reject("gremlins")
        assert set(record.rejected) == set(REJECT_REASONS)

    def test_buckets_follow_quotas(self):
        clock = Clock()
        registry = TenantRegistry(clock=clock)
        registry.create("limited", SPEC,
                        quota=TenantQuota(events_per_sec=5.0))
        registry.create("free", SPEC)
        assert registry.bucket("free") is None
        bucket = registry.bucket("limited")
        assert bucket.try_acquire(5) and not bucket.try_acquire(1)

    def test_dict_round_trip_preserves_counters_not_buckets(self):
        clock = Clock()
        registry = TenantRegistry(clock=clock)
        record = registry.create(
            "acme", SPEC,
            quota=TenantQuota(events_per_sec=2.0), service="svc-0",
        )
        record.events_enqueued = 41
        record.reject("share", 2)
        registry.bucket("acme").try_acquire(2)  # drain the live bucket

        revived = TenantRegistry.from_dict(registry.to_dict(), clock=clock)
        copy = revived.get("acme")
        assert copy.events_enqueued == 41
        assert copy.rejected["share"] == 2
        assert copy.spec == SPEC and copy.service == "svc-0"
        # Buckets are runtime-only: the revived one starts full again.
        assert revived.bucket("acme").try_acquire(2)
