"""The Cluster facade: routing, quotas, reads, metrics, recovery."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import ServiceCrashed
from repro.serve.cluster import Cluster, StaleFrontier, TenantQuota
from tests.cluster.common import (
    control_signature,
    run_async,
    sig_of,
    tenant_spec,
    tenant_stream,
)


class Clock:
    """A hand-cranked monotonic clock for quota buckets."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


async def _populate(cluster, n_tenants: int, n_events: int = 300):
    """Create ``n_tenants`` seeded tenants and feed their streams."""
    streams = {}
    for i in range(n_tenants):
        tenant = f"tenant-{i}"
        await cluster.create_tenant(tenant, tenant_spec(i))
        streams[tenant] = tenant_stream(i, n_events)
    for tenant, keys in streams.items():
        await cluster.ingest_many(tenant, keys)
    await cluster.flush()
    return streams


class TestLifecycle:
    def test_tenants_read_bit_exactly_vs_isolated_controls(self, tmp_path):
        async def body():
            async with Cluster(services=3, dir=tmp_path) as cluster:
                streams = await _populate(cluster, 12)
                for i, (tenant, keys) in enumerate(streams.items()):
                    assert sig_of(await cluster.sample(tenant)) == \
                        control_signature(i, keys)
                    est = await cluster.estimate(tenant, "total")
                    assert np.isfinite(est) and est > 0
                placement = cluster.placement()
                assert set(placement.values()) <= set(cluster.services)
                assert len(set(placement.values())) > 1, (
                    "12 tenants should spread over >1 service"
                )

        run_async(body())

    def test_placement_follows_the_ring_deterministically(self, tmp_path):
        async def body():
            async with Cluster(services=4, dir=tmp_path) as cluster:
                await _populate(cluster, 8, n_events=10)
                for tenant, service in cluster.placement().items():
                    assert service == cluster.ring.node_for(tenant)

        run_async(body())

    def test_query_is_tenant_scoped_and_version_pinned(self):
        async def body():
            async with Cluster(services=2) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                await cluster.ingest_many("acme", tenant_stream(0, 200))
                await cluster.flush()
                result = await cluster.query("acme", "sum", ci=0.95)
                assert result.aggregate == "sum"
                assert result.ci is not None
                again = await cluster.query("acme", "sum", ci=0.95)
                assert again.state_version == result.state_version

        run_async(body())

    def test_reads_flush_once_for_a_queued_create(self):
        async def body():
            async with Cluster(services=2, max_latency=5.0) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                # The create admin row is still buffered (long deadline);
                # the read path must flush it through rather than fail.
                sample = await cluster.sample("acme")
                assert len(sample.keys) == 0

        run_async(body())

    def test_unknown_tenant_and_service_errors(self):
        async def body():
            async with Cluster(services=2) as cluster:
                with pytest.raises(KeyError, match="unknown tenant"):
                    await cluster.estimate("ghost")
                with pytest.raises(KeyError, match="unknown service"):
                    cluster.service("svc-9")
                await cluster.create_tenant("acme", tenant_spec(0))
                with pytest.raises(ValueError, match="already exists"):
                    await cluster.create_tenant("acme", tenant_spec(0))

        run_async(body())

    def test_drop_tenant_removes_namespace_and_worker_state(self):
        async def body():
            async with Cluster(services=2) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                await cluster.ingest_many("acme", tenant_stream(0, 50))
                record = await cluster.drop_tenant("acme")
                assert record.tenant == "acme"
                assert "acme" not in cluster.tenants()
                await cluster.flush()
                for name in cluster.services:
                    assert not cluster.service(name).sampler.has_tenant("acme")

        run_async(body())

    def test_conditional_admissions_serialize_per_tenant(self):
        """Two producers racing the same ``expect_frontier`` resolve
        cleanly — exactly one admits, the other sees ``StaleFrontier``
        — even when the winner suspends inside the worker admission
        (the per-tenant lock spans the check *and* the admission, so
        the loser's check cannot pass during that suspension and land
        its batch at a stale position)."""
        async def body():
            async with Cluster(services=1) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                worker = cluster._workers["svc-0"]
                real_ingest = worker.ingest_many

                async def slow_ingest(*args, **kwargs):
                    await asyncio.sleep(0.05)  # a long buffer wait
                    return await real_ingest(*args, **kwargs)

                worker.ingest_many = slow_ingest
                keys = tenant_stream(0, 100).tolist()
                results = await asyncio.gather(
                    cluster.ingest_many("acme", keys, expect_frontier=0),
                    cluster.ingest_many("acme", keys, expect_frontier=0),
                    return_exceptions=True,
                )
                admitted = [r for r in results if r is True]
                stale = [r for r in results
                         if isinstance(r, StaleFrontier)]
                assert len(admitted) == 1 and len(stale) == 1
                assert cluster.registry.get("acme").events_enqueued == \
                    len(keys)

        run_async(body())

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            Cluster(services=0)
        with pytest.raises(ValueError, match="unique"):
            Cluster(services=["a", "a"])


class TestQuotas:
    def test_rate_quota_rejects_and_counts(self):
        async def body():
            clock = Clock()
            async with Cluster(services=1, clock=clock) as cluster:
                await cluster.create_tenant(
                    "hot", tenant_spec(0),
                    quota=TenantQuota(events_per_sec=100.0, burst=10.0),
                )
                assert cluster.try_ingest_many("hot", list(range(10)))
                assert not cluster.try_ingest_many("hot", [99])
                record = cluster.registry.get("hot")
                assert record.rejected["rate"] == 1
                clock.now += 0.05  # 5 tokens refill
                assert cluster.try_ingest_many("hot", list(range(5)))
                assert not cluster.try_ingest("hot", 7)
                assert record.rejected["rate"] == 2
                assert record.events_enqueued == 15

        run_async(body())

    def test_share_quota_caps_in_flight_events(self):
        async def body():
            # max_latency is huge so nothing applies until flush: the
            # tenant's in-flight count climbs against its share cap.
            async with Cluster(
                services=1, queue_size=100, batch_size=1000, max_latency=30.0
            ) as cluster:
                await cluster.create_tenant(
                    "greedy", tenant_spec(0),
                    quota=TenantQuota(queue_share=0.2),  # 20 of 100 slots
                )
                await cluster.create_tenant("other", tenant_spec(1))
                assert cluster.try_ingest_many("greedy", list(range(20)))
                assert not cluster.try_ingest("greedy", 99)
                record = cluster.registry.get("greedy")
                assert record.rejected["share"] == 1
                # The shared queue still has room for everyone else.
                assert cluster.try_ingest_many("other", list(range(50)))
                await cluster.flush()
                # Applied events no longer count against the share.
                assert cluster.try_ingest_many("greedy", list(range(20, 35)))

        run_async(body())

    def test_backpressure_drops_are_counted_per_tenant(self):
        async def body():
            async with Cluster(
                services=1, queue_size=64, batch_size=1000, max_latency=30.0
            ) as cluster:
                await cluster.create_tenant("a", tenant_spec(0))
                await cluster.create_tenant("b", tenant_spec(1))
                assert cluster.try_ingest_many("a", list(range(60)))
                assert not cluster.try_ingest_many("b", list(range(10)))
                record = cluster.registry.get("b")
                assert record.rejected["backpressure"] == 10
                worker = cluster.service(cluster.placement()["b"])
                assert worker.metrics.events_dropped_by == {"b": 10}
                assert worker.metrics.events_dropped == 10

        run_async(body())

    def test_blocking_path_waits_instead_of_dropping(self):
        async def body():
            async with Cluster(services=1) as cluster:
                await cluster.create_tenant(
                    "steady", tenant_spec(0),
                    quota=TenantQuota(events_per_sec=1e9),
                )
                await cluster.ingest_many("steady", tenant_stream(0, 500))
                await cluster.flush()
                record = cluster.registry.get("steady")
                assert record.events_enqueued == 500
                assert record.rejected == {
                    "rate": 0, "share": 0, "backpressure": 0,
                    "unavailable": 0,
                }

        run_async(body())


class TestMetrics:
    def test_cluster_metrics_aggregate_workers_and_tenants(self, tmp_path):
        async def body():
            async with Cluster(services=3, dir=tmp_path) as cluster:
                streams = await _populate(cluster, 9, n_events=200)
                metrics = cluster.metrics()
                assert set(metrics.services) == set(cluster.services)
                total_applied = sum(
                    m.events_applied for m in metrics.services.values()
                )
                assert metrics.total.events_applied == total_applied
                assert total_applied == 9 * 200 + 9  # data + create rows
                assert set(metrics.tenants) == set(streams)
                for tenant, row in metrics.tenants.items():
                    assert row["service"] == cluster.placement()[tenant]
                    assert row["events_applied"] == 200
                    assert row["events_enqueued"] == 200
                    assert row["rejected"]["rate"] == 0
                payload = metrics.to_dict()
                assert payload["total"]["events_applied"] == total_applied

        run_async(body())

    def test_describe_tenant_joins_registry_and_worker_state(self):
        async def body():
            async with Cluster(services=2) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                await cluster.ingest_many("acme", tenant_stream(0, 100))
                await cluster.flush()
                description = cluster.describe_tenant("acme")
                assert description["events_applied"] == 100
                assert description["events_enqueued"] == 100
                assert description["events_dropped"] == 0
                assert description["service"] in cluster.services
                assert description["spec"]["name"] == "bottom_k"

        run_async(body())


class TestRecovery:
    def test_recover_is_bit_exact_at_the_durable_frontier(self, tmp_path):
        async def body():
            cluster = Cluster(
                services=3, dir=tmp_path, batch_size=64, max_latency=0.005
            )
            streams = {}
            async with cluster:
                streams = await _populate(cluster, 10, n_events=400)
                # More events, then crash without draining.
                for tenant, keys in streams.items():
                    await cluster.ingest_many(tenant, keys[:100])
                await cluster.abort()

            recovered = Cluster.recover(tmp_path)
            async with recovered:
                assert recovered.tenants() == tuple(sorted(streams))
                for i, (tenant, keys) in enumerate(sorted(streams.items())):
                    worker = recovered.service(
                        recovered.placement()[tenant]
                    )
                    frontier = worker.sampler.events_applied_for(tenant)
                    assert 400 <= frontier <= 500
                    # The recovered tenant equals a control fed exactly
                    # its durable prefix (per-tenant order is the
                    # ingestion order: full stream then the replay tail).
                    replayed = np.concatenate([keys, keys[:100]])[:frontier]
                    assert sig_of(await recovered.sample(tenant)) == \
                        control_signature(i, replayed)

        run_async(body())

    def test_recover_requires_a_meta_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="cluster meta"):
            Cluster.recover(tmp_path / "nope")

    def test_stop_then_recover_preserves_rejection_history(self, tmp_path):
        async def body():
            async with Cluster(
                services=1, dir=tmp_path, queue_size=32,
                batch_size=1000, max_latency=30.0,
            ) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                assert not cluster.try_ingest_many("acme", list(range(40)))
                assert cluster.registry.get("acme").rejected[
                    "backpressure"] == 40

            recovered = Cluster.recover(tmp_path)
            async with recovered:
                assert recovered.registry.get("acme").rejected[
                    "backpressure"] == 40

        run_async(body())

    def test_crashed_worker_propagates_on_stop(self, tmp_path):
        async def body():
            hits = {"n": 0}

            def hook(stage):
                if stage == "svc-0:apply.before":
                    hits["n"] += 1
                    if hits["n"] >= 2:
                        raise RuntimeError("injected")

            cluster = Cluster(
                services=1, dir=tmp_path, batch_size=16,
                max_latency=0.001, fault_hook=hook,
            )
            await cluster.start()
            await cluster.create_tenant("acme", tenant_spec(0))
            with pytest.raises(ServiceCrashed):
                for lo in range(0, 600, 50):
                    await cluster.ingest_many(
                        "acme", tenant_stream(0, 600)[lo:lo + 50]
                    )
                    await cluster.flush()
                await cluster.stop()
            # The directory remains recoverable after the crash.
            await cluster.abort()
            recovered = Cluster.recover(tmp_path)
            async with recovered:
                assert "acme" in recovered.tenants()

        run_async(body())
