"""Live rebalancing: bit-exact handoffs, crash-interrupted handoffs,
and the thousand-tenant acceptance scenario.

Every move is judged against an isolated control sampler replaying the
same per-tenant event prefix — "no loss" here always means *bit-exact
state*, not approximately-equal estimates.
"""

from __future__ import annotations

import asyncio
import collections

import numpy as np
import pytest

from repro.serve import ServiceCrashed
from repro.serve.cluster import Cluster
from repro.serve.cluster.rebalance import (
    RebalancePlan,
    TenantMove,
    execute,
    plan_moves,
)
from tests.cluster.common import (
    control_signature,
    run_async,
    sig_of,
    tenant_spec,
    tenant_stream,
)


class InjectedFault(Exception):
    """Deliberate failure raised from a worker fault hook."""


def _armed_hook(target_stage: str):
    """A fault hook that raises at ``target_stage`` once armed.

    Stages arrive as ``"<worker>:<stage>"``; the test flips ``armed``
    right before the operation under attack so earlier traffic through
    the same worker does not trip it.
    """
    state = {"armed": False}

    def hook(stage: str):
        if state["armed"] and stage == target_stage:
            raise InjectedFault(stage)

    return hook, state


async def _seed(cluster, n_tenants: int, n_events: int = 300, k: int = 16):
    streams = {}
    specs = {}
    for i in range(n_tenants):
        tenant = f"tenant-{i}"
        specs[tenant] = tenant_spec(i, k)
        streams[tenant] = tenant_stream(i, n_events)
    await cluster.create_tenants(specs)
    for tenant, keys in streams.items():
        await cluster.ingest_many(tenant, keys)
    await cluster.flush()
    return streams


async def _assert_bit_exact(cluster, streams, *, k: int = 16):
    for tenant, keys in sorted(streams.items()):
        i = int(tenant.rsplit("-", 1)[1])
        assert sig_of(await cluster.sample(tenant)) == \
            control_signature(i, keys, k=k), tenant


class TestPlanning:
    def test_plan_groups_by_source_and_destination(self):
        plan = RebalancePlan((
            TenantMove("a", "s1", "d1"),
            TenantMove("b", "s1", "d2"),
            TenantMove("c", "s2", "d1"),
        ))
        assert len(plan) == 3
        assert list(plan.by_source()) == ["s1", "s2"]
        assert [m.tenant for m in plan.by_source()["s1"]] == ["a", "b"]
        assert [m.tenant for m in plan.by_destination()["d1"]] == ["a", "c"]

    def test_converged_cluster_plans_no_moves(self):
        async def body():
            async with Cluster(services=3) as cluster:
                await _seed(cluster, 6, n_events=10)
                assert len(plan_moves(cluster)) == 0
                assert len(await cluster.rebalance()) == 0

        run_async(body())


class TestLiveMoves:
    def test_add_service_moves_its_ring_share_bit_exactly(self, tmp_path):
        async def body():
            async with Cluster(services=3, dir=tmp_path) as cluster:
                streams = await _seed(cluster, 20)
                before = cluster.placement()
                name = await cluster.add_service()
                assert name == "svc-3"
                moved = {
                    t for t, s in cluster.placement().items()
                    if before[t] != s
                }
                assert moved, "a 20-tenant seed must move someone"
                assert all(
                    cluster.placement()[t] == name for t in moved
                ), "adding a node only moves tenants TO it"
                await _assert_bit_exact(cluster, streams)
                # Moves keep working after the handoff.
                for tenant in sorted(moved):
                    i = int(tenant.split("-")[1])
                    extra = tenant_stream(i, 50) + 9
                    await cluster.ingest_many(tenant, extra)
                    await cluster.flush()
                    assert sig_of(await cluster.sample(tenant)) == \
                        control_signature(i, streams[tenant], extra)

        run_async(body())

    def test_remove_service_drains_to_survivors_bit_exactly(self, tmp_path):
        async def body():
            async with Cluster(services=4, dir=tmp_path) as cluster:
                streams = await _seed(cluster, 20)
                counts = collections.Counter(cluster.placement().values())
                victim = counts.most_common(1)[0][0]
                plan = await cluster.remove_service(victim)
                assert len(plan) == counts[victim]
                assert victim not in cluster.services
                assert victim not in set(cluster.placement().values())
                await _assert_bit_exact(cluster, streams)

        run_async(body())

    def test_remove_last_service_is_refused(self):
        async def body():
            async with Cluster(services=1) as cluster:
                with pytest.raises(ValueError, match="last service"):
                    await cluster.remove_service("svc-0")
                with pytest.raises(ValueError, match="unknown service"):
                    await cluster.remove_service("svc-7")

        run_async(body())

    def test_nonblocking_ingest_rejects_during_migration(self):
        async def body():
            async with Cluster(services=2) as cluster:
                await _seed(cluster, 4, n_events=20)
                tenant = "tenant-0"
                cluster._gate(tenant)
                try:
                    assert not cluster.try_ingest(tenant, 1)
                    record = cluster.registry.get(tenant)
                    assert record.rejected["backpressure"] == 1
                    assert record.migrating
                finally:
                    cluster._ungate(tenant)
                assert cluster.try_ingest(tenant, 1)

        run_async(body())

    def test_bucket_suspended_producer_rides_through_handoff(self):
        """A blocking producer asleep in its token-bucket delay holds the
        in-flight token, so a concurrent handoff quiesces on it instead
        of extracting state out from under it — its batch lands on the
        source before the pre-handoff flush and moves with the tenant."""
        async def body():
            async with Cluster(services=2) as cluster:
                keys = tenant_stream(0, 120)
                await cluster.create_tenant(
                    "tenant-0", tenant_spec(0),
                    quota={"events_per_sec": 500.0, "burst": 40.0},
                )
                await cluster.ingest_many("tenant-0", keys[:40])  # drain burst
                producer = asyncio.ensure_future(
                    cluster.ingest_many("tenant-0", keys[40:])  # ~0.16s debt
                )
                await asyncio.sleep(0.01)
                assert not producer.done()
                assert cluster._inflight.get("tenant-0", 0) == 1
                source = cluster.placement()["tenant-0"]
                destination = next(
                    name for name in cluster.services if name != source
                )
                await execute(cluster, RebalancePlan(
                    (TenantMove("tenant-0", source, destination),)
                ))
                await producer
                await cluster.flush()
                assert cluster.placement()["tenant-0"] == destination
                worker = cluster.service(destination)
                assert worker.sampler.events_applied_for("tenant-0") == 120
                assert sig_of(await cluster.sample("tenant-0")) == \
                    control_signature(0, keys)

        run_async(body())

    def test_bucket_suspended_producer_survives_drop_tenant(self):
        """drop_tenant must quiesce on a producer suspended in the token
        bucket: its rows go in ahead of the drop row (then erased with
        the tenant) instead of trailing it as unknown-tenant rows that
        would crash the worker's consumer."""
        async def body():
            async with Cluster(services=2) as cluster:
                keys = tenant_stream(0, 120)
                await cluster.create_tenant(
                    "tenant-0", tenant_spec(0),
                    quota={"events_per_sec": 500.0, "burst": 40.0},
                )
                await cluster.create_tenant("tenant-1", tenant_spec(1))
                await cluster.ingest_many("tenant-0", keys[:40])
                producer = asyncio.ensure_future(
                    cluster.ingest_many("tenant-0", keys[40:])
                )
                await asyncio.sleep(0.01)
                assert cluster._inflight.get("tenant-0", 0) == 1
                await cluster.drop_tenant("tenant-0")
                await producer  # admitted before the drop row, no error
                assert "tenant-0" not in cluster.tenants()
                # Every worker's consumer survived (a stray post-drop row
                # would have crashed it, failing this flush).
                extra = tenant_stream(1, 50)
                await cluster.ingest_many("tenant-1", extra)
                await cluster.flush()
                assert sig_of(await cluster.sample("tenant-1")) == \
                    control_signature(1, extra)

        run_async(body())

    def test_concurrent_blocking_ingest_loses_nothing(self):
        async def body():
            async with Cluster(services=3) as cluster:
                streams = {}
                specs = {}
                for i in range(30):
                    tenant = f"tenant-{i}"
                    specs[tenant] = tenant_spec(i)
                    streams[tenant] = tenant_stream(i, 4000)
                await cluster.create_tenants(specs)
                sent = dict.fromkeys(streams, 0)
                stop = asyncio.Event()

                async def produce():
                    while not stop.is_set():
                        for tenant, keys in streams.items():
                            at = sent[tenant]
                            if at >= len(keys):
                                return
                            chunk = keys[at:at + 10]
                            await cluster.ingest_many(tenant, chunk)
                            sent[tenant] = at + len(chunk)
                        await asyncio.sleep(0)

                producer = asyncio.ensure_future(produce())
                await asyncio.sleep(0.02)  # let ingestion get going
                name = await cluster.add_service()
                await cluster.remove_service("svc-0")
                stop.set()
                await producer
                await cluster.flush()
                assert name in set(cluster.placement().values())
                assert min(sent.values()) > 0
                for i in range(30):
                    tenant = f"tenant-{i}"
                    record = cluster.registry.get(tenant)
                    assert record.rejected["backpressure"] == 0
                    worker = cluster.service(cluster.placement()[tenant])
                    applied = worker.sampler.events_applied_for(tenant)
                    assert applied == sent[tenant], tenant
                    assert sig_of(await cluster.sample(tenant)) == \
                        control_signature(i, streams[tenant][:applied])

        run_async(body())


class TestFailedHandoffRollback:
    def test_failed_commit_rolls_back_destination_copies(self):
        """A failure before the placement commit lands must leave no
        live duplicate: the registry keeps pointing at the sources, the
        installed destination copies are dropped, and a live retry
        converges cleanly (previously the retry re-installed over the
        leftovers and crashed the destination worker)."""
        async def body():
            async with Cluster(services=3) as cluster:
                streams = await _seed(cluster, 20, n_events=100)
                before = cluster.placement()
                real_save = cluster._save_meta
                boom = {"armed": True}

                def failing_save():
                    if boom["armed"]:
                        boom["armed"] = False
                        raise OSError("simulated meta-write failure")
                    real_save()

                cluster._save_meta = failing_save
                with pytest.raises(OSError, match="meta-write"):
                    await cluster.add_service()
                cluster._save_meta = real_save

                # The move never committed: placements are unchanged and
                # every tenant lives on exactly one worker.
                assert cluster.placement() == before
                holders = collections.Counter(
                    tenant
                    for name in cluster.services
                    for tenant in cluster.service(name).sampler.tenants()
                )
                assert set(holders) == set(streams)
                assert all(count == 1 for count in holders.values())
                await _assert_bit_exact(cluster, streams)

                # The interrupted expansion replays cleanly, live.
                plan = await cluster.rebalance()
                assert plan.moves, "svc-3's ring share must move to it"
                moved = {
                    tenant for tenant, service
                    in cluster.placement().items()
                    if before[tenant] != service
                }
                assert moved == {move.tenant for move in plan.moves}
                assert all(
                    cluster.placement()[tenant] == "svc-3"
                    for tenant in moved
                )
                await _assert_bit_exact(cluster, streams)

        run_async(body())

    def test_failed_rehome_stays_retryable(self, tmp_path):
        """A rehome whose install on a survivor fails must leave the
        dead worker *discoverable* — still in the pool, back on the
        ring, still marked down — so both the supervisor's retry scan
        (which iterates the pool) and a manual ``rehome_service(name)``
        find it.  Previously the worker was popped before the installs,
        so one failed evacuation stranded its tenants in degraded mode
        forever ('unknown service' on every retry)."""
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                streams = await _seed(cluster, 6, n_events=200)
                victim = cluster.registry.get("tenant-0").service
                survivor = next(
                    name for name in cluster.services if name != victim
                )
                worker = cluster._workers[survivor]
                real_ingest = worker.ingest_many
                boom = {"armed": True}

                async def failing_ingest(*args, **kwargs):
                    if boom["armed"]:
                        boom["armed"] = False
                        raise InjectedFault("install enqueue failed")
                    return await real_ingest(*args, **kwargs)

                worker.ingest_many = failing_ingest
                with pytest.raises(InjectedFault):
                    await cluster.rehome_service(victim, reason="dead")

                # Retryable, not vanished: in the pool, on the ring,
                # and still in its outage (degraded serving continues).
                assert victim in cluster.services
                assert victim in cluster.ring
                assert cluster.is_down(victim)
                for tenant in streams:
                    if cluster.registry.get(tenant).service == victim:
                        result = await cluster.query(tenant, "sum")
                        assert result.degraded

                # The manual retry completes the evacuation bit-exactly.
                plan = await cluster.rehome_service(victim, reason="dead")
                assert plan.moves
                assert victim not in cluster.services
                assert victim not in cluster.ring
                assert not cluster.is_down(victim)
                await _assert_bit_exact(cluster, streams)

        run_async(body())


class TestCrashedHandoffs:
    def test_crash_before_install_durable_keeps_the_source(self, tmp_path):
        """Destination dies before the install row reaches its WAL: the
        move never committed, recovery serves from the source, and a
        later rebalance completes the interrupted move."""
        async def body():
            hook, armed = _armed_hook("svc-3:wal.append.before")
            cluster = Cluster(services=3, dir=tmp_path, fault_hook=hook)
            await cluster.start()
            streams = await _seed(cluster, 20)
            before = cluster.placement()
            will_move = cluster.ring.copy()
            will_move.add_node("svc-3")
            moving = [
                t for t in streams if will_move.node_for(t) != before[t]
            ]
            assert moving, "seed must route some tenants to svc-3"

            armed["armed"] = True
            with pytest.raises(ServiceCrashed):
                await cluster.add_service()
            armed["armed"] = False
            await cluster.abort()

            recovered = Cluster.recover(tmp_path, fault_hook=hook)
            async with recovered:
                # Nothing committed: every placement is pre-crash.
                assert {
                    t: s for t, s in recovered.placement().items()
                } == before
                await _assert_bit_exact(recovered, streams)
                # The interrupted move replays cleanly.
                plan = await recovered.rebalance()
                assert sorted(m.tenant for m in plan.moves) == sorted(moving)
                assert all(
                    recovered.placement()[t] == "svc-3" for t in moving
                )
                await _assert_bit_exact(recovered, streams)

        run_async(body())

    def test_crash_before_source_drop_resolves_to_destination(self, tmp_path):
        """Source dies after the installs are durable and the placement
        committed, but before its drop rows land: the tenant exists on
        two WALs and reconciliation keeps the committed placement."""
        async def body():
            async with Cluster(services=4, dir=tmp_path) as probe:
                await _seed(probe, 20, n_events=10)
                counts = collections.Counter(probe.placement().values())
            victim = counts.most_common(1)[0][0]

            hook, armed = _armed_hook(f"{victim}:wal.append.before")
            cluster = Cluster.recover(tmp_path, fault_hook=hook)
            await cluster.start()
            streams = {
                f"tenant-{i}": tenant_stream(i, 300) for i in range(20)
            }
            for tenant, keys in streams.items():
                await cluster.ingest_many(tenant, keys[10:])
                streams[tenant] = np.concatenate([keys[:10], keys[10:]])
            await cluster.flush()
            victims = [
                t for t, s in cluster.placement().items() if s == victim
            ]

            armed["armed"] = True
            with pytest.raises(ServiceCrashed):
                await cluster.remove_service(victim)
            armed["armed"] = False
            await cluster.abort()

            recovered = Cluster.recover(tmp_path, fault_hook=hook)
            async with recovered:
                # Placement committed before the crash: every victim
                # tenant now lives on a survivor, and the stale copies
                # on the crashed worker were reconciled away.
                for tenant in victims:
                    assert recovered.placement()[tenant] != victim
                assert not recovered.service(victim).sampler.tenants()
                await _assert_bit_exact(recovered, streams)
                # The worker is intact, so retiring it now succeeds.
                await recovered.remove_service(victim)
                assert victim not in recovered.services
                await _assert_bit_exact(recovered, streams)

        run_async(body())


class TestAcceptanceScale:
    def test_thousand_tenants_live_rebalance_zero_loss(self, tmp_path):
        """The PR's acceptance scenario: a 4-service cluster serving
        1000 tenants sustains ingestion while a live rebalance moves at
        least a quarter of them, with zero loss — every tenant's state
        bit-identical to a control replay of exactly its accepted
        prefix."""
        async def body():
            n = 1000
            async with Cluster(
                services=4, dir=tmp_path,
                queue_size=65536, batch_size=8192,
            ) as cluster:
                specs = {
                    f"t{i:04d}": tenant_spec(i, 8) for i in range(n)
                }
                await cluster.create_tenants(specs)
                streams = {
                    f"t{i:04d}": tenant_stream(i, 260) for i in range(n)
                }
                for tenant, keys in streams.items():
                    await cluster.ingest_many(tenant, keys[:100])
                sent = dict.fromkeys(streams, 100)
                before = cluster.placement()
                counts = collections.Counter(before.values())
                victim = counts.most_common(1)[0][0]
                assert counts[victim] >= n // 4  # pigeonhole over 4

                # One blocking producer rides straight through the
                # rebalance; the try_ingest producer keeps the rest of
                # the fleet fed and must never lose an *accepted* event.
                stop = asyncio.Event()

                async def produce_blocking(tenant):
                    keys = streams[tenant]
                    while sent[tenant] < len(keys):
                        chunk = keys[sent[tenant]:sent[tenant] + 20]
                        await cluster.ingest_many(tenant, chunk)
                        sent[tenant] += len(chunk)
                        await asyncio.sleep(0)

                async def produce_optimistic(tenants):
                    while not stop.is_set():
                        for tenant in tenants:
                            at = sent[tenant]
                            chunk = streams[tenant][at:at + 20]
                            if len(chunk) and cluster.try_ingest_many(
                                tenant, chunk
                            ):
                                sent[tenant] = at + len(chunk)
                        await asyncio.sleep(0)

                riders = [
                    t for t, s in sorted(before.items()) if s == victim
                ][:2]
                producers = [
                    asyncio.ensure_future(produce_blocking(t))
                    for t in riders
                ]
                # One writer per tenant: the optimistic producer covers
                # everyone the blocking riders don't.
                producers.append(asyncio.ensure_future(
                    produce_optimistic(sorted(set(streams) - set(riders)))
                ))
                await asyncio.sleep(0.01)

                plan = await cluster.remove_service(victim)

                stop.set()
                await asyncio.gather(*producers)
                await cluster.flush()

                moved = {
                    t for t, s in cluster.placement().items()
                    if before[t] != s
                }
                assert len(plan) == counts[victim]
                assert len(moved) >= n // 4
                assert victim not in cluster.services

                for i in range(n):
                    tenant = f"t{i:04d}"
                    worker = cluster.service(cluster.placement()[tenant])
                    applied = worker.sampler.events_applied_for(tenant)
                    assert applied == sent[tenant], tenant
                    assert sig_of(await cluster.sample(tenant)) == \
                        control_signature(
                            i, streams[tenant][:applied], k=8
                        ), tenant
                assert all(sent[t] == 260 for t in riders)

        run_async(body())


@pytest.mark.soak
class TestChurnSoak:
    def test_many_tenant_service_churn_stays_bit_exact(self, tmp_path):
        """Soak: repeated grow/shrink churn under continuous ingestion,
        with a crash-recovery pass in the middle."""
        async def body():
            n = 300
            cluster = Cluster(services=3, dir=tmp_path,
                              queue_size=65536, batch_size=4096)
            await cluster.start()
            await cluster.create_tenants(
                {f"t{i:03d}": tenant_spec(i, 8) for i in range(n)}
            )
            streams = {f"t{i:03d}": tenant_stream(i, 5000) for i in range(n)}
            sent = dict.fromkeys(streams, 0)
            stop = asyncio.Event()

            async def produce():
                while not stop.is_set():
                    for tenant, keys in streams.items():
                        at = sent[tenant]
                        chunk = keys[at:at + 25]
                        if len(chunk) and cluster.try_ingest_many(
                            tenant, chunk
                        ):
                            sent[tenant] = at + len(chunk)
                    await asyncio.sleep(0)

            async def verify_all():
                await cluster.flush()
                for i in range(n):
                    tenant = f"t{i:03d}"
                    worker = cluster.service(cluster.placement()[tenant])
                    applied = worker.sampler.events_applied_for(tenant)
                    assert applied == sent[tenant], tenant
                    assert sig_of(await cluster.sample(tenant)) == \
                        control_signature(
                            i, streams[tenant][:applied], k=8
                        ), tenant

            try:
                for round_at in range(4):
                    producer = asyncio.ensure_future(produce())
                    await asyncio.sleep(0.02)
                    added = await cluster.add_service()
                    await asyncio.sleep(0.02)
                    counts = collections.Counter(
                        cluster.placement().values()
                    )
                    victim = counts.most_common(1)[0][0]
                    if victim == added and len(counts) > 1:
                        victim = counts.most_common(2)[1][0]
                    await cluster.remove_service(victim)
                    stop.set()
                    await producer
                    stop.clear()
                    await verify_all()
                    if round_at == 1:
                        await cluster.abort()
                        cluster = Cluster.recover(tmp_path)
                        await cluster.start()
                        # Recovery truncates to each durable frontier;
                        # producers resend from there.
                        for i in range(n):
                            tenant = f"t{i:03d}"
                            worker = cluster.service(
                                cluster.placement()[tenant]
                            )
                            sent[tenant] = (
                                worker.sampler.events_applied_for(tenant)
                            )
                        await verify_all()
            finally:
                stop.set()
                await cluster.abort()

        run_async(body())
