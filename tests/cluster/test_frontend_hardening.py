"""Per-connection hardening: caps, timeouts, rate limits, idempotency.

One misbehaving client must not wedge the frontend.  Each test drives
one enforcement — connection cap, idle/read timeouts, per-connection
frame rate, quiet mid-frame-disconnect cleanup, the idempotent-retry
dedupe table — and asserts both the wire behavior and the
:class:`~repro.serve.cluster.FrontendMetrics` counter that proves the
frontend saw it.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import struct

import pytest

from repro.serve.chaos import misbehaving_connection
from repro.serve.cluster import (
    CircuitBreaker,
    CircuitOpenError,
    Cluster,
    ClusterClient,
    ClusterFrontend,
    FrameError,
    FrameTimeout,
    RetryPolicy,
)
from repro.serve.cluster.frontend import read_frame
from tests.cluster.common import (
    control_signature,
    run_async,
    sig_of,
    tenant_spec,
    tenant_stream,
)

FAST_RETRY = RetryPolicy(max_attempts=6, base_delay=0.02, max_delay=0.1,
                         jitter=0.0, request_timeout=5.0)


@contextlib.asynccontextmanager
async def served(n_services: int = 2, cluster_kwargs=None,
                 **frontend_kwargs):
    async with Cluster(services=n_services,
                       **(cluster_kwargs or {})) as cluster:
        async with ClusterFrontend(cluster, **frontend_kwargs) as frontend:
            yield cluster, frontend


def _frame(payload: dict) -> bytes:
    body = json.dumps(payload).encode()
    return struct.pack(">I", len(body)) + body


class TestConnectionCap:
    def test_over_cap_connection_gets_retryable_unavailable(self):
        async def body():
            async with served(max_connections=2) as (cluster, frontend):
                host, port = frontend.address
                keep = [await ClusterClient.connect(host, port)
                        for _ in range(2)]
                # The cap counts *served* connections, so poke the two
                # live ones to make sure their handlers are running.
                for client in keep:
                    await client.admin("tenants")
                # Send nothing: the server rejects at accept time with
                # one error frame (sending first would leave unread
                # bytes and turn the server's close into an RST that
                # discards the reply).
                reply_bytes = await misbehaving_connection(
                    host, port, linger=0.1,
                )
                assert reply_bytes, "expected one error frame"
                (length,) = struct.unpack(">I", reply_bytes[:4])
                reply = json.loads(reply_bytes[4:4 + length])
                assert reply["ok"] is False
                assert reply["error_type"] == "Unavailable"
                assert reply["retryable"] is True
                assert frontend.metrics.connections_rejected == 1
                for client in keep:
                    await client.aclose()
                # Closed connections free slots for new ones.
                await asyncio.sleep(0.05)
                fresh = await ClusterClient.connect(host, port)
                assert (await fresh.admin("tenants"))["ok"]
                await fresh.aclose()

        run_async(body())


class TestTimeouts:
    def test_frame_timeout_carries_the_phase(self):
        """Handlers branch on ``FrameTimeout.what`` (``"header"`` =
        idle, ``"body"`` = slowloris), not on message wording — a
        rewording must not flip quiet-close vs error-reply behavior."""
        async def body():
            reader = asyncio.StreamReader()  # silent: no header
            with pytest.raises(FrameTimeout) as exc:
                await read_frame(reader, idle_timeout=0.01)
            assert exc.value.what == "header"
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", 10))  # header, then stall
            with pytest.raises(FrameTimeout) as exc:
                await read_frame(reader, body_timeout=0.01)
            assert exc.value.what == "body"

        run_async(body())

    def test_idle_connection_is_reaped(self):
        async def body():
            async with served(idle_timeout=0.1) as (cluster, frontend):
                host, port = frontend.address
                received = await misbehaving_connection(
                    host, port, linger=0.4,
                )
                assert frontend.metrics.idle_timeouts == 1
                assert frontend.metrics.connections_active == 0
                # The reap is a *quiet* close: an error frame here would
                # desynchronize a reconnecting client's reply pairing.
                assert received == b""

        run_async(body())

    def test_slowloris_body_trickle_is_reaped(self):
        async def body():
            async with served(read_timeout=0.1) as (cluster, frontend):
                host, port = frontend.address
                # A header promising 64 bytes, then silence.
                received = await misbehaving_connection(
                    host, port, send=struct.pack(">I", 64) + b"abc",
                    linger=0.4,
                )
                assert frontend.metrics.read_timeouts == 1
                assert frontend.metrics.connections_active == 0
                assert b"FrameTimeout" in received

        run_async(body())

    def test_fast_clients_are_untouched_by_timeouts(self):
        async def body():
            async with served(idle_timeout=1.0, read_timeout=1.0) as (
                    cluster, frontend):
                client = await ClusterClient.connect(*frontend.address)
                await client.create_tenant("acme", tenant_spec(0))
                for _ in range(5):
                    reply = await client.ingest_many(
                        "acme", tenant_stream(0, 50).tolist()
                    )
                    assert reply["admitted"]
                assert frontend.metrics.idle_timeouts == 0
                assert frontend.metrics.read_timeouts == 0
                await client.aclose()

        run_async(body())


class TestFrameRateLimit:
    def test_over_rate_frames_get_ratelimited_reply(self):
        async def body():
            now = [0.0]
            async with served(frame_rate=2.0, frame_burst=2.0,
                              clock=lambda: now[0]) as (cluster, frontend):
                client = await ClusterClient.connect(*frontend.address)
                assert (await client.admin("tenants"))["ok"]
                assert (await client.admin("tenants"))["ok"]
                # Bucket drained; the third frame bounces but the
                # connection survives.
                with pytest.raises(RuntimeError, match="RateLimited"):
                    await client.admin("tenants")
                assert frontend.metrics.frames_rate_limited == 1
                now[0] += 1.0  # refill
                assert (await client.admin("tenants"))["ok"]
                await client.aclose()

        run_async(body())

    def test_rate_limited_reply_is_retryable_for_the_client(self):
        async def body():
            now = [0.0]
            async with served(frame_rate=2.0, frame_burst=2.0,
                              clock=lambda: now[0]) as (cluster, frontend):
                client = await ClusterClient.connect(
                    *frontend.address, retry=FAST_RETRY,
                )
                assert (await client.admin("tenants"))["ok"]
                assert (await client.admin("tenants"))["ok"]
                refill = asyncio.get_running_loop().call_later(
                    0.05, lambda: now.__setitem__(0, now[0] + 1.0)
                )
                # The retry loop rides out the rate limit window.
                assert (await client.admin("tenants"))["ok"]
                refill.cancel()
                assert frontend.metrics.frames_rate_limited >= 1
                await client.aclose()

        run_async(body())


class TestMidFrameDisconnect:
    def test_partial_header_disconnect_is_quiet(self):
        async def body():
            loop = asyncio.get_running_loop()
            escaped = []
            loop.set_exception_handler(
                lambda _l, ctx: escaped.append(ctx)
            )
            try:
                async with served() as (cluster, frontend):
                    await misbehaving_connection(
                        *frontend.address, send=b"\x00\x00",
                    )
                    await asyncio.sleep(0.05)
                    assert frontend.metrics.disconnects_mid_frame == 1
                    assert frontend.metrics.connections_active == 0
                    # No error frame was attempted at the vanished peer
                    # and no handler task escaped with a traceback.
                    assert frontend.metrics.frame_errors == 0
                await asyncio.sleep(0.05)
                assert escaped == []
            finally:
                loop.set_exception_handler(None)

        run_async(body())

    def test_truncated_body_disconnect_is_quiet(self):
        async def body():
            loop = asyncio.get_running_loop()
            escaped = []
            loop.set_exception_handler(
                lambda _l, ctx: escaped.append(ctx)
            )
            try:
                async with served() as (cluster, frontend):
                    # Header for 100 bytes, only 10 delivered, abrupt
                    # close (RST, not FIN).
                    await misbehaving_connection(
                        *frontend.address,
                        send=struct.pack(">I", 100) + b"x" * 10,
                        abort=True,
                    )
                    await asyncio.sleep(0.05)
                    assert frontend.metrics.disconnects_mid_frame == 1
                    assert frontend.metrics.connections_active == 0
                await asyncio.sleep(0.05)
                assert escaped == []
            finally:
                loop.set_exception_handler(None)

        run_async(body())

    def test_malformed_frame_still_answers_then_closes(self):
        async def body():
            async with served() as (cluster, frontend):
                received = await misbehaving_connection(
                    *frontend.address,
                    send=struct.pack(">I", 3) + b"{{{",
                    linger=0.1,
                )
                assert b"FrameError" in received
                assert frontend.metrics.frame_errors == 1

        run_async(body())


class TestIdempotentIngest:
    def test_duplicate_request_id_replays_without_readmitting(self):
        async def body():
            async with served() as (cluster, frontend):
                client = await ClusterClient.connect(*frontend.address)
                await client.create_tenant("acme", tenant_spec(0))
                keys = tenant_stream(0, 100).tolist()
                first = await client.ingest_many(
                    "acme", keys, request_id="req-1"
                )
                assert first["admitted"] and first["frontier"] == 100
                replay = await client.ingest_many(
                    "acme", keys, request_id="req-1"
                )
                assert replay["deduped"] is True
                assert replay["frontier"] == 100
                # The duplicate did not double-count a single event.
                record = cluster.registry.get("acme")
                assert record.events_enqueued == 100
                assert frontend.metrics.replies_deduped == 1
                await client.admin("flush")
                assert sig_of(await cluster.sample("acme")) == \
                    control_signature(0, tenant_stream(0, 100))
                await client.aclose()

        run_async(body())

    def test_scalar_ingest_dedupes_too(self):
        async def body():
            async with served() as (cluster, frontend):
                client = await ClusterClient.connect(*frontend.address)
                await client.create_tenant("acme", tenant_spec(0))
                for _ in range(3):
                    reply = await client.ingest(
                        "acme", 7, block=True, request_id="one-key"
                    )
                    assert reply["admitted"]
                assert cluster.registry.get("acme").events_enqueued == 1
                assert frontend.metrics.replies_deduped == 2
                await client.aclose()

        run_async(body())

    def test_rejected_admissions_are_not_cached(self):
        async def body():
            from repro.serve.cluster import TenantQuota
            now = [0.0]
            async with served(
                cluster_kwargs=dict(clock=lambda: now[0]),
            ) as (cluster, frontend):
                client = await ClusterClient.connect(*frontend.address)
                await client.admin(
                    "create_tenant", tenant="acme", spec=tenant_spec(0),
                    quota={"events_per_sec": 10, "burst": 100},
                )
                # Drain the token bucket, then get denied.
                drained = await client.ingest_many(
                    "acme", list(range(100)), block=False,
                )
                assert drained["admitted"] is True
                denied = await client.ingest_many(
                    "acme", list(range(100)), block=False,
                    request_id="req-q",
                )
                assert denied["admitted"] is False
                now[0] += 100.0  # refill the quota bucket
                # Same request id: a non-admission was not cached, so
                # the retry really runs (and now succeeds).
                retry = await client.ingest_many(
                    "acme", list(range(100)), block=False,
                    request_id="req-q",
                )
                assert retry["admitted"] is True
                assert "deduped" not in retry
                await client.aclose()

        run_async(body())

    def test_dedupe_table_is_bounded(self):
        async def body():
            async with served(dedupe_capacity=4) as (cluster, frontend):
                client = await ClusterClient.connect(*frontend.address)
                await client.create_tenant("acme", tenant_spec(0))
                for i in range(8):
                    await client.ingest(
                        "acme", i, block=True, request_id=f"req-{i}"
                    )
                assert len(frontend._dedupe) == 4
                # The oldest entries fell off: replaying req-0 admits
                # again (at-most-once needs the client to retry within
                # the table's horizon, which retries do).
                reply = await client.ingest(
                    "acme", 0, block=True, request_id="req-0"
                )
                assert "deduped" not in reply
                await client.aclose()

        run_async(body())


class TestClientRetry:
    def test_retry_reconnects_after_server_side_close(self):
        async def body():
            async with served(idle_timeout=0.1) as (cluster, frontend):
                client = await ClusterClient.connect(
                    *frontend.address, retry=FAST_RETRY,
                )
                await client.create_tenant("acme", tenant_spec(0))
                # Let the server reap the idle connection, then call
                # again: the first attempt hits a dead socket, the
                # retry reconnects transparently.
                await asyncio.sleep(0.3)
                reply = await client.ingest_many(
                    "acme", tenant_stream(0, 50).tolist()
                )
                assert reply["admitted"]
                await client.aclose()

        run_async(body())

    def test_no_retry_client_is_unchanged_on_dead_socket(self):
        async def body():
            async with served(idle_timeout=0.1) as (cluster, frontend):
                client = await ClusterClient.connect(*frontend.address)
                await asyncio.sleep(0.3)
                with pytest.raises((FrameError, ConnectionError)):
                    await client.admin("tenants")
                await client.aclose()

        run_async(body())

    def test_circuit_breaker_opens_after_transport_failures(self):
        async def body():
            async with served() as (cluster, frontend):
                host, port = frontend.address
                client = await ClusterClient.connect(
                    host, port,
                    retry=RetryPolicy(max_attempts=2, base_delay=0.01,
                                      jitter=0.0, request_timeout=0.5),
                    breaker=CircuitBreaker(failure_threshold=2,
                                           reset_timeout=60.0),
                )
                await client.aclose()
            # The frontend (and cluster) are gone: every attempt is a
            # transport failure.
            with pytest.raises((ConnectionError, FrameError, OSError)):
                await client.call({"verb": "admin", "op": "tenants"})
            assert client.breaker.state == "open"
            with pytest.raises(CircuitOpenError):
                await client.call({"verb": "admin", "op": "tenants"})

        run_async(body())

    def test_retry_budget_exhaustion_raises_last_error(self):
        async def body():
            policy = RetryPolicy(max_attempts=3, base_delay=0.01,
                                 jitter=0.0, request_timeout=0.5)
            client = ClusterClient(
                None, None, host="127.0.0.1", port=1,  # nothing listens
                retry=policy,
            )
            client._writer = None
            with pytest.raises((ConnectionError, OSError)):
                await client.call({"verb": "admin", "op": "tenants"})

        run_async(body())

    def test_non_retryable_error_replies_surface_immediately(self):
        async def body():
            async with served() as (cluster, frontend):
                calls = []
                client = await ClusterClient.connect(
                    *frontend.address, retry=FAST_RETRY,
                )
                with pytest.raises(RuntimeError, match="KeyError"):
                    await client.estimate("ghost-tenant")
                await client.aclose()

        run_async(body())


class TestValidation:
    def test_bad_hardening_parameters_are_rejected(self):
        async def body():
            async with Cluster(services=1) as cluster:
                for kwargs in (
                    dict(max_connections=0),
                    dict(idle_timeout=0),
                    dict(read_timeout=-1),
                    dict(frame_rate=0),
                    dict(dedupe_capacity=0),
                ):
                    with pytest.raises(ValueError):
                        ClusterFrontend(cluster, **kwargs)

        run_async(body())
