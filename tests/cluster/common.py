"""Shared machinery for the cluster test battery.

Mirrors ``tests/serve/common.py``: async bodies run under a hard
deadline via :func:`run_async`, and bit-exactness goes through the
shared :func:`sample_signature` — here usually applied to one tenant's
child sampler, or via :func:`sig_of` to a raw ``Sample``.
"""

from __future__ import annotations

import types

import numpy as np

from tests.serve.common import ASYNC_DEADLINE, run_async, signature  # noqa: F401
from tests.helpers import sample_signature


def sig_of(sample) -> tuple:
    """Bit-exactness signature of a raw :class:`~repro.core.Sample`."""
    shim = types.SimpleNamespace(sample=lambda: sample)
    return sample_signature(shim)


def tenant_spec(i: int, k: int = 16) -> dict:
    """A seeded per-tenant sampler spec (determinism for control replays)."""
    return {"name": "bottom_k", "params": {"k": k, "rng": 1000 + i}}


def tenant_stream(i: int, n: int = 400) -> np.ndarray:
    """A deterministic key stream unique to tenant ``i``."""
    return np.random.default_rng(5000 + i).integers(0, 5000, size=n)


def control_signature(i: int, *streams, k: int = 16) -> tuple:
    """Signature of a fresh control sampler fed ``streams`` in order."""
    import repro

    sampler = repro.SamplerSpec.from_dict(tenant_spec(i, k)).build()
    for keys in streams:
        if len(keys):
            sampler.update_many(keys)
    return sample_signature(sampler)
