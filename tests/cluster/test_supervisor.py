"""Supervision: health probes, failover, and degraded serving.

The chaos battery (``tests/chaos/``) drives the same machinery through
injected infrastructure faults end to end; this file pins the unit
semantics — probe verdicts, miss counting, the failover actions, outage
bookkeeping — with hand-built failures.
"""

from __future__ import annotations

import asyncio
import types

import pytest

from repro.serve import ServiceCrashed
from repro.serve.cluster import Cluster, Supervisor
from repro.serve.cluster.health import (
    UNHEALTHY_VERDICTS,
    VERDICT_CRASHED,
    VERDICT_DEAD,
    VERDICT_HEALTHY,
    VERDICT_STALLED,
    HealthConfig,
    WorkerHealth,
    probe_service,
)
from tests.cluster.common import (
    control_signature,
    run_async,
    sig_of,
    tenant_spec,
    tenant_stream,
)

FAST = dict(interval=0.02, stall_timeout=0.2, max_missed=2)


def _probe(now=100.0, **attrs) -> str:
    """Probe a stub service with the given liveness attributes."""
    defaults = dict(
        crashed=False, consumer_alive=True, pending_events=0,
        last_heartbeat=now, events_applied=0,
    )
    defaults.update(attrs)
    service = types.SimpleNamespace(**defaults)
    health = WorkerHealth("svc-0")
    health.last_applied = attrs.get("_last_applied", -1)
    return probe_service(service, now, health, HealthConfig(**FAST))


async def _wait_for(predicate, deadline: float = 10.0):
    """Poll ``predicate`` until true (supervision is asynchronous)."""
    loop = asyncio.get_running_loop()
    end = loop.time() + deadline
    while not predicate():
        if loop.time() > end:
            raise AssertionError("condition not reached before deadline")
        await asyncio.sleep(0.01)


class TestHealthProbes:
    def test_healthy_service_probes_healthy(self):
        assert _probe() == VERDICT_HEALTHY

    def test_crashed_consumer_is_crashed(self):
        assert _probe(crashed=True) == VERDICT_CRASHED

    def test_gone_task_is_dead(self):
        assert _probe(consumer_alive=False) == VERDICT_DEAD

    def test_stale_heartbeat_with_backlog_is_stalled(self):
        verdict = _probe(
            now=100.0, pending_events=5, last_heartbeat=99.0,
            events_applied=7, _last_applied=7,
        )
        assert verdict == VERDICT_STALLED

    def test_stale_heartbeat_without_backlog_is_idle_not_stalled(self):
        assert _probe(now=100.0, pending_events=0,
                      last_heartbeat=50.0) == VERDICT_HEALTHY

    def test_progress_resets_the_stall_clock(self):
        # Applied frontier moved since the last probe: not stalled even
        # with a stale heartbeat and a backlog.
        verdict = _probe(
            now=100.0, pending_events=5, last_heartbeat=99.0,
            events_applied=8, _last_applied=7,
        )
        assert verdict == VERDICT_HEALTHY

    def test_observe_trips_only_after_max_missed(self):
        health = WorkerHealth("svc-0")
        assert not health.observe(VERDICT_CRASHED, 0, max_missed=2)
        assert health.status == "suspect"
        assert health.observe(VERDICT_CRASHED, 0, max_missed=2)

    def test_healthy_probe_clears_the_miss_streak(self):
        health = WorkerHealth("svc-0")
        health.observe(VERDICT_STALLED, 0, max_missed=3)
        health.observe(VERDICT_HEALTHY, 1, max_missed=3)
        assert health.missed == 0 and health.status == "healthy"
        assert not health.observe(VERDICT_STALLED, 1, max_missed=3)

    def test_unhealthy_verdicts_enumerated(self):
        assert set(UNHEALTHY_VERDICTS) == {
            VERDICT_CRASHED, VERDICT_DEAD, VERDICT_STALLED,
        }


class TestSupervisorFailover:
    def test_dead_worker_restarts_bit_exactly(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                keys = tenant_stream(0, 400)
                await cluster.ingest_many("acme", keys)
                await cluster.flush()
                baseline = sig_of(await cluster.sample("acme"))
                async with Supervisor(cluster, **FAST) as sup:
                    holder = cluster.registry.get("acme").service
                    cluster._workers[holder]._task.cancel()
                    await _wait_for(lambda: any(
                        e.restored_at is not None for e in sup.events
                    ))
                    event = sup.events[0]
                    assert event.worker == holder
                    assert event.reason == VERDICT_DEAD
                    assert event.action == "restart"
                    assert event.restore_latency >= 0
                    assert not cluster.is_down(holder)
                    assert sig_of(await cluster.sample("acme")) == baseline
                    assert sig_of(await cluster.sample("acme")) == \
                        control_signature(0, keys)
                    metrics = cluster.metrics()
                    assert metrics.services[holder].restarts == 1

        run_async(body())

    def test_rehome_policy_evacuates_the_dead_worker(self, tmp_path):
        async def body():
            async with Cluster(services=3, dir=tmp_path) as cluster:
                streams = {}
                for i in range(6):
                    tenant = f"tenant-{i}"
                    await cluster.create_tenant(tenant, tenant_spec(i))
                    streams[tenant] = tenant_stream(i, 200)
                    await cluster.ingest_many(tenant, streams[tenant])
                await cluster.flush()
                async with Supervisor(cluster, policy="rehome",
                                      **FAST) as sup:
                    victim = cluster.registry.get("tenant-0").service
                    cluster._workers[victim]._task.cancel()
                    await _wait_for(lambda: any(
                        e.restored_at is not None for e in sup.events
                    ))
                    event = sup.events[-1]
                    assert event.action == "rehome"
                    assert victim not in cluster.services
                    for i in range(6):
                        tenant = f"tenant-{i}"
                        assert sig_of(await cluster.sample(tenant)) == \
                            control_signature(i, streams[tenant])
                    moved = set(event.moved)
                    assert moved and all(
                        cluster.registry.get(t).service != victim
                        for t in moved
                    )

        run_async(body())

    def test_policy_callable_picks_per_verdict(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                await cluster.ingest_many("acme", tenant_stream(0, 100))
                await cluster.flush()
                seen = []

                def policy(name, verdict):
                    seen.append((name, verdict))
                    return "restart"

                async with Supervisor(cluster, policy=policy,
                                      **FAST) as sup:
                    holder = cluster.registry.get("acme").service
                    cluster._workers[holder]._task.cancel()
                    await _wait_for(lambda: any(
                        e.restored_at is not None for e in sup.events
                    ))
                assert (holder, VERDICT_DEAD) in seen

        run_async(body())

    def test_failed_recovery_keeps_degraded_serving_and_retries(
            self, tmp_path, monkeypatch):
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                await cluster.ingest_many("acme", tenant_stream(0, 300))
                await cluster.flush()
                baseline = await cluster.query("acme", "sum")
                real_restart = cluster.restart_service
                failures = {"left": 2}

                async def flaky_restart(name, *, reason="manual"):
                    if failures["left"] > 0:
                        failures["left"] -= 1
                        # The real contract: a failed restart leaves the
                        # worker marked down, serving degraded.
                        cluster.mark_service_down(name, reason)
                        await cluster._workers[name].abort()
                        raise RuntimeError("injected recovery failure")
                    await real_restart(name, reason=reason)

                monkeypatch.setattr(cluster, "restart_service",
                                    flaky_restart)
                async with Supervisor(cluster, **FAST) as sup:
                    holder = cluster.registry.get("acme").service
                    cluster._workers[holder]._task.cancel()
                    # While recovery keeps failing the worker stays down
                    # and reads degrade to the durable snapshot.
                    await _wait_for(lambda: cluster.is_down(holder))
                    result = await cluster.query("acme", "sum")
                    assert result.degraded
                    assert result.estimate == baseline.estimate
                    assert result.state_version == baseline.state_version
                    # The tick loop retries until recovery succeeds.
                    await _wait_for(lambda: any(
                        e.restored_at is not None for e in sup.events
                    ))
                    failed = [e for e in sup.events if e.error]
                    assert len(failed) == 2
                    assert not cluster.is_down(holder)
                    fresh = await cluster.query("acme", "sum")
                    assert not fresh.degraded

        run_async(body())

    def test_stop_mid_failover_completes_the_swap(
            self, tmp_path, monkeypatch):
        """``stop()`` during an in-flight failover awaits the swap to
        completion: the cancellation lands in the probe loop, never
        inside ``restart_service`` — a half-executed restart abandoned
        mid-swap would leave the worker down with no supervisor left to
        retry it."""
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                keys = tenant_stream(0, 300)
                await cluster.ingest_many("acme", keys)
                await cluster.flush()
                real_restart = cluster.restart_service
                entered = asyncio.Event()
                finished = {"done": False}

                async def slow_restart(name, *, reason="manual"):
                    entered.set()
                    await asyncio.sleep(0.2)
                    await real_restart(name, reason=reason)
                    finished["done"] = True

                monkeypatch.setattr(cluster, "restart_service",
                                    slow_restart)
                sup = await Supervisor(cluster, **FAST).start()
                holder = cluster.registry.get("acme").service
                cluster._workers[holder]._task.cancel()
                await entered.wait()
                await sup.stop()
                assert finished["done"]
                assert not cluster.is_down(holder)
                assert sup.events[-1].restored_at is not None
                assert sig_of(await cluster.sample("acme")) == \
                    control_signature(0, keys)

        run_async(body())

    def test_operator_declared_outage_is_honored(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                await cluster.ingest_many("acme", tenant_stream(0, 100))
                await cluster.flush()
                holder = cluster.registry.get("acme").service
                async with Supervisor(cluster, **FAST) as sup:
                    cluster.mark_service_down(holder, "maintenance")
                    await asyncio.sleep(0.15)
                    # No failover: the operator said down, so down it is.
                    assert sup.events == []
                    assert cluster.is_down(holder)
                    assert sup.status()[holder]["status"] == "down"
                    cluster.mark_service_up(holder)
                    await asyncio.sleep(0.1)
                    assert sup.events == []
                    assert sup.status()[holder]["status"] == "healthy"

        run_async(body())

    def test_on_failover_callback_and_events_log(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                await cluster.flush()
                observed = []
                async with Supervisor(cluster, on_failover=observed.append,
                                      **FAST) as sup:
                    holder = cluster.registry.get("acme").service
                    cluster._workers[holder]._task.cancel()
                    await _wait_for(lambda: len(observed) > 0)
                    assert observed[0] is sup.events[0]

        run_async(body())

    def test_in_memory_restart_resets_tenants_best_effort(self):
        async def body():
            async with Cluster(services=2) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                await cluster.ingest_many("acme", tenant_stream(0, 200))
                await cluster.flush()
                async with Supervisor(cluster, **FAST) as sup:
                    holder = cluster.registry.get("acme").service
                    cluster._workers[holder]._task.cancel()
                    await _wait_for(lambda: any(
                        e.restored_at is not None for e in sup.events
                    ))
                    # Nothing durable: the tenant restarts empty with
                    # its counters zeroed (documented best effort).
                    record = cluster.registry.get("acme")
                    assert record.events_enqueued == 0
                    assert all(v == 0 for v in record.rejected.values())
                    sample = await cluster.sample("acme")
                    assert len(sample.keys) == 0
                    await cluster.ingest_many("acme", tenant_stream(0, 50))
                    await cluster.flush()

        run_async(body())

    def test_supervised_ingest_sheds_instead_of_raising(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                await cluster.ingest_many("acme", tenant_stream(0, 100))
                await cluster.flush()
                holder = cluster.registry.get("acme").service
                async with Supervisor(cluster, interval=60.0) as sup:
                    # Interval is huge: the worker crashes and the
                    # supervisor has not noticed yet — the ingest path
                    # itself must contain the crash.
                    await cluster._workers[holder]._crash(
                        RuntimeError("boom")
                    )
                    admitted = await cluster.ingest_many(
                        "acme", tenant_stream(0, 10)
                    )
                    assert admitted is False
                    record = cluster.registry.get("acme")
                    assert record.rejected["unavailable"] == 10
                    assert cluster.is_down(holder)
                    assert not sup.events

        run_async(body())

    def test_unsupervised_crash_still_raises(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                await cluster.ingest_many("acme", tenant_stream(0, 50))
                await cluster.flush()
                holder = cluster.registry.get("acme").service
                await cluster._workers[holder]._crash(RuntimeError("boom"))
                with pytest.raises(ServiceCrashed):
                    await cluster.ingest_many("acme", tenant_stream(0, 10))
                # Quiet close: the crash already surfaced above.
                await cluster._workers[holder].abort()

        run_async(body())

    def test_start_stop_lifecycle(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                sup = Supervisor(cluster, **FAST)
                assert not sup.running
                await sup.start()
                assert sup.running and cluster._supervised == 1
                with pytest.raises(RuntimeError):
                    await sup.start()
                await sup.stop()
                assert not sup.running and cluster._supervised == 0
                await sup.stop()  # idempotent

        run_async(body())

    def test_config_and_kwargs_are_mutually_exclusive(self, tmp_path):
        async def body():
            async with Cluster(services=1, dir=tmp_path) as cluster:
                with pytest.raises(ValueError):
                    Supervisor(cluster, config=HealthConfig(),
                               interval=0.5)
                with pytest.raises(ValueError):
                    Supervisor(cluster, policy="reboot")

        run_async(body())


class TestDegradedServing:
    def test_degraded_reads_pin_the_durable_snapshot(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                keys = tenant_stream(0, 300)
                await cluster.ingest_many("acme", keys)
                await cluster.flush()
                baseline = await cluster.query("acme", "sum")
                holder = cluster.registry.get("acme").service
                cluster.mark_service_down(holder, "test")
                result = await cluster.query("acme", "sum")
                assert result.degraded
                assert result.estimate == baseline.estimate
                assert result.state_version == baseline.state_version
                sample = await cluster.sample("acme")
                assert sig_of(sample) == control_signature(0, keys)
                est = await cluster.estimate("acme", "total")
                assert est > 0
                outage = cluster.down_services()[holder]
                assert outage["degraded_reads"] == 3
                assert cluster.metrics().tenants["acme"]["unavailable"]
                cluster.mark_service_up(holder)
                fresh = await cluster.query("acme", "sum")
                assert not fresh.degraded

        run_async(body())

    def test_in_memory_down_worker_has_no_snapshot_to_serve(self):
        async def body():
            async with Cluster(services=2) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                await cluster.ingest_many("acme", tenant_stream(0, 100))
                await cluster.flush()
                holder = cluster.registry.get("acme").service
                cluster.mark_service_down(holder, "test")
                with pytest.raises(RuntimeError):
                    await cluster.query("acme", "sum")

        run_async(body())

    def test_degraded_results_survive_json_round_trip(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                await cluster.ingest_many("acme", tenant_stream(0, 100))
                await cluster.flush()
                holder = cluster.registry.get("acme").service
                cluster.mark_service_down(holder, "test")
                result = await cluster.query("acme", "sum")
                payload = result.to_dict()
                assert payload["degraded"] is True

        run_async(body())


class TestLostDirectoryRecovery:
    def test_recover_rebuilds_a_worker_whose_directory_vanished(
            self, tmp_path):
        async def body():
            streams = {}
            async with Cluster(services=3, dir=tmp_path) as cluster:
                for i in range(6):
                    tenant = f"tenant-{i}"
                    await cluster.create_tenant(tenant, tenant_spec(i))
                    streams[tenant] = tenant_stream(i, 200)
                    await cluster.ingest_many(tenant, streams[tenant])
                await cluster.flush()
                placement = cluster.placement()
            victim = placement["tenant-0"]
            victims = [t for t, s in placement.items() if s == victim]
            survivors = [t for t in streams if t not in victims]
            import shutil
            shutil.rmtree(tmp_path / victim)

            cluster = Cluster.recover(tmp_path)
            async with cluster:
                # The lost worker is rebuilt empty under its old name;
                # its residents are recreated from placement + specs
                # with admission and rejection counters reset.
                assert victim in cluster.services
                for tenant in victims:
                    record = cluster.registry.get(tenant)
                    assert record.service == victim
                    assert record.events_enqueued == 0
                    assert all(
                        v == 0 for v in record.rejected.values()
                    )
                    sample = await cluster.sample(tenant)
                    assert len(sample.keys) == 0
                # Tenants on surviving workers are untouched.
                for tenant in survivors:
                    i = int(tenant.split("-")[1])
                    assert sig_of(await cluster.sample(tenant)) == \
                        control_signature(i, streams[tenant])
                # The rebuilt worker accepts fresh traffic.
                for tenant in victims:
                    i = int(tenant.split("-")[1])
                    await cluster.ingest_many(tenant, streams[tenant])
                await cluster.flush()
                for tenant in victims:
                    i = int(tenant.split("-")[1])
                    assert sig_of(await cluster.sample(tenant)) == \
                        control_signature(i, streams[tenant])

        run_async(body())
