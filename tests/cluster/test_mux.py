"""The tenant multiplexer sampler: grouping, admin rows, portability."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.serve.cluster.mux import (
    ADMIN_KEY,
    TenantMuxSampler,
    compose_rows,
    create_op,
    drop_op,
    install_op,
)
from tests.cluster.common import control_signature, tenant_spec, tenant_stream
from tests.helpers import sample_signature


def _mux(n_tenants: int = 3) -> TenantMuxSampler:
    return TenantMuxSampler(
        {f"t{i}": tenant_spec(i) for i in range(n_tenants)}
    )


def _interleaved(n_tenants: int = 3, n: int = 300) -> list[tuple]:
    """Row-interleaved composite stream over ``n_tenants`` tenant streams."""
    streams = {
        f"t{i}": tenant_stream(i, n).tolist() for i in range(n_tenants)
    }
    rows = []
    for at in range(n):
        for tenant in streams:
            rows.append((tenant, streams[tenant][at]))
    return rows


class TestGrouping:
    def test_batch_matches_scalar_routing(self):
        rows = _interleaved()
        batch, scalar = _mux(), _mux()
        batch.update_many(rows)
        for tenant, key in rows:
            scalar.update((tenant, key))
        for tenant in batch.tenants():
            assert sample_signature(batch.tenant_sampler(tenant)) == \
                sample_signature(scalar.tenant_sampler(tenant))

    @pytest.mark.parametrize("chunk", [1, 7, 1000])
    def test_chunking_invariance_per_tenant(self, chunk):
        rows = _interleaved()
        whole, split = _mux(), _mux()
        whole.update_many(rows)
        for lo in range(0, len(rows), chunk):
            split.update_many(rows[lo:lo + chunk])
        for tenant in whole.tenants():
            assert sample_signature(whole.tenant_sampler(tenant)) == \
                sample_signature(split.tenant_sampler(tenant))

    def test_each_tenant_matches_an_isolated_control(self):
        mux = _mux()
        mux.update_many(_interleaved())
        for i in range(3):
            assert sample_signature(mux.tenant_sampler(f"t{i}")) == \
                control_signature(i, tenant_stream(i, 300))

    def test_optional_columns_slice_per_tenant(self):
        rows = _interleaved(2, 100)
        weights = np.random.default_rng(3).lognormal(0.0, 0.5, len(rows))
        mux = _mux(2)
        mux.update_many(rows, weights)
        controls = {t: repro.SamplerSpec.from_dict(tenant_spec(int(t[1]))).build()
                    for t in ("t0", "t1")}
        for (tenant, key), w in zip(rows, weights):
            controls[tenant].update(key, float(w))
        for tenant, control in controls.items():
            assert sample_signature(mux.tenant_sampler(tenant)) == \
                sample_signature(control)

    def test_applied_counters_track_data_rows_only(self):
        mux = TenantMuxSampler()
        mux.update_many([create_op("a", tenant_spec(0))])
        mux.update_many(compose_rows("a", [1, 2, 3]))
        mux.update((ADMIN_KEY, {"op": "create", "tenant": "b",
                                "spec": tenant_spec(1)}))
        mux.update(("a", 4))
        assert mux.events_applied_for("a") == 4
        assert mux.events_applied_for("b") == 0
        assert mux.applied_counts == {"a": 4, "b": 0}

    def test_tuple_keys_match_scalar_path(self):
        """Equal-length numeric tuple keys coerce to a 2-D array under
        ``np.asarray``; the batch path must still treat each tuple as one
        key (list form), exactly like the scalar ``update`` path."""
        pairs = [(int(k), int(k) + 1) for k in tenant_stream(0, 120)]
        rows = [("t0", pair) for pair in pairs]
        batch, scalar = _mux(1), _mux(1)
        batch.update_many(rows)
        for row in rows:
            scalar.update(row)
        assert batch.events_applied_for("t0") == len(pairs)
        assert sample_signature(batch.tenant_sampler("t0")) == \
            sample_signature(scalar.tenant_sampler("t0"))

    def test_ragged_tuple_keys_match_scalar_path(self):
        """Mixed-arity tuple keys (which ``np.asarray`` refuses outright)
        also fall back to the list form."""
        rows = [("t0", (1, 2)), ("t0", (3, 4, 5)), ("t0", (6,))]
        batch, scalar = _mux(1), _mux(1)
        batch.update_many(rows)
        for row in rows:
            scalar.update(row)
        assert batch.events_applied_for("t0") == 3
        assert sample_signature(batch.tenant_sampler("t0")) == \
            sample_signature(scalar.tenant_sampler("t0"))

    def test_unknown_tenant_rows_raise(self):
        mux = _mux(1)
        with pytest.raises(KeyError, match="unknown tenant"):
            mux.update(("ghost", 1))
        with pytest.raises(KeyError, match="unknown tenant"):
            mux.update_many([("ghost", 1)])


class TestAdminRows:
    def test_create_then_data_in_one_batch(self):
        mux = TenantMuxSampler()
        keys = tenant_stream(0, 200)
        mux.update_many(
            [create_op("t0", tenant_spec(0))] + compose_rows("t0", keys)
        )
        assert sample_signature(mux.tenant_sampler("t0")) == \
            control_signature(0, keys)

    def test_admin_row_orders_against_its_own_tenant(self):
        """Data before a drop applies; data after a (re)create applies to
        the fresh sampler — position in the batch is what counts."""
        keys = tenant_stream(0, 100)
        mux = TenantMuxSampler()
        mux.update_many(
            [create_op("t0", tenant_spec(0))]
            + compose_rows("t0", keys)
            + [drop_op("t0"), create_op("t0", tenant_spec(0))]
            + compose_rows("t0", keys[:10])
        )
        assert sample_signature(mux.tenant_sampler("t0")) == \
            control_signature(0, keys[:10])
        assert mux.events_applied_for("t0") == 10

    def test_install_continues_state_bit_exactly(self):
        keys = tenant_stream(0, 400)
        donor = TenantMuxSampler({"t0": tenant_spec(0)})
        donor.update_many(compose_rows("t0", keys[:250]))
        state = donor.tenant_sampler("t0").to_state()

        receiver = TenantMuxSampler()
        receiver.update_many([
            install_op("t0", state, donor.events_applied_for("t0"))
        ])
        assert receiver.events_applied_for("t0") == 250
        receiver.update_many(compose_rows("t0", keys[250:]))
        assert sample_signature(receiver.tenant_sampler("t0")) == \
            control_signature(0, keys)

    def test_duplicate_create_raises(self):
        mux = _mux(1)
        with pytest.raises(ValueError, match="already exists"):
            mux.update_many([create_op("t0", tenant_spec(0))])

    def test_install_over_existing_copy_replaces_it(self):
        """Install is idempotent: a retried handoff ships the flushed
        source state again, and it must overwrite the stale uncommitted
        copy a failed earlier attempt left on the destination."""
        keys = tenant_stream(0, 200)
        donor = TenantMuxSampler({"t0": tenant_spec(0)})
        donor.update_many(compose_rows("t0", keys))
        op = install_op(
            "t0",
            donor.tenant_sampler("t0").to_state(),
            donor.events_applied_for("t0"),
        )
        receiver = _mux(1)  # already holds a diverged copy of t0
        receiver.update_many(compose_rows("t0", tenant_stream(1, 50)))
        receiver.update_many([op, op])  # and twice is the same as once
        assert receiver.events_applied_for("t0") == 200
        assert sample_signature(receiver.tenant_sampler("t0")) == \
            control_signature(0, keys)

    def test_drop_unknown_and_bad_ops_raise(self):
        mux = TenantMuxSampler()
        with pytest.raises(KeyError, match="unknown tenant"):
            mux.update_many([drop_op("ghost")])
        with pytest.raises(ValueError, match="unknown tenant admin op"):
            mux.update((ADMIN_KEY, {"op": "explode"}))

    def test_reserved_tenant_ids_rejected(self):
        mux = TenantMuxSampler()
        with pytest.raises(ValueError, match="reserved"):
            mux.update_many([create_op("__shadow", tenant_spec(0))])


class TestStateAndReads:
    def test_state_round_trip_is_bit_exact(self):
        mux = _mux()
        mux.update_many(_interleaved())
        revived = repro.sampler_from_state(mux.to_state())
        assert isinstance(revived, TenantMuxSampler)
        assert revived.tenants() == mux.tenants()
        for tenant in mux.tenants():
            assert sample_signature(revived.tenant_sampler(tenant)) == \
                sample_signature(mux.tenant_sampler(tenant))
            assert revived.events_applied_for(tenant) == \
                mux.events_applied_for(tenant)

    def test_sample_concatenates_with_composite_keys(self):
        mux = _mux(2)
        mux.update_many(_interleaved(2, 100))
        sample = mux.sample()
        assert len(sample.keys) > 0
        tenants = {tenant for tenant, _ in sample.keys}
        assert tenants == {"t0", "t1"}
        assert len(sample.weights) == len(sample.keys)

    def test_empty_mux_sample_is_empty(self):
        assert len(TenantMuxSampler().sample().keys) == 0

    def test_estimate_total_sums_and_scopes(self):
        mux = _mux(2)
        mux.update_many(_interleaved(2, 200))
        per_tenant = [
            mux.estimate_total(tenant=t) for t in ("t0", "t1")
        ]
        assert mux.estimate_total() == pytest.approx(sum(per_tenant))
        assert mux.estimate() == pytest.approx(sum(per_tenant))

    def test_spec_accessors(self):
        mux = _mux(1)
        assert mux.tenant_spec("t0").name == "bottom_k"
        assert mux.has_tenant("t0") and not mux.has_tenant("nope")
        with pytest.raises(KeyError):
            mux.tenant_spec("nope")
        with pytest.raises(KeyError):
            mux.events_applied_for("nope")

    def test_not_mergeable(self):
        assert TenantMuxSampler.mergeable is False
        with pytest.raises(ValueError, match="not mergeable"):
            repro.ShardedSampler("tenant_mux", n_shards=2)
