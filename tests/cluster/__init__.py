"""Multi-tenant serving-cluster test battery (tests/cluster/)."""
