"""Consistent-hash ring: determinism, balance, and minimal movement."""

from __future__ import annotations

import collections

import pytest

from repro.serve.cluster import HashRing

NODES = ["svc-0", "svc-1", "svc-2", "svc-3"]
TENANTS = [f"tenant-{i}" for i in range(4000)]


def test_placement_is_deterministic_across_instances():
    a = HashRing(NODES, replicas=64, salt=7)
    b = HashRing(reversed(NODES), replicas=64, salt=7)
    assert [a.node_for(t) for t in TENANTS] == [b.node_for(t) for t in TENANTS]


def test_salt_changes_placement():
    a = HashRing(NODES, salt=0)
    b = HashRing(NODES, salt=1)
    moved = sum(a.node_for(t) != b.node_for(t) for t in TENANTS)
    assert moved > len(TENANTS) // 2


def test_load_split_is_roughly_balanced():
    ring = HashRing(NODES, replicas=256)
    counts = collections.Counter(ring.node_for(t) for t in TENANTS)
    assert set(counts) == set(NODES)
    share = len(TENANTS) / len(NODES)
    for node, count in counts.items():
        # 256 vnodes concentrate shares around 1/n at ~1/sqrt(replicas)
        # relative spread; 2.5x is a loose, non-flaky envelope.
        assert share / 2.5 < count < share * 2.5, (node, count)


def test_adding_a_node_moves_only_its_share():
    before = HashRing(NODES, replicas=128)
    after = before.copy()
    after.add_node("svc-4")
    moved = [t for t in TENANTS if before.node_for(t) != after.node_for(t)]
    # Every moved tenant moves TO the new node, never between old nodes.
    assert all(after.node_for(t) == "svc-4" for t in moved)
    assert 0 < len(moved) < len(TENANTS) / 2


def test_removing_a_node_strands_nothing():
    before = HashRing(NODES, replicas=128)
    after = before.copy()
    after.remove_node("svc-2")
    for tenant in TENANTS[:500]:
        owner = before.node_for(tenant)
        if owner != "svc-2":
            # Survivors keep their tenants: only svc-2's share moves.
            assert after.node_for(tenant) == owner
        else:
            assert after.node_for(tenant) in after.nodes


def test_add_remove_round_trip_restores_placement():
    ring = HashRing(NODES, replicas=64)
    original = [ring.node_for(t) for t in TENANTS[:500]]
    ring.add_node("svc-9")
    ring.remove_node("svc-9")
    assert [ring.node_for(t) for t in TENANTS[:500]] == original


def test_assignments_partition_the_keys():
    ring = HashRing(NODES)
    groups = ring.assignments(TENANTS[:100])
    assert sorted(key for keys in groups.values() for key in keys) == sorted(
        TENANTS[:100]
    )
    for node, keys in groups.items():
        assert all(ring.node_for(key) == node for key in keys)


def test_dict_round_trip():
    ring = HashRing(NODES, replicas=32, salt=5)
    revived = HashRing.from_dict(ring.to_dict())
    assert revived.nodes == ring.nodes
    assert revived.replicas == 32 and revived.salt == 5
    assert [revived.node_for(t) for t in TENANTS[:200]] == [
        ring.node_for(t) for t in TENANTS[:200]
    ]


def test_membership_introspection_and_errors():
    ring = HashRing(["a"])
    assert len(ring) == 1 and "a" in ring
    with pytest.raises(ValueError, match="already on the ring"):
        ring.add_node("a")
    with pytest.raises(ValueError, match="non-empty string"):
        ring.add_node("")
    with pytest.raises(ValueError, match="not on the ring"):
        ring.remove_node("b")
    ring.remove_node("a")
    with pytest.raises(ValueError, match="no nodes"):
        ring.node_for("tenant")
    with pytest.raises(ValueError, match="replicas"):
        HashRing(replicas=0)
