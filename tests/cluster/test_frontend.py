"""The frame protocol front end: verbs, error replies, framing edges."""

from __future__ import annotations

import asyncio
import contextlib
import json
import struct

import pytest

from repro.serve.cluster import (
    Cluster,
    ClusterClient,
    ClusterFrontend,
    FrameError,
    TenantQuota,
)
from repro.serve.cluster.frontend import MAX_FRAME
from tests.cluster.common import (
    control_signature,
    run_async,
    tenant_spec,
    tenant_stream,
)


@contextlib.asynccontextmanager
async def served(n_services: int = 2, **cluster_kwargs):
    async with Cluster(services=n_services, **cluster_kwargs) as cluster:
        async with ClusterFrontend(cluster) as frontend:
            client = await ClusterClient.connect(*frontend.address)
            try:
                yield cluster, client
            finally:
                await client.aclose()


class TestVerbs:
    def test_ingest_estimate_query_sample_round_trip(self):
        async def body():
            async with served() as (cluster, client):
                await client.create_tenant("acme", tenant_spec(0))
                keys = tenant_stream(0, 300)
                reply = await client.ingest_many("acme", keys.tolist())
                assert reply == {"ok": True, "admitted": True, "n": 300}
                await client.admin("flush")

                estimate = await client.estimate("acme", "total")
                assert 0 < estimate["estimate"] < 5 * 300

                query = await client.query("acme", "count", ci=0.95)
                assert query["aggregate"] == "count"
                assert len(query["ci"]) == 2
                assert query["ci"][0] <= query["estimate"] <= query["ci"][1]
                assert query["sample_size"] > 0

                sample = await client.sample("acme")
                assert sample["n"] == len(sample["keys"]) > 0
                assert len(sample["weights"]) == sample["n"]
                # The wire sample is the same retained set the in-process
                # read returns (keys stringify over JSON).
                local = await cluster.sample("acme")
                assert sorted(map(str, sample["keys"])) == \
                    sorted(str(k) for k in local.keys)

        run_async(body())

    def test_wire_state_matches_inprocess_control(self):
        async def body():
            async with served() as (cluster, client):
                await client.create_tenant("acme", tenant_spec(3))
                keys = tenant_stream(3, 400)
                for lo in range(0, 400, 80):
                    await client.ingest_many(
                        "acme", keys[lo:lo + 80].tolist()
                    )
                await client.admin("flush")
                from tests.cluster.common import sig_of
                assert sig_of(await cluster.sample("acme")) == \
                    control_signature(3, keys)

        run_async(body())

    def test_scalar_ingest_blocking_and_quota_paths(self):
        async def body():
            clock = lambda: 0.0  # frozen: the bucket never refills
            async with served(clock=clock) as (cluster, client):
                await client.create_tenant(
                    "tiny", tenant_spec(0),
                    quota=TenantQuota(
                        events_per_sec=100.0, burst=3.0
                    ).to_dict(),
                )
                for key in (1, 2, 3):
                    reply = await client.ingest("tiny", key)
                    assert reply["admitted"]
                assert not (await client.ingest("tiny", 4))["admitted"]
                # The blocking path admits instead of rejecting.
                reply = await client.ingest("tiny", 4, block=True)
                assert reply["admitted"]
                record = cluster.registry.get("tiny")
                assert record.rejected["rate"] == 1
                assert record.events_enqueued == 4

        run_async(body())

    def test_weighted_ingest_carries_columns(self):
        async def body():
            async with served() as (cluster, client):
                await client.create_tenant("w", tenant_spec(0))
                await client.ingest_many(
                    "w", [10, 11, 12], weights=[1.0, 2.0, 3.0]
                )
                await client.admin("flush")
                estimate = await client.estimate("w", "total")
                assert estimate["estimate"] == pytest.approx(6.0)

        run_async(body())

    def test_windowed_query_round_trips_the_wire(self):
        """window=/last=/decay=/now= ride the query verb end-to-end: a
        JSON-list window coerces back to bounds, estimates match the
        in-process answer, and the retention gate surfaces as a clean
        error reply."""
        import numpy as np

        async def body():
            async with served() as (cluster, client):
                await client.create_tenant("tw", {
                    "name": "sliding_window",
                    "params": {"k": 128, "window": 4.0, "rng": 7},
                })
                rng = np.random.default_rng(0)
                times = np.sort(rng.uniform(0.0, 4.0, 800))
                keys = rng.integers(0, 10_000, 800)
                await client.ingest_many(
                    "tw", keys.tolist(), times=times.tolist()
                )
                await client.admin("flush")

                wire = await client.query("tw", "count", last=1.0, ci=0.95)
                local = await cluster.query("tw", "count", last=1.0, ci=0.95)
                assert wire["estimate"] == pytest.approx(local.estimate)
                assert wire["ci"] == pytest.approx(list(local.ci))

                windowed = await client.query(
                    "tw", "sum", window=[1.0, 2.0]
                )
                local_win = await cluster.query(
                    "tw", "sum", window=(1.0, 2.0)
                )
                assert windowed["estimate"] == pytest.approx(
                    local_win.estimate
                )

                # decay= and an explicit advancing now= over the wire.
                await client.create_tenant("td", {
                    "name": "time_decay",
                    "params": {"k": 128, "decay_rate": 0.5, "rng": 3},
                })
                await client.ingest_many(
                    "td", keys.tolist(), times=times.tolist()
                )
                await client.admin("flush")
                at4 = await client.query("td", "sum", decay=0.5, now=4.0)
                at6 = await client.query("td", "sum", decay=0.5, now=6.0)
                assert at6["estimate"] == pytest.approx(
                    at4["estimate"] * np.exp(-0.5 * 2.0)
                )

                # The retention gate comes back as an error reply, not a
                # hung connection.
                with pytest.raises(Exception, match="retains only"):
                    await client.query("tw", "sum", window=[-5.0, 0.5])

        run_async(body())

    def test_admin_lifecycle_and_pool_ops(self):
        async def body():
            async with served() as (cluster, client):
                await client.create_tenant("a", tenant_spec(0))
                await client.create_tenant("b", tenant_spec(1))
                assert (await client.admin("tenants"))["tenants"] == ["a", "b"]

                described = await client.admin(
                    "describe_tenant", tenant="a"
                )
                assert described["description"]["spec"]["name"] == "bottom_k"

                metrics = (await client.admin("metrics"))["metrics"]
                assert set(metrics["tenants"]) == {"a", "b"}
                assert set(metrics["services"]) == set(cluster.services)

                grown = await client.admin("add_service")
                assert grown["service"] == "svc-2"
                assert len(grown["services"]) == 3

                moved = (await client.admin("rebalance"))["moved"]
                assert moved == []  # add_service already converged

                shrunk = await client.admin(
                    "remove_service", name="svc-2"
                )
                assert "svc-2" not in shrunk["services"]

                await client.admin("drop_tenant", tenant="b")
                assert (await client.admin("tenants"))["tenants"] == ["a"]

        run_async(body())

    def test_pipelined_requests_answer_in_order(self):
        async def body():
            async with served() as (cluster, client):
                await client.create_tenant("p", tenant_spec(0))
                from repro.serve.cluster.frontend import (
                    read_frame,
                    write_frame,
                )
                for key in range(5):
                    write_frame(client._writer, {
                        "verb": "ingest", "tenant": "p", "key": key,
                        "block": True,
                    })
                await client._writer.drain()
                for _ in range(5):
                    reply = await read_frame(client._reader)
                    assert reply == {"ok": True, "admitted": True}

        run_async(body())


class TestErrors:
    def test_application_errors_become_error_replies(self):
        async def body():
            async with served() as (cluster, client):
                with pytest.raises(RuntimeError, match="unknown tenant"):
                    await client.estimate("ghost")
                with pytest.raises(RuntimeError, match="ValueError"):
                    await client.admin("explode")
                with pytest.raises(RuntimeError, match="unknown verb"):
                    await client.call({"verb": "nope"})
                with pytest.raises(RuntimeError, match="unknown verb"):
                    await client.call({})
                # Handler internals are not reachable as verbs.
                with pytest.raises(RuntimeError, match="unknown verb"):
                    await client.call({"verb": "_dispatch"})
                # The connection survives every one of those.
                await client.create_tenant("ok", tenant_spec(0))
                assert (await client.admin("tenants"))["tenants"] == ["ok"]

        run_async(body())

    def test_bad_json_frame_gets_error_reply_then_close(self):
        async def body():
            async with Cluster(services=1) as cluster:
                async with ClusterFrontend(cluster) as frontend:
                    reader, writer = await asyncio.open_connection(
                        *frontend.address
                    )
                    body_bytes = b"this is not json"
                    writer.write(
                        struct.pack(">I", len(body_bytes)) + body_bytes
                    )
                    await writer.drain()
                    header = await reader.readexactly(4)
                    (length,) = struct.unpack(">I", header)
                    reply = json.loads(await reader.readexactly(length))
                    assert reply["ok"] is False
                    assert reply["error_type"] == "FrameError"
                    assert await reader.read() == b""  # server closed
                    writer.close()

        run_async(body())

    def test_oversized_frame_is_refused(self):
        async def body():
            async with Cluster(services=1) as cluster:
                async with ClusterFrontend(cluster) as frontend:
                    reader, writer = await asyncio.open_connection(
                        *frontend.address
                    )
                    writer.write(struct.pack(">I", MAX_FRAME + 1))
                    await writer.drain()
                    header = await reader.readexactly(4)
                    (length,) = struct.unpack(">I", header)
                    reply = json.loads(await reader.readexactly(length))
                    assert reply["ok"] is False
                    assert "MAX_FRAME" in reply["error"]
                    writer.close()

        run_async(body())

    def test_oversized_reply_answers_error_frame(self, monkeypatch):
        """A reply exceeding MAX_FRAME (e.g. a huge sample) must come
        back as an error frame on a live connection, not escape the
        handler and kill the connection with no reply."""
        import repro.serve.cluster.frontend as frontend_mod

        original = frontend_mod.MAX_FRAME

        async def body():
            async with served() as (cluster, client):
                await client.create_tenant("big", tenant_spec(0))
                await client.ingest_many(
                    "big", tenant_stream(0, 300).tolist()
                )
                await client.admin("flush")
                monkeypatch.setattr(frontend_mod, "MAX_FRAME", 256)
                with pytest.raises(RuntimeError, match="FrameError"):
                    await client.sample("big")
                # The connection survives and keeps serving.
                monkeypatch.setattr(frontend_mod, "MAX_FRAME", original)
                assert (await client.admin("tenants"))["tenants"] == ["big"]

        run_async(body())

    def test_non_object_frame_is_refused(self):
        async def body():
            async with Cluster(services=1) as cluster:
                async with ClusterFrontend(cluster) as frontend:
                    reader, writer = await asyncio.open_connection(
                        *frontend.address
                    )
                    body_bytes = json.dumps([1, 2, 3]).encode()
                    writer.write(
                        struct.pack(">I", len(body_bytes)) + body_bytes
                    )
                    await writer.drain()
                    header = await reader.readexactly(4)
                    (length,) = struct.unpack(">I", header)
                    reply = json.loads(await reader.readexactly(length))
                    assert reply["ok"] is False
                    assert "JSON object" in reply["error"]
                    writer.close()

        run_async(body())

    def test_client_surfaces_a_dead_server(self):
        async def body():
            async with Cluster(services=1) as cluster:
                frontend = ClusterFrontend(cluster)
                await frontend.start()
                client = await ClusterClient.connect(*frontend.address)
                await frontend.stop()
                with pytest.raises(RuntimeError, match="not started"):
                    frontend.address
                await client.aclose()

        run_async(body())

    def test_lifecycle_guards(self):
        async def body():
            async with Cluster(services=1) as cluster:
                frontend = ClusterFrontend(cluster)
                with pytest.raises(RuntimeError, match="not started"):
                    frontend.address
                await frontend.start()
                with pytest.raises(RuntimeError, match="already started"):
                    await frontend.start()
                await frontend.stop()
                await frontend.stop()  # idempotent

        run_async(body())
