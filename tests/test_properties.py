"""Property-based tests (hypothesis) for core invariants.

These encode the paper's structural guarantees as properties over random
inputs: recalibration never raises thresholds, budget samples always fit,
streaming samplers agree with their offline rules, merges form a
commutative idempotent monoid, and offline rules are permutation-invariant.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.composition import MaxComposition, MinComposition
from repro.core.hashing import hash_array_to_unit, hash_to_unit
from repro.core.recalibration import recalibrate
from repro.core.thresholds import BottomK, BudgetPrefix, SequentialBottomK
from repro.samplers.budget import BudgetSampler
from repro.samplers.distinct import AdaptiveDistinctSketch
from repro.baselines.kmv import KMVSketch
from repro.baselines.theta import ThetaSketch

priorities_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=24),
    elements=st.floats(
        min_value=1e-6, max_value=1.0, exclude_max=True, allow_nan=False
    ),
    unique=True,
)

sizes_lists = st.lists(
    st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
    min_size=1,
    max_size=24,
)

key_sets = st.sets(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=300)


class TestRecalibrationProperties:
    @given(priorities_arrays, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_recalibration_never_raises_thresholds(self, priorities, k):
        for rule in (BottomK(k), SequentialBottomK(k)):
            original = rule.thresholds(priorities)
            sampled = np.flatnonzero(priorities < original)
            if sampled.size == 0:
                continue
            recal = recalibrate(rule, priorities, sampled[:3].tolist())
            assert np.all(recal <= original + 1e-12)

    @given(priorities_arrays, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_bottomk_recalibration_fixes_sampled(self, priorities, k):
        rule = BottomK(k)
        original = rule.thresholds(priorities)
        sampled = np.flatnonzero(priorities < original)
        for i in sampled.tolist():
            recal = recalibrate(rule, priorities, [i])
            assert recal[i] == pytest.approx(original[i])


class TestRuleProperties:
    @given(priorities_arrays, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_bottomk_permutation_invariant(self, priorities, k):
        rule = BottomK(k)
        perm = np.random.default_rng(0).permutation(priorities.size)
        t_orig = rule.thresholds(priorities)[0]
        t_perm = rule.thresholds(priorities[perm])[0]
        assert t_orig == pytest.approx(t_perm)

    @given(priorities_arrays, sizes_lists, st.floats(min_value=1.0, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_budget_prefix_fits(self, priorities, sizes, budget):
        n = min(priorities.size, len(sizes))
        if n == 0:
            return
        pr, sz = priorities[:n], np.asarray(sizes[:n])
        rule = BudgetPrefix(sz, budget)
        idx = rule.sample(pr)
        assert sz[idx].sum() <= budget + 1e-9

    @given(priorities_arrays, st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_min_composition_bounded_by_components(self, priorities, k):
        a, b = BottomK(k), SequentialBottomK(k)
        combo = MinComposition([a, b]).thresholds(priorities)
        assert np.all(combo <= a.thresholds(priorities) + 1e-15)
        assert np.all(combo <= b.thresholds(priorities) + 1e-15)

    @given(priorities_arrays, st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_max_composition_bounded_below(self, priorities, k):
        a, b = BottomK(k), SequentialBottomK(k)
        combo = MaxComposition([a, b]).thresholds(priorities)
        assert np.all(combo >= a.thresholds(priorities) - 1e-15)


class TestBudgetSamplerProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.floats(min_value=0.1, max_value=30.0, allow_nan=False),
            ),
            min_size=1,
            max_size=120,
        ),
        st.floats(min_value=5.0, max_value=100.0),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_streaming_budget_never_violated(self, items, budget, seed):
        sampler = BudgetSampler(budget, rng=np.random.default_rng(seed))
        for i, (key, size) in enumerate(items):
            sampler.update((key, i), size=size)
            assert sampler.used <= budget + 1e-9
        sample = sampler.sample()
        assert np.all(sample.priorities < sample.thresholds)


class TestSketchMonoid:
    @given(key_sets, key_sets, st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_adaptive_merge_commutative(self, keys_a, keys_b, salt):
        a = AdaptiveDistinctSketch(16, salt=salt)
        a.update_many(keys_a)
        b = AdaptiveDistinctSketch(16, salt=salt)
        b.update_many(keys_b)
        ab = a.merge(b).estimate_distinct()
        ba = b.merge(a).estimate_distinct()
        assert ab == pytest.approx(ba)

    @given(key_sets, key_sets, key_sets, st.integers(min_value=0, max_value=20))
    @settings(max_examples=25, deadline=None)
    def test_theta_union_associative_estimate(self, ka, kb, kc, salt):
        def sk(keys):
            s = ThetaSketch(16, salt=salt)
            s.update_many(keys)
            return s

        left = sk(ka).union(sk(kb)).union(sk(kc)).estimate()
        right = sk(ka).union(sk(kb).union(sk(kc))).estimate()
        assert left == pytest.approx(right)

    @given(key_sets, st.integers(min_value=0, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_kmv_union_idempotent(self, keys, salt):
        a = KMVSketch(16, salt=salt)
        a.update_many(keys)
        b = KMVSketch(16, salt=salt)
        b.update_many(keys)
        assert a.union(b).estimate() == pytest.approx(a.estimate())

    @given(key_sets, key_sets, st.integers(min_value=0, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_kmv_union_equals_concatenation(self, keys_a, keys_b, salt):
        a = KMVSketch(16, salt=salt)
        a.update_many(keys_a)
        b = KMVSketch(16, salt=salt)
        b.update_many(keys_b)
        direct = KMVSketch(16, salt=salt)
        direct.update_many(keys_a | keys_b)
        assert a.union(b).estimate() == pytest.approx(direct.estimate())


class TestHashingProperties:
    @given(st.integers(min_value=-(2**62), max_value=2**62), st.integers(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_hash_in_open_unit_interval(self, key, salt):
        h = hash_to_unit(key, salt)
        assert 0.0 < h < 1.0

    @given(
        hnp.arrays(
            dtype=np.int64,
            shape=st.integers(min_value=1, max_value=100),
            elements=st.integers(min_value=0, max_value=2**31),
            unique=True,
        ),
        st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_vector_scalar_consistency(self, keys, salt):
        vec = hash_array_to_unit(keys, salt)
        for i in range(min(3, keys.size)):
            assert vec[i] == pytest.approx(hash_to_unit(int(keys[i]), salt))
