"""Tests for Space-Saving variants (repro.baselines.space_saving)."""

import numpy as np
import pytest

from repro.baselines.space_saving import (
    SpaceSavingSketch,
    UnbiasedSpaceSavingSketch,
)
from repro.workloads.zipf import zipf_stream

from tests.helpers import assert_within_se


class TestSpaceSaving:
    def test_capacity_respected(self):
        s = SpaceSavingSketch(10)
        for i in range(1000):
            s.update(i)
        assert len(s) == 10

    def test_estimates_are_upper_bounds(self):
        s = SpaceSavingSketch(32)
        stream = zipf_stream(20_000, 500, 1.2, rng=0)
        ids, counts = np.unique(stream, return_counts=True)
        truth = dict(zip(ids.tolist(), counts.tolist()))
        for item in stream.tolist():
            s.update(item)
        for key, est in s.top(20):
            assert est >= truth[key]
            assert s.guaranteed(key) <= truth[key]

    def test_error_bound(self):
        # estimate - truth <= n / m for every tracked key.
        m = 40
        s = SpaceSavingSketch(m)
        stream = zipf_stream(15_000, 800, 1.1, rng=1)
        ids, counts = np.unique(stream, return_counts=True)
        truth = dict(zip(ids.tolist(), counts.tolist()))
        for item in stream.tolist():
            s.update(item)
        bound = s.items_seen / m
        for key, est in s.top(40):
            assert est - truth[key] <= bound + 1

    def test_exact_while_underfull(self):
        s = SpaceSavingSketch(100)
        for _ in range(7):
            s.update("x")
        assert s.estimate_count("x") == 7
        assert s.guaranteed("x") == 7

    def test_heavy_hitters_recovered(self):
        stream = zipf_stream(40_000, 1000, 1.5, rng=2)
        s = SpaceSavingSketch(64)
        for item in stream.tolist():
            s.update(item)
        ids, counts = np.unique(stream, return_counts=True)
        truth = set(ids[np.argsort(counts)[::-1][:5]].tolist())
        assert len({k for k, _ in s.top(5)} & truth) >= 4


class TestUnbiasedSpaceSaving:
    def test_capacity_respected(self, rng):
        s = UnbiasedSpaceSavingSketch(10, rng=rng)
        for i in range(500):
            s.update(i)
        assert len(s) == 10

    def test_total_preserved(self, rng):
        # The counter total always equals the stream length exactly.
        s = UnbiasedSpaceSavingSketch(16, rng=rng)
        stream = zipf_stream(5000, 300, 1.2, rng=3)
        for item in stream.tolist():
            s.update(item)
        assert s.estimate_subset_sum(lambda key: True) == 5000

    def test_subset_sum_unbiased(self):
        """Ting (2018)'s defining property, the reason it's 'unbiased'."""
        stream = zipf_stream(4000, 200, 1.05, rng=4)
        subset = set(range(0, 200, 2))
        truth = float(np.sum(np.isin(stream, list(subset))))
        estimates = []
        for seed in range(400):
            s = UnbiasedSpaceSavingSketch(24, rng=np.random.default_rng(seed))
            for item in stream.tolist():
                s.update(item)
            estimates.append(s.estimate_subset_sum(lambda key: key in subset))
        assert_within_se(estimates, truth)

    def test_top_identification(self, rng):
        stream = zipf_stream(30_000, 500, 1.5, rng=5)
        s = UnbiasedSpaceSavingSketch(64, rng=rng)
        for item in stream.tolist():
            s.update(item)
        ids, counts = np.unique(stream, return_counts=True)
        truth = set(ids[np.argsort(counts)[::-1][:5]].tolist())
        assert len({k for k, _ in s.top(5)} & truth) >= 4
