"""Tests for the FrequentItems baseline (repro.baselines.frequent_items)."""

import numpy as np
import pytest

from repro.baselines.frequent_items import FrequentItemsSketch
from repro.workloads.zipf import zipf_stream


class TestMechanics:
    def test_exact_without_purges(self):
        s = FrequentItemsSketch(64)
        for i in range(10):
            for _ in range(i + 1):
                s.update(i)
        for i in range(10):
            assert s.estimate_count(i) == i + 1
            assert s.lower_bound(i) == i + 1
        assert s.maximum_error == 0

    def test_nominal_size(self):
        assert FrequentItemsSketch(128).nominal_size == 96

    def test_purge_caps_table(self):
        s = FrequentItemsSketch(16)
        for i in range(1000):
            s.update(i)  # all distinct: worst case
        assert len(s) <= s.nominal_size + 1

    def test_untracked_estimate_zero(self):
        s = FrequentItemsSketch(16)
        s.update("a")
        assert s.estimate_count("zzz") == 0

    def test_update_validation(self):
        with pytest.raises(ValueError):
            FrequentItemsSketch(16).update("a", count=0)
        with pytest.raises(ValueError):
            FrequentItemsSketch(1)

    def test_weighted_updates(self):
        s = FrequentItemsSketch(32)
        s.update("a", count=10)
        s.update("a", count=5)
        assert s.estimate_count("a") == 15


class TestGuarantees:
    def test_misra_gries_error_bound(self):
        """offset <= n / nominal_size — the classical MG guarantee."""
        s = FrequentItemsSketch(32)
        stream = zipf_stream(20_000, 5000, 1.05, rng=0)
        for item in stream.tolist():
            s.update(item)
        assert s.maximum_error <= s.items_seen / s.nominal_size * 1.01

    def test_bounds_bracket_truth(self):
        s = FrequentItemsSketch(64)
        stream = zipf_stream(30_000, 2000, 1.1, rng=1)
        ids, counts = np.unique(stream, return_counts=True)
        truth = dict(zip(ids.tolist(), counts.tolist()))
        for item in stream.tolist():
            s.update(item)
        for key in list(s.counts)[:50]:
            assert s.lower_bound(key) <= truth[key] <= s.estimate_count(key)

    def test_top_heavy_hitters_found(self):
        stream = zipf_stream(50_000, 1000, 1.5, rng=2)
        s = FrequentItemsSketch(128)
        for item in stream.tolist():
            s.update(item)
        ids, counts = np.unique(stream, return_counts=True)
        truth = set(ids[np.argsort(counts)[::-1][:5]].tolist())
        returned = {k for k, _ in s.top(5)}
        assert len(returned & truth) >= 4
