"""Tests for Theta and KMV distinct-count baselines."""

import numpy as np
import pytest

from repro.baselines.kmv import KMVSketch, kmv_union
from repro.baselines.theta import ThetaSketch, theta_union
from repro.core.hashing import hash_array_to_unit

from tests.helpers import assert_within_se


class TestThetaSketch:
    def test_exact_while_underfull(self):
        s = ThetaSketch(100, salt=0)
        s.update_many(range(40))
        assert s.estimate() == pytest.approx(40.0)
        assert s.theta == 1.0

    def test_duplicates_idempotent(self):
        s = ThetaSketch(10, salt=0)
        for _ in range(3):
            s.update_many(range(5))
        assert s.estimate() == pytest.approx(5.0)

    def test_estimate_unbiased(self):
        n, k = 800, 64
        estimates = []
        for salt in range(300):
            s = ThetaSketch(k, salt=salt)
            s.update_many(range(n))
            estimates.append(s.estimate())
        assert_within_se(estimates, float(n))

    def test_union_min_theta(self):
        a = ThetaSketch(20, salt=1)
        a.update_many(range(1000))
        b = ThetaSketch(20, salt=1)
        b.update_many(range(500, 2500))
        u = a.union(b)
        assert u.theta <= min(a.theta, b.theta)
        assert len(u) <= 21

    def test_union_estimate_accuracy(self):
        truth = 3000.0
        estimates = []
        for salt in range(200):
            a = ThetaSketch(64, salt=salt)
            a.update_many(range(1000))
            b = ThetaSketch(64, salt=salt)
            b.update_many(range(500, 2500))  # union = 0..2499 plus 2500..?  n=2500
            estimates.append(a.union(b).estimate())
        assert np.mean(estimates) == pytest.approx(2500.0, rel=0.05)

    def test_union_salt_mismatch(self):
        with pytest.raises(ValueError):
            ThetaSketch(5, salt=0).union(ThetaSketch(5, salt=1))

    def test_theta_union_helper(self):
        sketches = []
        for block in range(3):
            s = ThetaSketch(32, salt=2)
            s.update_many(range(block * 300, (block + 1) * 300))
            sketches.append(s)
        assert theta_union(sketches).estimate() == pytest.approx(900, rel=0.4)

    def test_from_hashes_matches_streaming(self):
        n, k, salt = 500, 40, 7
        streamed = ThetaSketch(k, salt=salt)
        streamed.update_many(range(n))
        built = ThetaSketch.from_hashes(
            hash_array_to_unit(np.arange(n), salt), k, salt
        )
        assert built.estimate() == pytest.approx(streamed.estimate())
        assert built.theta == pytest.approx(streamed.theta)


class TestKMVSketch:
    def test_exact_while_underfull(self):
        s = KMVSketch(50, salt=0)
        s.update_many(range(20))
        assert s.is_exact
        assert s.estimate() == 20.0

    def test_estimate_unbiased(self):
        n, k = 1000, 50
        estimates = []
        for salt in range(300):
            s = KMVSketch(k, salt=salt)
            s.update_many(range(n))
            estimates.append(s.estimate())
        assert_within_se(estimates, float(n))

    def test_union_equals_union_stream(self):
        k, salt = 30, 3
        a = KMVSketch(k, salt=salt)
        a.update_many(range(400))
        b = KMVSketch(k, salt=salt)
        b.update_many(range(200, 900))
        direct = KMVSketch(k, salt=salt)
        direct.update_many(range(900))
        u = a.union(b)
        assert u.estimate() == pytest.approx(direct.estimate())
        assert u.kth_minimum == pytest.approx(direct.kth_minimum)

    def test_union_of_exact_sketches(self):
        a = KMVSketch(50, salt=4)
        a.update_many(range(10))
        b = KMVSketch(50, salt=4)
        b.update_many(range(5, 20))
        u = a.union(b)
        assert u.estimate() == pytest.approx(20.0)

    def test_kmv_union_helper(self):
        parts = []
        for block in range(4):
            s = KMVSketch(40, salt=5)
            s.update_many(range(block * 200, (block + 1) * 200))
            parts.append(s)
        assert kmv_union(parts).estimate() == pytest.approx(800, rel=0.4)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KMVSketch(1)

    def test_from_hashes_matches_streaming(self):
        n, k, salt = 600, 40, 9
        streamed = KMVSketch(k, salt=salt)
        streamed.update_many(range(n))
        built = KMVSketch.from_hashes(
            hash_array_to_unit(np.arange(n), salt), k, salt
        )
        assert built.estimate() == pytest.approx(streamed.estimate())
        assert built.is_exact == streamed.is_exact


class TestMixedSizeMerges:
    def test_kmv_mixed_k_merge_uses_min_saturated_k(self):
        # Regression: a saturated k=4 sketch merged with a larger exact
        # sketch must not be declared exact (it once returned ~6 for a
        # 102-key union) and must keep the small sketch's nominal size.
        a = KMVSketch(4, salt=0)
        for i in range(100):
            a.update(i)
        b = KMVSketch(16, salt=0)
        b.update(1000)
        b.update(1001)
        a.merge(b)
        assert not a.is_exact
        assert a.k == 4
        assert a.estimate() > 40.0

    def test_kmv_merge_symmetric_in_k(self):
        def build(k, lo, hi):
            s = KMVSketch(k, salt=3)
            for i in range(lo, hi):
                s.update(i)
            return s

        left = build(4, 0, 100).merge(build(16, 1000, 1002))
        right = build(16, 1000, 1002).merge(build(4, 0, 100))
        assert left.estimate() == pytest.approx(right.estimate())

    def test_kmv_merge_of_exact_sketches_stays_exact(self):
        a = KMVSketch(8, salt=0)
        b = KMVSketch(16, salt=0)
        for i in range(3):
            a.update(i)
        for i in range(10, 14):
            b.update(i)
        assert a.merge(b).estimate() == 7.0

    def test_theta_mixed_k_merge_estimate_sane(self):
        a = ThetaSketch(8, salt=0)
        for i in range(500):
            a.update(i)
        b = ThetaSketch(64, salt=0)
        for i in range(1000, 1003):
            b.update(i)
        merged = a | b
        assert merged.estimate() == pytest.approx(503, rel=0.8)
