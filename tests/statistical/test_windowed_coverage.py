"""Monte-Carlo CI coverage for windowed & decayed queries.

``tests/query/test_ci_coverage.py`` proves the interval story for plain
subset-sum queries; this battery extends it to the time dimensions: the
nominal-95% CIs that ``Query(..., last=W)`` / ``Query(..., decay=rate)``
return must cover the *exact rescan* ground truth — the answer a full
scan of the raw stream restricted to the same window (or discounted by
the same decay) would give — at >= 90% empirically.

Cases: windowed sum/count/mean on ``sliding_window`` (the acceptance
check: ``Query(last=W)`` matches exact rescan within CI tolerance),
decayed sum/count/mean plus a pure-window sum on ``time_decay`` (the
samplers whose probability-1 refusal this PR replaced with genuine
decayed inclusion probabilities), and a windowed sum on ``bottom_k`` fed
``times=``.

Method: ``TRIALS`` seeded replications, fresh sampler RNG per trial over
one fixed timed stream; coverage is asserted against a 90% floor minus
binomial slack so the check scales soundly with ``REPRO_STAT_TRIALS``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable

import numpy as np
import pytest

from repro import make_sampler

pytestmark = pytest.mark.statistical

TRIALS = int(os.environ.get("REPRO_STAT_TRIALS", "80"))
FLOOR = 0.90
Z = 4.0

N = 2000
T_MAX = 10.0
DECAY = 0.3


def _build_stream() -> dict:
    rng = np.random.default_rng(42)
    times = np.sort(rng.uniform(0.0, T_MAX, N))
    values = np.random.default_rng(43).lognormal(0.0, 0.6, N)
    keys = np.arange(N, dtype=np.int64)
    return {"keys": keys, "values": values, "times": times}


STREAM = _build_stream()


def _rescan_window(agg: str, lo: float, hi: float) -> float:
    """Exact full-scan answer over the raw stream, restricted to (lo, hi]."""
    t, v = STREAM["times"], STREAM["values"]
    mask = (t > lo) & (t <= hi)
    if agg == "sum":
        return float(v[mask].sum())
    if agg == "count":
        return float(mask.sum())
    return float(v[mask].mean())


def _rescan_decayed(agg: str) -> float:
    """Exact decay-discounted answer at ``now`` = the last arrival."""
    t, v = STREAM["times"], STREAM["values"]
    d = np.exp(-DECAY * (t[-1] - t))
    if agg == "sum":
        return float((v * d).sum())
    if agg == "count":
        return float(d.sum())
    return float((v * d).sum() / d.sum())


@dataclass
class WindowedCase:
    label: str
    build: Callable[[int], object]
    query_kw: dict
    truth: float


def _sliding(seed: int):
    s = make_sampler("sliding_window", k=300, window=3.0, rng=seed)
    s.update_many(STREAM["keys"], values=STREAM["values"],
                  times=STREAM["times"])
    return s


def _decayed(seed: int):
    s = make_sampler("time_decay", k=300, decay_rate=DECAY, rng=seed)
    s.update_many(STREAM["keys"], values=STREAM["values"],
                  times=STREAM["times"])
    return s


def _bottomk(seed: int):
    s = make_sampler("bottom_k", k=300, rng=seed)
    s.update_many(STREAM["keys"], values=STREAM["values"],
                  times=STREAM["times"])
    return s


_LAST = 2.0
_T_END = float(STREAM["times"][-1])

CASES = [
    # The acceptance check: Query(last=W) on sliding_window vs rescan.
    WindowedCase(
        f"sliding_window/{agg}/last",
        _sliding,
        {"aggregate": agg, "last": _LAST, "ci": 0.95},
        _rescan_window(agg, _T_END - _LAST, _T_END),
    )
    for agg in ("sum", "count", "mean")
] + [
    # Genuine decayed probabilities: decay= answers carry honest CIs.
    WindowedCase(
        f"time_decay/{agg}/decay",
        _decayed,
        {"aggregate": agg, "decay": DECAY, "ci": 0.95},
        _rescan_decayed(agg),
    )
    for agg in ("sum", "count", "mean")
] + [
    # Pure window on the decay sketch (it retains all history).
    WindowedCase(
        "time_decay/sum/window",
        _decayed,
        {"aggregate": "sum", "window": (6.0, 9.0), "ci": 0.95},
        _rescan_window("sum", 6.0, 9.0),
    ),
    # Plain bottom-k fed times= answers windowed sums too.
    WindowedCase(
        "bottom_k/sum/window",
        _bottomk,
        {"aggregate": "sum", "window": (4.0, 8.0), "ci": 0.95},
        _rescan_window("sum", 4.0, 8.0),
    ),
]


@pytest.mark.parametrize("case", CASES, ids=[c.label for c in CASES])
def test_windowed_ci_coverage(case):
    hits = 0
    for trial in range(TRIALS):
        sampler = case.build(10_000 + trial)
        result = sampler.query(**case.query_kw)
        assert result.ci is not None, case.label
        lo, hi = result.ci
        assert math.isfinite(lo) and math.isfinite(hi), case.label
        if lo <= case.truth <= hi:
            hits += 1
    coverage = hits / TRIALS
    slack = Z * math.sqrt(FLOOR * (1.0 - FLOOR) / TRIALS)
    assert coverage >= FLOOR - slack, (
        f"{case.label}: empirical coverage {coverage:.3f} below "
        f"{FLOOR} - {slack:.3f} over {TRIALS} trials"
    )
