"""Monte-Carlo statistical-correctness harness.

The contract suite proves *mechanical* equivalences (scalar == batch,
resume == straight-through); this harness proves the *statistical* claims:
``estimate()`` is unbiased for the subset-sum and distinct-count style
kinds each sampler advertises, against exact ground truth on Zipf and
uniform workloads — and stays unbiased when the sampler runs inside a
4-shard :class:`ShardedSampler` (the paper's merge/composition claim).

Method: ``TRIALS`` seeded replications per case (fresh RNG stream or hash
salt per trial), comparing the Monte-Carlo mean against ground truth with
a CLT-derived tolerance::

    |mean - truth| <= Z * std/sqrt(TRIALS) + REL_FLOOR * |truth|

``Z = 4.5`` puts the per-assertion false-failure probability below 1e-5;
the small relative floor absorbs quantization for near-deterministic
estimators (e.g. VarOpt's total, which is exact by construction).  Set
``REPRO_STAT_TRIALS`` to rescale (CI uses a reduced count; local runs can
raise it for more power).

Coverage is enforced: every registered sampler either appears in a case
row (possibly via its sharded wrapper) or in ``EXCLUDED`` with the reason
its estimator is out of scope (by-design-biased counters, offline
constructs).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import pytest

import repro
from repro import ShardedSampler, make_sampler
from repro.workloads.zipf import zipf_stream

pytestmark = pytest.mark.statistical

TRIALS = int(os.environ.get("REPRO_STAT_TRIALS", "80"))
Z = 4.5
REL_FLOOR = 0.005

N = 1200
UNIVERSE = 400


# ----------------------------------------------------------------------
# Workloads (fixed populations; randomness varies per trial, not per run)
# ----------------------------------------------------------------------
def _build_workload(kind: str) -> dict:
    rng = np.random.default_rng(42)
    if kind == "zipf":
        keys = np.asarray(zipf_stream(N, UNIVERSE, 1.5, rng=rng), dtype=np.int64)
    else:
        keys = rng.integers(0, UNIVERSE, N).astype(np.int64)
    per_key = np.random.default_rng(43).lognormal(0.0, 0.6, UNIVERSE)
    return {
        "keys": keys,
        "weights": per_key[keys],  # per-key weights (distinct-sketch safe)
        "per_key": per_key,
        "unique": np.unique(keys),
        "times": np.cumsum(np.random.default_rng(44).exponential(1e-3, N)),
        "sizes": np.ones(N),
    }


WORKLOADS = {kind: _build_workload(kind) for kind in ("zipf", "uniform")}


def _subset(key) -> bool:
    return int(key) % 3 == 0


# Ground-truth helpers ---------------------------------------------------
def _truth_total(w):  # sum of weights over occurrences
    return float(w["weights"].sum())


def _truth_distinct(w):  # number of distinct keys
    return float(w["unique"].size)


def _truth_subset_occurrences(w):  # stream occurrences in the subset
    return float(sum(1 for key in w["keys"] if _subset(key)))


def _truth_subset_key_weight(w):  # per-key weights over distinct subset keys
    subset = [key for key in w["unique"] if _subset(key)]
    return float(w["per_key"][subset].sum())


def _truth_window_count(w):
    times = w["times"]
    return float(((times > times[-1] - 1.0)).sum())


def _truth_decayed_total(w):
    times = w["times"]
    return float((w["weights"] * np.exp(-(times[-1] - times))).sum())


def _truth_distinct_key_count(w):
    return float(w["unique"].size)


def _truth_per_key_total(w):
    return float(w["per_key"][w["unique"]].sum())


def _truth_g0_distinct(w):
    return float(len({int(key) for key in w["unique"] if int(key) % 7 == 0}))


# ----------------------------------------------------------------------
# Case table
# ----------------------------------------------------------------------
@dataclass
class StatCase:
    """One (sampler config, estimator kind, feed) unbiasedness check."""

    label: str
    name: str
    kind: str
    build: Callable[[int], object]          # trial -> sampler
    feed: Callable[[object, dict], None]    # (sampler, workload) -> None
    estimate: Callable[[object], float]
    truth: Callable[[dict], float]
    workloads: tuple = ("zipf", "uniform")


def _feed_weighted(s, w):
    s.update_many(w["keys"], w["weights"])


def _feed_unweighted(s, w):
    s.update_many(w["keys"])


def _feed_unique_unweighted(s, w):
    # Plain bottom-k does not deduplicate occurrences (that is the
    # weighted/adaptive distinct sketches' job), so its KMV-style distinct
    # estimator applies to distinct-key streams.
    s.update_many(w["unique"])


def _feed_sized(s, w):
    s.update_many(w["keys"], w["weights"], sizes=w["sizes"])


def _feed_timed(s, w):
    s.update_many(w["keys"], w["weights"], times=w["times"])


def _feed_window(s, w):
    s.update_many(w["keys"], times=w["times"])


def _feed_grouped(s, w):
    s.update_many(w["keys"], groups=[f"g{int(k) % 7}" for k in w["keys"]])


def _feed_stratified(s, w):
    s.update_many(
        w["keys"], strata=[(int(k) % 3, int(k) % 5) for k in w["keys"]]
    )


def _feed_unique_multiweight(s, w):
    # Multi-objective sketches expect one offer per key (set semantics).
    unique = w["unique"]
    cols = w["per_key"][unique]
    s.update_many(unique, weights={"a": cols, "b": 1.0 + cols})


CASES = [
    StatCase(
        "bottom_k/total", "bottom_k", "total",
        lambda t: make_sampler("bottom_k", k=64, rng=t),
        _feed_weighted, lambda s: s.estimate("total"), _truth_total,
    ),
    StatCase(
        "bottom_k-coordinated/distinct", "bottom_k", "distinct",
        lambda t: make_sampler(
            "bottom_k", k=64, family="uniform", coordinated=True, salt=t
        ),
        _feed_unique_unweighted,
        lambda s: s.estimate("distinct"), _truth_distinct,
    ),
    StatCase(
        "poisson/total", "poisson", "total",
        lambda t: make_sampler("poisson", threshold=0.05, rng=t),
        _feed_weighted, lambda s: s.estimate("total"), _truth_total,
    ),
    StatCase(
        "varopt/total", "varopt", "total",
        lambda t: make_sampler("varopt", k=64, rng=t),
        _feed_weighted, lambda s: s.estimate("total"), _truth_total,
    ),
    StatCase(
        "variance_target/total", "variance_target", "total",
        lambda t: make_sampler(
            "variance_target", delta=60.0, horizon=N, rng=t
        ),
        _feed_weighted, lambda s: s.estimate("total"), _truth_total,
    ),
    StatCase(
        "budget/total", "budget", "total",
        lambda t: make_sampler("budget", budget=80.0, rng=t),
        _feed_sized, lambda s: s.estimate("total"), _truth_total,
    ),
    StatCase(
        "top_k/subset_sum", "top_k", "subset_sum",
        lambda t: make_sampler("top_k", k=48, rng=t),
        _feed_unweighted,
        lambda s: s.estimate("subset_sum", predicate=_subset),
        _truth_subset_occurrences,
    ),
    StatCase(
        "unbiased_space_saving/subset_sum", "unbiased_space_saving",
        "subset_sum",
        lambda t: make_sampler("unbiased_space_saving", capacity=48, rng=t),
        _feed_unweighted,
        lambda s: s.estimate("subset_sum", predicate=_subset),
        _truth_subset_occurrences,
    ),
    StatCase(
        "weighted_distinct/distinct", "weighted_distinct", "distinct",
        lambda t: make_sampler("weighted_distinct", k=64, salt=t),
        _feed_weighted, lambda s: s.estimate("distinct"), _truth_distinct,
    ),
    StatCase(
        "weighted_distinct/subset_sum", "weighted_distinct", "subset_sum",
        lambda t: make_sampler("weighted_distinct", k=64, salt=t),
        _feed_weighted,
        lambda s: s.estimate("subset_sum", predicate=_subset),
        _truth_subset_key_weight,
    ),
    StatCase(
        "adaptive_distinct/distinct", "adaptive_distinct", "distinct",
        lambda t: make_sampler("adaptive_distinct", k=64, salt=t),
        _feed_unweighted, lambda s: s.estimate("distinct"), _truth_distinct,
    ),
    StatCase(
        "kmv/distinct", "kmv", "distinct",
        lambda t: make_sampler("kmv", k=64, salt=t),
        _feed_unweighted, lambda s: s.estimate("distinct"), _truth_distinct,
    ),
    StatCase(
        "theta/distinct", "theta", "distinct",
        lambda t: make_sampler("theta", k=64, salt=t),
        _feed_unweighted, lambda s: s.estimate("distinct"), _truth_distinct,
    ),
    StatCase(
        "grouped_distinct/distinct", "grouped_distinct", "distinct",
        lambda t: make_sampler("grouped_distinct", m=4, k=8, salt=t),
        _feed_grouped,
        lambda s: s.estimate("distinct", group="g0"), _truth_g0_distinct,
    ),
    StatCase(
        "multi_stratified/total", "multi_stratified", "total",
        lambda t: make_sampler("multi_stratified", n_dims=2, k=16, salt=t),
        _feed_stratified,
        # Stratified sketches are per-key (duplicate offers are idempotent
        # under the coordinated hash), so the estimable total is the
        # distinct-key count for this unweighted feed.
        lambda s: s.estimate("total"), _truth_distinct_key_count,
    ),
    StatCase(
        "multi_objective/total", "multi_objective", "total",
        lambda t: make_sampler(
            "multi_objective", k=64, objectives=("a", "b"), salt=t
        ),
        _feed_unique_multiweight,
        lambda s: s.estimate("total", objective="a"), _truth_per_key_total,
    ),
    StatCase(
        "sliding_window/window_count", "sliding_window", "window_count",
        lambda t: make_sampler("sliding_window", k=48, window=1.0, rng=t),
        _feed_window,
        lambda s: s.estimate("window_count"), _truth_window_count,
        workloads=("zipf",),
    ),
    StatCase(
        "time_decay/decayed_total", "time_decay", "decayed_total",
        lambda t: make_sampler("time_decay", k=64, decay_rate=1.0, rng=t),
        _feed_timed,
        lambda s: s.estimate("decayed_total"), _truth_decayed_total,
        workloads=("zipf",),
    ),
]


# ----------------------------------------------------------------------
# Mid-stream resize cases (the adaptive control plane's k-retunes)
# ----------------------------------------------------------------------
def _resized_feed(base_feed, k2: int):
    """Feed the first half of the stream, ``resize(k2)``, feed the rest.

    Splits every per-occurrence column at the same midpoint so the
    resized run sees the identical stream a straight-through run would.
    """

    def feed(s, w):
        mid = len(w["keys"]) // 2
        half = {
            **w,
            "keys": w["keys"][:mid],
            "weights": w["weights"][:mid],
        }
        rest = {
            **w,
            "keys": w["keys"][mid:],
            "weights": w["weights"][mid:],
        }
        base_feed(s, half)
        s.resize(k2)
        base_feed(s, rest)

    return feed


def _resize_case(name: str, kind: str, build, base_feed, estimate, truth,
                 k2: int, direction: str) -> StatCase:
    return StatCase(
        f"{name}-resize-{direction}/{kind}", name, kind, build,
        _resized_feed(base_feed, k2), estimate, truth,
    )


def _est_distinct(s):
    return s.estimate("distinct")


RESIZE_CASES = [
    case
    for k2, direction in ((24, "shrink"), (160, "grow"))
    for case in (
        _resize_case(
            "bottom_k", "total",
            lambda t: make_sampler("bottom_k", k=64, rng=t),
            _feed_weighted, lambda s: s.estimate("total"), _truth_total,
            k2, direction,
        ),
        _resize_case(
            "weighted_distinct", "distinct",
            lambda t: make_sampler("weighted_distinct", k=64, salt=t),
            _feed_weighted, _est_distinct, _truth_distinct, k2, direction,
        ),
        _resize_case(
            "adaptive_distinct", "distinct",
            lambda t: make_sampler("adaptive_distinct", k=64, salt=t),
            _feed_unweighted, _est_distinct, _truth_distinct, k2, direction,
        ),
        _resize_case(
            "kmv", "distinct",
            lambda t: make_sampler("kmv", k=64, salt=t),
            _feed_unweighted, _est_distinct, _truth_distinct, k2, direction,
        ),
        _resize_case(
            "theta", "distinct",
            lambda t: make_sampler("theta", k=64, salt=t),
            _feed_unweighted, _est_distinct, _truth_distinct, k2, direction,
        ),
    )
]


def _sharded_case(name: str, kind: str, params: dict, feed, estimate, truth,
                  salted: bool) -> StatCase:
    def build(trial: int):
        trial_params = dict(params, salt=trial) if salted else dict(params)
        return ShardedSampler(
            {"name": name, "params": trial_params}, n_shards=4, seed=trial
        )

    return StatCase(
        f"sharded[{name}]/{kind}", name, kind, build, feed, estimate, truth,
        workloads=("zipf",),
    )


#: Every mergeable sampler, wrapped in a 4-shard engine: sharding must not
#: change what the estimators converge to.
SHARDED_CASES = [
    _sharded_case(
        "bottom_k", "total", {"k": 64}, _feed_weighted,
        lambda s: s.estimate("total"), _truth_total, salted=False,
    ),
    _sharded_case(
        "bottom_k", "distinct",
        {"k": 64, "family": "uniform", "coordinated": True},
        _feed_unique_unweighted,
        lambda s: s.estimate("distinct"), _truth_distinct, salted=True,
    ),
    _sharded_case(
        "poisson", "total", {"threshold": 0.05}, _feed_weighted,
        lambda s: s.estimate("total"), _truth_total, salted=False,
    ),
    _sharded_case(
        "weighted_distinct", "distinct", {"k": 64}, _feed_weighted,
        lambda s: s.estimate("distinct"), _truth_distinct, salted=True,
    ),
    _sharded_case(
        "weighted_distinct", "subset_sum", {"k": 64}, _feed_weighted,
        lambda s: s.estimate("subset_sum", predicate=_subset),
        _truth_subset_key_weight, salted=True,
    ),
    _sharded_case(
        "adaptive_distinct", "distinct", {"k": 24}, _feed_unweighted,
        lambda s: s.estimate("distinct"), _truth_distinct, salted=True,
    ),
    _sharded_case(
        "kmv", "distinct", {"k": 64}, _feed_unweighted,
        lambda s: s.estimate("distinct"), _truth_distinct, salted=True,
    ),
    _sharded_case(
        "theta", "distinct", {"k": 64}, _feed_unweighted,
        lambda s: s.estimate("distinct"), _truth_distinct, salted=True,
    ),
]

#: Registered samplers with no unbiasedness case, and why.
EXCLUDED = {
    "space_saving": "deterministic upper-bound counter (biased by design)",
    "frequent_items": "deterministic undercount sketch (biased by design)",
    "cps": "offline design (no streaming estimate facade)",
    "priority_layout": "offline layout table (no streaming estimate facade)",
    "multi_objective_layout": "offline layout (no streaming estimate facade)",
    "sharded": "covered through the SHARDED_CASES wrappers",
    "tenant_mux": "a routing container: estimates delegate to per-tenant "
                  "children, whose unbiasedness is covered by their own rows",
}


def test_every_registered_sampler_is_covered_or_excluded():
    covered = {case.name for case in CASES + SHARDED_CASES}
    assert covered | set(EXCLUDED) == set(repro.available_samplers())
    assert not covered & set(EXCLUDED)


def test_case_kinds_are_advertised():
    """Each case exercises a kind the sampler actually advertises."""
    for case in CASES:
        sampler = case.build(0)
        assert case.kind in sampler.estimate_kinds(), case.label
    for case in SHARDED_CASES:
        engine = case.build(0)
        assert case.kind in engine.estimate_kinds(), case.label


def _run_case(case: StatCase, workload: str) -> None:
    w = WORKLOADS[workload]
    truth = case.truth(w)
    estimates = np.empty(TRIALS)
    for trial in range(TRIALS):
        sampler = case.build(trial)
        case.feed(sampler, w)
        estimates[trial] = float(case.estimate(sampler))
    mean = float(estimates.mean())
    se = float(estimates.std(ddof=1) / np.sqrt(TRIALS))
    tolerance = Z * se + REL_FLOOR * abs(truth)
    assert abs(mean - truth) <= tolerance, (
        f"{case.label} on {workload}: mean {mean:.3f} vs truth {truth:.3f} "
        f"(se {se:.4f}, z {'inf' if se == 0 else f'{(mean - truth) / se:.2f}'}"
        f", {TRIALS} trials)"
    )


@pytest.mark.parametrize(
    "case,workload",
    [(c, wl) for c in CASES for wl in c.workloads],
    ids=[f"{c.label}-{wl}" for c in CASES for wl in c.workloads],
)
def test_estimator_is_unbiased(case, workload):
    _run_case(case, workload)


@pytest.mark.slow
@pytest.mark.parametrize(
    "case,workload",
    [(c, wl) for c in SHARDED_CASES for wl in c.workloads],
    ids=[f"{c.label}-{wl}" for c in SHARDED_CASES for wl in c.workloads],
)
def test_sharded_estimator_is_unbiased(case, workload):
    _run_case(case, workload)


@pytest.mark.parametrize(
    "case,workload",
    [(c, wl) for c in RESIZE_CASES for wl in c.workloads],
    ids=[f"{c.label}-{wl}" for c in RESIZE_CASES for wl in c.workloads],
)
def test_resized_estimator_is_unbiased(case, workload):
    """Unbiasedness survives a mid-stream ``resize`` in both directions
    (shrink-with-fold and grow-with-cap) — the property the adaptive
    controller's ``k`` retunes rely on."""
    _run_case(case, workload)
