"""Fault-injection battery: recovery is bit-exact from any crash point.

The contract under test (the PR5 tentpole's acceptance criterion): kill
the service at randomized points — mid-batch, mid-checkpoint, mid-log-
append, via injected exceptions and truncated files — and
``StreamService.recover(dir)`` must reach a state *bit-identical* to an
uninterrupted run over the first ``events_durable`` events, for every
mergeable registered sampler and a 4-shard engine; resuming the stream
from that offset must then land on the uninterrupted full-stream state,
RNG continuation included.

Mechanics: the service's ``fault_hook`` seam raises at a seeded-random
stage/occurrence (exactly what a crash between those two instructions
would do — e.g. ``wal.append.mid`` is a torn record on disk), and the
truncation tests corrupt the on-disk files directly.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro import mergeable_samplers
from repro.serve import (
    CheckpointStore,
    ServiceCrashed,
    StreamService,
    WriteAheadLog,
    replay_records,
)
from tests.serve.common import (
    CONFIG_IDS,
    MERGEABLE_CONFIGS,
    N,
    build_engine,
    build_sampler,
    feed_service,
    reference_state,
    run_async,
    signature,
    stream,
)

pytestmark = pytest.mark.timeout(120)

#: Every stage the runtime can die at, exercised by the randomized trials.
FAULT_STAGES = (
    "flush.before",       # mid-batch: drained from the queue, nothing durable
    "wal.append.before",  # batch about to be logged
    "wal.append.mid",     # torn record: header written, payload missing
    "apply.before",       # logged but not applied (replay must cover it)
    "apply.after",        # applied but possibly never checkpointed
    "checkpoint.before",
    "checkpoint.mid",     # torn temp file, rename never happened
    "checkpoint.after",   # renamed, retention pruning skipped
)

SERVICE_OPTS = dict(
    queue_size=500,
    batch_size=48,
    max_latency=0.005,
    checkpoint_every_events=120,
    segment_max_bytes=1500,
    retain_checkpoints=2,
)


class InjectedFault(Exception):
    """The simulated crash."""


def _fault_hook(stage: str, occurrence: int):
    """Raise :class:`InjectedFault` the ``occurrence``-th time ``stage``
    fires (a later-than-last occurrence means the run completes)."""
    seen = {"n": 0}

    def hook(s: str) -> None:
        if s == stage:
            seen["n"] += 1
            if seen["n"] == occurrence:
                raise InjectedFault(f"{stage}#{occurrence}")

    return hook


async def _crash_recover_resume(build, tmp_path, keys, weights, weighted,
                                stage, occurrence):
    """One trial: run with an injected fault, recover, verify the prefix
    bit-exactly, resume, verify the full stream bit-exactly."""
    first = StreamService(
        build(), dir=tmp_path / "svc",
        fault_hook=_fault_hook(stage, occurrence), **SERVICE_OPTS,
    )
    await first.start()
    crashed = False
    try:
        await feed_service(first, keys, weights, weighted)
        await first.flush()
        await first.stop()
    except ServiceCrashed:
        crashed = True
        assert isinstance(first.error, InjectedFault)

    recovered = StreamService.recover(tmp_path / "svc")
    durable = recovered.events_durable
    if not crashed:
        assert durable == N
    assert signature(recovered._sampler) == reference_state(
        build, keys, weights, weighted, durable
    ), f"recovery at {stage}#{occurrence} (durable={durable}) not bit-exact"

    # Resume the lost tail from the durable frontier: the producer's
    # replay contract.  The final state must equal the uninterrupted run.
    await recovered.start()
    if durable < N:
        await feed_service(recovered, keys, weights, weighted, start=durable)
    await recovered.flush()
    await recovered.stop()
    final = StreamService.recover(tmp_path / "svc")
    assert final.events_durable == N
    assert signature(final._sampler) == reference_state(
        build, keys, weights, weighted, N
    ), f"resumed run after {stage}#{occurrence} diverged"
    return crashed


def _trial_plan(trial: int) -> tuple[str, int]:
    """Seeded-random (stage, occurrence) for one trial."""
    rng = np.random.default_rng(7000 + trial)
    stage = FAULT_STAGES[int(rng.integers(len(FAULT_STAGES)))]
    return stage, int(rng.integers(1, 5))


def test_battery_covers_every_mergeable_name():
    assert {name for name, _, _ in MERGEABLE_CONFIGS} == (
        set(mergeable_samplers()) - {"sharded"}
    )


@pytest.mark.parametrize("trial", range(3))
@pytest.mark.parametrize("name,params,weighted", MERGEABLE_CONFIGS,
                         ids=CONFIG_IDS)
def test_randomized_crash_recovery_is_bit_exact(
    tmp_path, name, params, weighted, trial
):
    keys, weights = stream()
    # crc32, not hash(): string hashing is salted per process, and the
    # trial plan must reproduce across runs.
    stage, occurrence = _trial_plan(
        trial * 131 + zlib.crc32(name.encode()) % 97
    )
    run_async(_crash_recover_resume(
        lambda: build_sampler(name, params), tmp_path,
        keys, weights, weighted, stage, occurrence,
    ))


@pytest.mark.parametrize("trial", range(2))
@pytest.mark.parametrize("name,params,weighted", MERGEABLE_CONFIGS,
                         ids=CONFIG_IDS)
def test_sharded_engine_crash_recovery_is_bit_exact(
    tmp_path, name, params, weighted, trial
):
    """The 4-shard engine checkpoint (all shard RNG streams) survives
    randomized crashes too."""
    keys, weights = stream()
    stage, occurrence = _trial_plan(
        5000 + trial * 17 + zlib.crc32(name.encode()) % 89
    )
    run_async(_crash_recover_resume(
        lambda: build_engine(name, params), tmp_path,
        keys, weights, weighted, stage, occurrence,
    ))


@pytest.mark.parametrize("stage", FAULT_STAGES)
def test_every_stage_is_reachable_and_recoverable(tmp_path, stage):
    """Deterministic sweep: each stage, first occurrence, one sampler —
    guarantees the randomized trials can't silently rotate away from a
    stage that regressed."""
    keys, weights = stream()
    crashed = run_async(_crash_recover_resume(
        lambda: build_sampler("bottom_k", {"k": 24, "rng": 5}),
        tmp_path, keys, weights, True, stage, 1,
    ))
    assert crashed, f"stage {stage} never fired"


# ----------------------------------------------------------------------
# Truncated / corrupted files
# ----------------------------------------------------------------------
async def _clean_run(build, root, keys, weights, weighted,
                     checkpoint_on_stop=True, **overrides):
    service = StreamService(build(), dir=root, **{**SERVICE_OPTS, **overrides})
    await service.start()
    await feed_service(service, keys, weights, weighted)
    await service.flush()
    await service.stop(checkpoint=checkpoint_on_stop)


@pytest.mark.parametrize("cut", [1, 7, 40, 200])
def test_truncated_wal_tail_recovers_a_bit_exact_prefix(tmp_path, cut):
    """Chopping bytes off the newest WAL segment loses whole tail
    batches, never corrupts the recovered prefix."""
    keys, weights = stream()
    build = lambda: build_sampler("bottom_k", {"k": 24, "rng": 5})  # noqa: E731
    root = tmp_path / "svc"
    # Disable checkpoints entirely so recovery genuinely replays the log
    # (any checkpoint at N would make the truncated tail irrelevant).
    run_async(_clean_run(build, root, keys, weights, True,
                         checkpoint_on_stop=False,
                         checkpoint_every_events=10 * N))

    segments = sorted((root / "wal").glob("wal-*.log"))
    assert len(segments) > 1, "battery config must rotate segments"
    last = segments[-1]
    size = last.stat().st_size
    with open(last, "r+b") as fh:
        fh.truncate(max(0, size - cut))

    recovered = StreamService.recover(root)
    durable = recovered.events_durable
    assert durable < N  # the cut really lost events
    assert signature(recovered._sampler) == reference_state(
        build, keys, weights, True, durable
    )


def test_corrupt_newest_checkpoint_falls_back_and_replays(tmp_path):
    """A truncated newest checkpoint fails its CRC and recovery lands on
    the older retained checkpoint plus a longer WAL replay — still
    bit-exact at the full durable count."""
    keys, weights = stream()
    build = lambda: build_sampler("weighted_distinct", {"k": 24, "salt": 3})  # noqa: E731
    root = tmp_path / "svc"
    run_async(_clean_run(build, root, keys, weights, True))

    ckpts = sorted((root / "ckpt").glob("ckpt-*.pkl"))
    assert len(ckpts) == 2, "retention must keep a fallback checkpoint"
    with open(ckpts[-1], "r+b") as fh:
        fh.truncate(ckpts[-1].stat().st_size // 2)

    recovered = StreamService.recover(root)
    assert recovered.events_durable == N
    assert recovered.metrics.last_checkpoint_offset < N
    assert signature(recovered._sampler) == reference_state(
        build, keys, weights, True, N
    )


def test_all_checkpoints_corrupt_recovers_from_initial_state(tmp_path):
    """With every checkpoint destroyed, recovery replays the whole log
    from the meta file's initial state — unless pruning already dropped
    early segments, in which case recovery must refuse silently wrong
    answers by yielding only the contiguous tail (here: segments are
    retained because the oldest checkpoint pins them)."""
    keys, weights = stream()
    build = lambda: build_sampler("bottom_k", {"k": 24, "rng": 5})  # noqa: E731
    root = tmp_path / "svc"
    opts = dict(SERVICE_OPTS)
    opts["checkpoint_every_events"] = 10 * N  # no periodic checkpoints

    async def go():
        service = StreamService(build(), dir=root, **opts)
        await service.start()
        await feed_service(service, keys, weights, True)
        await service.flush()
        await service.stop(checkpoint=False)

    run_async(go())
    assert not list((root / "ckpt").glob("ckpt-*.pkl"))
    recovered = StreamService.recover(root)
    assert recovered.events_durable == N
    assert signature(recovered._sampler) == reference_state(
        build, keys, weights, True, N
    )


# ----------------------------------------------------------------------
# Durability-layer unit behavior the battery relies on
# ----------------------------------------------------------------------
def test_wal_reopen_truncates_torn_tail_and_appends_cleanly(tmp_path):
    wal = WriteAheadLog(tmp_path, segment_max_bytes=10_000)
    wal.append(0, 2, {"keys": [1, 2]})
    wal.append(2, 2, {"keys": [3, 4]})
    wal.close()
    segment = sorted((tmp_path / "wal").glob("wal-*.log"))[0]
    with open(segment, "r+b") as fh:  # tear the second record
        fh.truncate(segment.stat().st_size - 3)
    assert [r.offset for r in replay_records(tmp_path)] == [0]

    wal = WriteAheadLog(tmp_path, segment_max_bytes=10_000)
    wal.append(2, 2, {"keys": [30, 40]})  # re-log the lost batch
    wal.close()
    records = list(replay_records(tmp_path))
    assert [(r.offset, r.columns["keys"]) for r in records] == [
        (0, [1, 2]), (2, [30, 40]),
    ]


def test_wal_prune_keeps_segments_needed_by_offset(tmp_path):
    wal = WriteAheadLog(tmp_path, segment_max_bytes=1)  # rotate every record
    for i in range(5):
        wal.append(i * 10, 10, {"keys": list(range(10))})
    assert wal.segment_count == 5
    wal.prune(before_offset=30)
    kept = [r.offset for r in replay_records(tmp_path)]
    # Everything below the checkpoint offset is droppable; the segment
    # holding the record at 30 (the replay start) must survive.
    assert kept == [30, 40]
    wal.close()


def test_checkpoint_store_skips_invalid_and_retains(tmp_path):
    store = CheckpointStore(tmp_path, retain=2)
    for offset in (10, 20, 30):
        store.write(offset, {"offset": offset, "state": {"x": offset}})
    assert store.offsets() == (20, 30)
    newest = sorted((tmp_path / "ckpt").glob("ckpt-*.pkl"))[-1]
    newest.write_bytes(b"garbage")
    offset, payload = store.load_latest()
    assert offset == 20 and payload["state"] == {"x": 20}


def test_recovery_restores_operational_metrics(tmp_path):
    """Counters the checkpoint persisted (drops, histograms, flush
    splits) survive recovery instead of silently resetting; the event
    counters advance to the replayed frontier."""
    keys, weights = stream()
    build = lambda: build_sampler("bottom_k", {"k": 24, "rng": 5})  # noqa: E731
    root = tmp_path / "svc"
    run_async(_clean_run(build, root, keys, weights, True))

    recovered = StreamService.recover(root)
    m = recovered.metrics
    assert m.events_applied == m.events_logged == N
    assert m.batches_applied > 0
    assert m.batch_size_buckets  # histogram restored, not reset
    assert m.flushes_size + m.flushes_deadline + m.flushes_drain > 0
    assert m.checkpoints_written > 0
    assert m.checkpoint_lag == N - m.last_checkpoint_offset


def test_fresh_service_refuses_an_existing_directory(tmp_path):
    keys, weights = stream(50)
    build = lambda: build_sampler("bottom_k", {"k": 8, "rng": 1})  # noqa: E731
    root = tmp_path / "svc"
    run_async(_clean_run(build, root, keys, weights, True))

    async def misuse():
        service = StreamService(build(), dir=root, **SERVICE_OPTS)
        with pytest.raises(ValueError, match="recover"):
            await service.start()

    run_async(misuse())
    with pytest.raises(FileNotFoundError):
        StreamService.recover(tmp_path / "nowhere")
