"""Concurrency stress: snapshot isolation, backpressure, cache freshness.

Three contracts of the serving runtime under concurrent ingest + query
load on one event loop:

* **Internal consistency** — every read group observes exactly one
  ``state_version``: ``estimate()``, ``sample()`` and ``query()`` inside
  a snapshot agree with each other (the query result is pinned to the
  snapshot's version, and the HT total recomputed from the raw sample
  arrays matches the facade answers bit-for-bit).
* **Backpressure** — with the consumer stalled, admissions stop exactly
  at ``queue_size`` buffered events and blocked producers resume once
  the consumer drains; the non-blocking path drops and counts instead.
* **Cache freshness** — repeated queries between mutations are cache
  hits (same object), but a query after any flush can never be served a
  pre-mutation answer: its ``state_version`` strictly advances.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.estimators import ht_total
from repro.serve import StreamService
from tests.serve.common import run_async, stream

pytestmark = pytest.mark.timeout(120)


def _service(**overrides) -> StreamService:
    opts = dict(queue_size=256, batch_size=64, max_latency=0.002)
    opts.update(overrides)
    return StreamService(
        {"name": "bottom_k", "params": {"k": 48, "rng": 9}}, **opts
    )


async def _reader(service, results, rounds: int):
    """Snapshot-read repeatedly, asserting intra-snapshot consistency."""
    last_version = -1
    for _ in range(rounds):
        async with service.snapshot() as snap:
            version = snap.state_version
            applied = snap.events_applied
            total = snap.estimate("total")
            sample = snap.sample()
            result = snap.query("sum")
            # All three surfaces answer from the same pinned state.
            assert result.state_version == version
            assert snap.state_version == version  # unchanged while held
            # The query layer sums over canonicalized (priority-sorted)
            # rows — same state, so equal to the facade up to summation
            # order (1 ulp), while recomputing in raw sample order from
            # the arrays reproduces the facade bit-for-bit.
            assert result.estimate == pytest.approx(total, rel=1e-12)
            recomputed = ht_total(
                np.asarray(sample.values), np.asarray(sample.probabilities)
            )
            assert recomputed == total
            # Time never runs backwards for a single reader.
            assert version >= last_version
            last_version = version
            results.append((version, applied, total))
        await asyncio.sleep(0)


def test_concurrent_ingest_and_snapshot_reads_are_consistent():
    async def go():
        service = _service()
        await service.start()
        keys, weights = stream(3000)

        async def produce():
            for lo in range(0, len(keys), 50):
                await service.ingest_many(
                    keys[lo:lo + 50], weights=weights[lo:lo + 50]
                )
                await asyncio.sleep(0)

        results: list[tuple[int, int, float]] = []
        readers = [
            asyncio.create_task(_reader(service, results, 40))
            for _ in range(4)
        ]
        await produce()
        await asyncio.gather(*readers)
        await service.flush()

        # Reads pinned to one version — across *all* readers — observed
        # one (applied-count, total) pair: a version names one state.
        by_version: dict[int, set[tuple[int, float]]] = {}
        for version, applied, total in results:
            by_version.setdefault(version, set()).add((applied, total))
        assert all(len(obs) == 1 for obs in by_version.values())

        final = await service.estimate("total")
        direct_total = float(np.sum(weights))
        assert final == pytest.approx(direct_total, rel=0.5)
        await service.stop()

    run_async(go())


def test_backpressure_engages_at_the_configured_bound():
    async def go():
        gate = asyncio.Event()
        stalled = asyncio.Event()

        def hook(stage):
            if stage == "flush.before":
                stalled.set()
                return gate.wait()  # awaited by the consumer: stalls it
            return None

        service = _service(
            queue_size=64, batch_size=16, max_latency=0.001, fault_hook=hook
        )
        await service.start()
        keys, weights = stream(400)

        async def produce():
            # Chunks of 8 divide both the buffer bound (64) and the
            # stream, so the blocked producer leaves exactly a full
            # buffer — making the bound assertion exact.
            for lo in range(0, len(keys), 8):
                await service.ingest_many(
                    keys[lo:lo + 8], weights=weights[lo:lo + 8]
                )

        producer = asyncio.create_task(produce())
        await asyncio.wait_for(stalled.wait(), 10)
        # Let the producer run until it parks on the full buffer.
        for _ in range(200):
            await asyncio.sleep(0)
        assert not producer.done(), "producer should be backpressured"
        assert service.metrics.queue_depth == 64  # exactly the bound
        assert service.metrics.queue_high_watermark <= 64
        before = service.events_applied

        # The non-blocking path refuses instead of blocking, and counts.
        assert service.try_ingest("overflow") is False
        assert service.metrics.events_dropped == 1

        gate.set()  # un-stall the consumer
        await asyncio.wait_for(producer, 10)
        await service.flush()
        assert service.events_applied == 400
        assert service.events_applied > before
        assert service.metrics.queue_high_watermark <= 64
        await service.stop()

    run_async(go())


def test_try_ingest_admits_when_room_and_drops_when_full():
    async def go():
        gate = asyncio.Event()
        service = _service(
            queue_size=8, batch_size=4, max_latency=0.001,
            fault_hook=lambda s: gate.wait() if s == "flush.before" else None,
        )
        await service.start()
        assert service.try_ingest_many(list(range(8)))  # fills the buffer
        assert not service.try_ingest_many([99, 100])   # all-or-nothing
        assert service.metrics.events_dropped == 2
        gate.set()
        await service.flush()
        assert service.events_applied == 8
        await service.stop()

    run_async(go())


def test_query_cache_is_version_pinned_and_never_stale():
    async def go():
        service = _service(max_latency=0.5)  # no surprise deadline flushes
        await service.start()
        keys, weights = stream(500)
        await service.ingest_many(keys[:250], weights=weights[:250])
        await service.flush()

        async with service.snapshot() as snap:
            first = snap.query("sum")
            again = snap.query("sum")
        assert again is first  # cache hit: same version, same fingerprint

        # Re-polling through the one-shot surface between mutations is
        # still the same cached object.
        repoll = await service.query("sum")
        assert repoll is first

        await service.ingest_many(keys[250:], weights=weights[250:])
        await service.flush()
        async with service.snapshot() as snap:
            fresh = snap.query("sum")
            assert snap.state_version > first.state_version
            assert fresh.state_version == snap.state_version
        assert fresh is not first
        assert fresh.state_version > first.state_version
        # More weight arrived, so a stale (pre-mutation) hit would show
        # as an unchanged estimate.
        assert fresh.estimate > first.estimate
        await service.stop()

    run_async(go())


def test_reads_refuse_a_crashed_service():
    """After a consumer crash the in-memory sampler may hold a
    half-applied batch (e.g. a sharded flush failing mid-shard), so
    every read path raises instead of serving torn state."""
    from repro.serve import ServiceCrashed

    async def go():
        def hook(stage):
            if stage == "apply.before":
                raise RuntimeError("mid-batch failure")

        service = _service(fault_hook=hook, max_latency=0.001)
        await service.start()
        with pytest.raises(ServiceCrashed):
            await service.ingest_many(list(range(100)))
            await service.flush()
        for read in (service.estimate("total"), service.sample(),
                     service.query("sum")):
            with pytest.raises(ServiceCrashed):
                await read
        with pytest.raises(ServiceCrashed):
            await service.stop()

    run_async(go())


def test_stop_drains_immediately_despite_a_long_deadline():
    """Shutdown latency is independent of max_latency: a pending
    sub-batch-size batch is drained, not waited out."""
    async def go():
        service = _service(batch_size=1000, max_latency=30.0)
        await service.start()
        await service.ingest_many(list(range(10)))
        loop = asyncio.get_running_loop()
        start = loop.time()
        await service.stop()
        assert loop.time() - start < 5.0
        assert service.events_applied == 10
        assert service.metrics.flushes_drain >= 1

    run_async(go())


def test_snapshot_view_is_invalid_outside_its_block():
    async def go():
        service = _service()
        await service.start()
        await service.ingest_many(list(range(10)))
        await service.flush()
        async with service.snapshot() as snap:
            snap.estimate("total")
        with pytest.raises(RuntimeError, match="outside"):
            snap.estimate("total")
        await service.stop()

    run_async(go())


def test_sharded_engine_serves_through_the_runtime():
    """The service wraps a 4-shard engine transparently: reads reduce
    through the merge tree, queries stay version-pinned."""
    async def go():
        from repro import ShardedSampler

        engine = ShardedSampler(
            {"name": "weighted_distinct", "params": {"k": 32, "salt": 3}},
            n_shards=4, seed=11,
        )
        service = StreamService(
            engine, queue_size=256, batch_size=64, max_latency=0.002
        )
        await service.start()
        keys, weights = stream(2000)
        await service.ingest_many(keys, weights=weights)
        await service.flush()
        async with service.snapshot() as snap:
            result = snap.query("distinct")
            assert result.state_version == snap.state_version
            assert 0 < result.estimate < 4000
        await service.stop()

    run_async(go())


@pytest.mark.soak
def test_soak_sustained_concurrent_load():
    """Long-running variant (deselected by default; REPRO_SOAK=1 runs
    it): heavier stream, more readers, with durability on."""
    import tempfile

    async def go():
        with tempfile.TemporaryDirectory() as root:
            service = StreamService(
                {"name": "bottom_k", "params": {"k": 128, "rng": 9}},
                dir=root, queue_size=4096, batch_size=512,
                max_latency=0.002, checkpoint_every_events=8192,
            )
            await service.start()
            keys, weights = stream(200_000)

            async def produce():
                for lo in range(0, len(keys), 1000):
                    await service.ingest_many(
                        keys[lo:lo + 1000], weights=weights[lo:lo + 1000]
                    )
                    await asyncio.sleep(0)

            results: list[tuple[int, int, float]] = []
            readers = [
                asyncio.create_task(_reader(service, results, 200))
                for _ in range(8)
            ]
            await produce()
            await asyncio.gather(*readers)
            await service.flush()
            assert service.events_applied == 200_000
            assert service.metrics.checkpoints_written >= 10
            await service.stop()

    run_async(go(), timeout=300)
