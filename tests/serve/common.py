"""Shared machinery for the serving-runtime test battery.

Every async test runs through :func:`run_async`, which wraps the
coroutine in a hard ``asyncio.wait_for`` deadline — a deadlocked queue or
a hung consumer fails the test in seconds instead of stalling the suite,
independently of the ``pytest-timeout`` belt CI adds on top.
"""

from __future__ import annotations

import asyncio

import numpy as np

import repro
from repro import ShardedSampler, make_sampler

#: Hard per-test coroutine deadline (seconds).
ASYNC_DEADLINE = 60.0

#: Stream length used by the recovery battery.
N = 600

#: (name, params, weighted) — every mergeable sampler class, randomized
#: and hash-coordinated variants (mirrors the engine checkpoint-fuzz
#: battery; the coverage test pins it against ``mergeable_samplers()``).
MERGEABLE_CONFIGS = [
    ("bottom_k", {"k": 24, "rng": 5}, True),
    ("bottom_k", {"k": 24, "coordinated": True, "salt": 3}, True),
    ("poisson", {"threshold": 0.2, "rng": 5}, True),
    ("poisson", {"threshold": 0.2, "coordinated": True, "salt": 3}, True),
    ("weighted_distinct", {"k": 24, "salt": 3}, True),
    ("adaptive_distinct", {"k": 24, "salt": 3}, False),
    ("kmv", {"k": 24, "salt": 3}, False),
    ("theta", {"k": 24, "salt": 3}, False),
]

CONFIG_IDS = [
    f"{name}-{'coord' if params.get('coordinated') else 'plain'}"
    for name, params, _ in MERGEABLE_CONFIGS
]


def run_async(coro, timeout: float = ASYNC_DEADLINE):
    """Run an async test body under a hard deadline."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


def stream(n: int = N) -> tuple[np.ndarray, np.ndarray]:
    """A deterministic weighted key stream (weights constant per key, as
    the distinct-sketch contract requires)."""
    rng = np.random.default_rng(13)
    keys = rng.integers(0, 200, n)
    per_key = np.random.default_rng(14).lognormal(0.0, 0.6, 200)
    return keys, per_key[keys]


def build_sampler(name: str, params: dict):
    """A fresh sampler instance for a battery config."""
    return make_sampler(name, **params)


def build_engine(name: str, params: dict) -> ShardedSampler:
    """The 4-shard engine variant of a battery config (no pinned rng:
    the engine derives per-shard streams from its root seed)."""
    params = {k: v for k, v in params.items() if k != "rng"}
    return ShardedSampler({"name": name, "params": params}, n_shards=4, seed=21)


def reference_state(build, keys, weights, weighted: bool, n: int):
    """The uninterrupted-run signature after the first ``n`` events."""
    sampler = build()
    if n:
        if weighted:
            sampler.update_many(keys[:n], weights[:n])
        else:
            sampler.update_many(keys[:n])
    return signature(sampler)


def signature(sampler) -> tuple:
    """Bit-exactness signature (re-exported from the shared helpers)."""
    from tests.helpers import sample_signature

    return sample_signature(sampler)


async def feed_service(service, keys, weights, weighted: bool,
                       start: int = 0, chunk: int = 37) -> None:
    """Ingest ``keys[start:]`` through the service in fixed chunks."""
    for lo in range(start, len(keys), chunk):
        hi = min(lo + chunk, len(keys))
        if weighted:
            await service.ingest_many(keys[lo:hi], weights=weights[lo:hi])
        else:
            await service.ingest_many(keys[lo:hi])
