"""Hypothesis property: any flush interleaving equals one scalar pass.

PR2 pinned chunking invariance for ``update_many`` — this suite extends
that contract through the *async* micro-batcher: arbitrary interleavings
of chunk sizes, batch-size thresholds (down to 1-event flushes), explicit
flush barriers, and deadline-vs-size flush mixes must leave the sampler
in a state seed-for-seed identical to feeding the events one ``update``
call at a time.  Both a randomized-RNG sampler (RNG stream continuation
across flush boundaries) and a hash-coordinated sketch (no RNG, pure
content) are exercised, plus the synchronous :class:`MicroBatcher` merge
logic on its own.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import make_sampler
from repro.serve import MicroBatcher, StreamService
from repro.serve.batcher import chunk_of
from tests.serve.common import run_async, signature

pytestmark = pytest.mark.timeout(300)

SAMPLER_CASES = {
    "bottom_k-rng": lambda: make_sampler("bottom_k", k=12, rng=7),
    "weighted_distinct-coord": lambda: make_sampler(
        "weighted_distinct", k=12, salt=3
    ),
}


@st.composite
def ingestion_plans(draw):
    """A stream plus an arbitrary way of pushing it through the service.

    Returns ``(events, chunk_sizes, flush_after, batch_size)``:
    ``chunk_sizes`` partitions the events into ``ingest_many`` calls
    (singletons go through scalar ``ingest``), ``flush_after`` marks the
    chunk indices followed by an explicit barrier, and ``batch_size``
    (down to 1) sets the size trigger.
    """
    n = draw(st.integers(min_value=1, max_value=120))
    keys = draw(st.lists(
        st.integers(min_value=0, max_value=40), min_size=n, max_size=n
    ))
    # Weights are a function of the key (drawn as a per-key table):
    # duplicate occurrences of a key must agree, which is the
    # distinct-sketch ingestion contract (same rule as the engine
    # checkpoint-fuzz battery and bench_engine streams).
    weight_table = draw(st.lists(
        st.floats(min_value=0.1, max_value=8.0, allow_nan=False,
                  allow_infinity=False),
        min_size=41, max_size=41,
    ))
    weights = [weight_table[key] for key in keys]
    chunk_sizes = []
    left = n
    while left:
        size = draw(st.integers(min_value=1, max_value=min(left, 25)))
        chunk_sizes.append(size)
        left -= size
    flush_after = draw(st.sets(
        st.integers(min_value=0, max_value=len(chunk_sizes) - 1)
    ))
    batch_size = draw(st.integers(min_value=1, max_value=17))
    return list(zip(keys, weights)), chunk_sizes, flush_after, batch_size


def _scalar_reference(build, events):
    """The ground truth: one event at a time through ``update``."""
    sampler = build()
    for key, weight in events:
        sampler.update(key, weight)
    return signature(sampler)


async def _through_service(build, events, chunk_sizes, flush_after,
                           batch_size, max_latency):
    service = StreamService(
        build(), queue_size=64, batch_size=batch_size,
        max_latency=max_latency,
    )
    await service.start()
    lo = 0
    for index, size in enumerate(chunk_sizes):
        chunk = events[lo:lo + size]
        lo += size
        if size == 1:  # scalar surface
            await service.ingest(chunk[0][0], chunk[0][1])
        else:
            await service.ingest_many(
                [key for key, _ in chunk],
                weights=[weight for _, weight in chunk],
            )
        if index in flush_after:
            await service.flush()
    await service.flush()
    state = signature(service._sampler)
    await service.stop()
    assert service.events_applied == len(events)
    return state


@pytest.mark.parametrize("case", sorted(SAMPLER_CASES), ids=str)
@given(plan=ingestion_plans())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_any_flush_interleaving_matches_the_scalar_pass(case, plan):
    build = SAMPLER_CASES[case]
    events, chunk_sizes, flush_after, batch_size = plan
    reference = _scalar_reference(build, events)
    # A generous deadline: only explicit barriers and size triggers fire.
    state = run_async(_through_service(
        build, events, chunk_sizes, flush_after, batch_size, max_latency=30.0
    ))
    assert state == reference


@given(plan=ingestion_plans())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_deadline_driven_flushes_match_the_scalar_pass(plan):
    """With a near-zero latency bound, flush boundaries are timer-driven
    and nondeterministic — and must still not matter."""
    build = SAMPLER_CASES["bottom_k-rng"]
    events, chunk_sizes, flush_after, batch_size = plan
    reference = _scalar_reference(build, events)
    state = run_async(_through_service(
        build, events, chunk_sizes, flush_after, batch_size,
        max_latency=0.0005,
    ))
    assert state == reference


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=9), min_size=1,
                   max_size=12),
    batch_size=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=50, deadline=None)
def test_microbatcher_merge_preserves_event_order(sizes, batch_size):
    """The synchronous merge: drained columns are the admitted events,
    in admission order, for any chunk/threshold mix."""
    batcher = MicroBatcher(batch_size=batch_size, max_latency=1.0)
    expected_keys, expected_weights = [], []
    drained_keys, drained_weights = [], []
    counter = 0
    for size in sizes:
        keys = list(range(counter, counter + size))
        weights = [float(k % 5 + 1) for k in keys]
        counter += size
        expected_keys += keys
        expected_weights += weights
        batcher.add(chunk_of(keys, weights), now=0.0)
        if batcher.size_due():
            columns, n = batcher.drain()
            assert n == len(columns["keys"])
            drained_keys += list(columns["keys"])
            drained_weights += list(columns["weights"])
    if len(batcher):
        columns, _ = batcher.drain()
        drained_keys += list(columns["keys"])
        drained_weights += list(columns["weights"])
    assert drained_keys == expected_keys
    assert drained_weights == expected_weights


def test_microbatcher_signature_mismatch_is_refused():
    batcher = MicroBatcher(batch_size=10, max_latency=1.0)
    batcher.add(chunk_of([1, 2], [1.0, 2.0]), now=0.0)
    assert not batcher.accepts(chunk_of([3]))  # no weights column
    with pytest.raises(ValueError, match="signature"):
        batcher.add(chunk_of([3]), now=0.0)
    batcher.drain()
    batcher.add(chunk_of([3]), now=0.0)  # fine after the drain