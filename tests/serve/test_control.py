"""Adaptive control plane battery: signals, policies, retunes, recovery.

Covers the full loop the control plane closes:

- the new :class:`ServiceMetrics` gauges (flush latency / duration,
  quantiles, volatile reset) and their validation;
- :func:`derive_signals` — pure snapshot-diff → windowed signals;
- the five :class:`AdaptiveController` policy modes, exercised through
  the pure ``propose`` seam with fabricated signals;
- :meth:`StreamService.retune` — flush-boundary application, the
  dead-config ``batch_size`` clamp, WAL admin records, and bit-exact
  recovery through mid-run retunes (checkpoint-straddling included);
- the live controller loop against a real overloaded service;
- :class:`ClusterController` quota backoff/recovery and the cluster's
  retune facades.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import make_sampler
from repro.api.registry import SamplerSpec
from repro.serve import (
    AdaptiveController,
    Cluster,
    ClusterController,
    CONTROLLER_MODES,
    ControllerConfig,
    ControlSignals,
    ServiceCrashed,
    ServiceMetrics,
    StreamService,
    TenantQuota,
    derive_signals,
)
from repro.serve.metrics import FLUSH_REASONS
from tests.serve.common import run_async, signature, stream

KEYS, WEIGHTS = stream(600)

SPEC = SamplerSpec("weighted_distinct", {"k": 64, "salt": 3})


def _signals(**overrides) -> ControlSignals:
    base = dict(
        interval=0.25, ingest_rate=100.0, drop_rate=0.0,
        queue_occupancy=0.2, deadline_share=0.2, flush_latency_p99=0.01,
        avg_flush_duration=0.001, backlog=10,
    )
    base.update(overrides)
    return ControlSignals(**base)


def _primed(service, mode="balanced", **config_kw) -> AdaptiveController:
    """A controller with bounds resolved and baseline captured, but no
    background loop (drives ``propose`` directly)."""
    config = ControllerConfig(slo_p99=0.05, **config_kw)
    ctl = AdaptiveController(service, mode=mode, config=config)
    ctl.config = ctl.config.resolve(service)
    k = getattr(service.sampler, "k", None)
    ctl.baseline = {
        "batch_size": service.batch_size,
        "max_latency": service.max_latency,
        "k": int(k) if k is not None else None,
    }
    return ctl


def _service(**kw) -> StreamService:
    kw.setdefault("batch_size", 32)
    kw.setdefault("max_latency", 0.05)
    kw.setdefault("queue_size", 1024)
    return StreamService(SPEC, **kw)


# ----------------------------------------------------------------------
# Metrics: new gauges + the bugfix pins
# ----------------------------------------------------------------------
class TestFlushMetrics:
    def test_unknown_flush_reason_raises_value_error(self):
        # Bugfix pin: a typo'd reason used to explode as AttributeError
        # deep in the consumer loop (recorded as a service crash).
        metrics = ServiceMetrics()
        with pytest.raises(ValueError, match="unknown flush reason"):
            metrics.record_flush(5, "deadlien")
        with pytest.raises(ValueError, match="deadlien"):
            metrics.record_flush(5, "deadlien")
        for reason in FLUSH_REASONS:
            metrics.record_flush(1, reason)  # all real reasons accepted

    def test_latency_and_duration_recorded(self):
        metrics = ServiceMetrics()
        metrics.record_flush(10, "size", latency=0.004, duration=0.001)
        metrics.record_flush(10, "deadline", latency=0.060, duration=0.002)
        assert metrics.last_flush_latency == pytest.approx(0.060)
        assert metrics.flush_latency_sum == pytest.approx(0.064)
        assert metrics.last_flush_duration == pytest.approx(0.002)
        assert metrics.flush_duration_sum == pytest.approx(0.003)
        # pow2-ms buckets: 4ms -> 4, 60ms -> 64
        assert metrics.flush_latency_buckets == {4: 1, 64: 1}

    def test_quantile_is_conservative_upper_bound(self):
        metrics = ServiceMetrics()
        for _ in range(99):
            metrics.record_flush(1, "size", latency=0.001)
        metrics.record_flush(1, "size", latency=0.100)
        assert metrics.flush_latency_quantile(0.5) == pytest.approx(0.001)
        assert metrics.flush_latency_quantile(1.0) == pytest.approx(0.128)
        # q=0 reports the smallest bucket's (conservative) upper bound
        assert metrics.flush_latency_quantile(0.0) == pytest.approx(0.001)

    def test_quantile_validates_and_handles_empty(self):
        metrics = ServiceMetrics()
        assert metrics.flush_latency_quantile(0.99) == 0.0
        with pytest.raises(ValueError):
            metrics.flush_latency_quantile(1.5)
        with pytest.raises(ValueError):
            metrics.flush_latency_quantile(-0.1)

    def test_reset_volatile_zeroes_gauges_only(self):
        metrics = ServiceMetrics()
        metrics.record_flush(10, "size", latency=0.05, duration=0.01)
        metrics.record_depth(42)
        metrics.reset_volatile()
        assert metrics.queue_depth == 0
        assert metrics.last_flush_latency == 0.0
        assert metrics.last_flush_duration == 0.0
        # durable counters untouched
        assert metrics.batches_applied == 1
        assert metrics.flush_latency_sum == pytest.approx(0.05)
        assert metrics.flush_latency_buckets
        assert metrics.queue_high_watermark == 42

    def test_roundtrip_and_merge_cover_new_fields(self):
        a = ServiceMetrics()
        a.record_flush(10, "size", latency=0.004, duration=0.001)
        a.record_retune()
        b = ServiceMetrics.from_dict(a.to_dict())
        assert b.flush_latency_buckets == a.flush_latency_buckets
        assert b.last_flush_latency == a.last_flush_latency
        assert b.flush_duration_sum == a.flush_duration_sum
        assert b.retunes_applied == 1
        b.merge(a)
        assert b.retunes_applied == 2
        assert b.flush_latency_buckets == {4: 2}
        assert b.flush_latency_sum == pytest.approx(0.008)


# ----------------------------------------------------------------------
# Signal derivation
# ----------------------------------------------------------------------
class TestDeriveSignals:
    def test_rates_and_shares_from_snapshot_diff(self):
        prev = ServiceMetrics()
        prev.events_enqueued = 100
        prev.record_flush(50, "size", latency=0.001)
        curr = ServiceMetrics.from_dict(prev.to_dict())
        curr.events_enqueued = 300
        curr.events_dropped = 50
        curr.record_flush(100, "deadline", latency=0.030)
        curr.record_flush(50, "size", latency=0.001)
        curr.record_flush(50, "deadline", latency=0.900)
        curr.record_depth(128)
        signals = derive_signals(prev, curr, 2.0, 512)
        assert signals.ingest_rate == pytest.approx(100.0)
        assert signals.drop_rate == pytest.approx(25.0)
        assert signals.queue_occupancy == pytest.approx(0.25)
        assert signals.deadline_share == pytest.approx(2 / 3)
        assert signals.backlog == 128
        # windowed p99: the 900ms outlier dominates the window's tail
        assert signals.flush_latency_p99 == pytest.approx(1.024)

    def test_windowed_quantile_ignores_history(self):
        # Lifetime histogram may be dominated by old slow flushes; the
        # windowed p99 must reflect only this window's samples.
        prev = ServiceMetrics()
        for _ in range(1000):
            prev.record_flush(1, "size", latency=0.500)
        curr = ServiceMetrics.from_dict(prev.to_dict())
        for _ in range(10):
            curr.record_flush(1, "size", latency=0.001)
        signals = derive_signals(prev, curr, 1.0, 100)
        assert signals.flush_latency_p99 == pytest.approx(0.001)

    def test_idle_window_is_all_zero(self):
        prev = ServiceMetrics()
        curr = ServiceMetrics.from_dict(prev.to_dict())
        signals = derive_signals(prev, curr, 1.0, 100)
        assert signals.ingest_rate == 0.0
        assert signals.deadline_share == 0.0
        assert signals.flush_latency_p99 == 0.0
        assert signals.avg_flush_duration == 0.0

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            derive_signals(ServiceMetrics(), ServiceMetrics(), 0.0, 100)


# ----------------------------------------------------------------------
# Policy modes (pure propose seam)
# ----------------------------------------------------------------------
class TestPolicies:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown controller mode"):
            AdaptiveController(_service(), mode="yolo")
        assert len(CONTROLLER_MODES) == 5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(interval=0.0)
        with pytest.raises(ValueError):
            ControllerConfig(grow_factor=1.0)
        with pytest.raises(ValueError):
            ControllerConfig(shrink_factor=1.0)
        with pytest.raises(ValueError):
            ControllerConfig(low_occupancy=0.9, high_occupancy=0.5)

    def test_balanced_grows_under_overload(self):
        ctl = _primed(_service())
        changes = ctl.propose(_signals(queue_occupancy=0.9))
        assert changes["batch_size"] == 64
        assert changes["max_latency"] == pytest.approx(0.1)
        assert changes["k"] == 32

    def test_balanced_overload_triggers(self):
        ctl = _primed(_service())
        for signals in (
            _signals(flush_latency_p99=0.2),  # SLO breach
            _signals(drop_rate=5.0),          # losing events
        ):
            assert ctl.propose(signals), signals

    def test_balanced_holds_in_neutral_zone(self):
        ctl = _primed(_service())
        assert ctl.propose(_signals(queue_occupancy=0.3)) == {}

    def test_balanced_relaxes_toward_baseline_when_calm(self):
        svc = _service()
        ctl = _primed(svc)
        # perturb away from baseline, as an overload would have
        svc.batch_size, svc.max_latency = 128, 0.2
        changes = ctl.propose(_signals(queue_occupancy=0.0, backlog=0,
                                       flush_latency_p99=0.0))
        assert changes["batch_size"] == 80   # halfway back to 32
        assert changes["max_latency"] == pytest.approx(0.125)
        assert "k" not in changes            # k already at baseline

    def test_high_load_jumps_to_extremes(self):
        svc = _service()
        ctl = _primed(svc, mode="high_load")
        changes = ctl.propose(_signals(queue_occupancy=0.9))
        assert changes["batch_size"] == svc.queue_size
        assert changes["k"] == ctl.config.min_k

    def test_error_triggered_raises_k_on_drops(self):
        ctl = _primed(_service(), mode="error_triggered")
        changes = ctl.propose(_signals(drop_rate=10.0))
        assert changes["k"] == ctl.config.max_k  # keep detail when lossy
        assert changes["batch_size"] == ctl.config.max_batch_size
        # overload *without* drops is not this mode's trigger
        assert ctl.propose(_signals(queue_occupancy=0.95)) == {}

    def test_surge_reacts_to_p99_only(self):
        svc = _service()
        ctl = _primed(svc, mode="surge")
        changes = ctl.propose(_signals(flush_latency_p99=0.2))
        assert changes["batch_size"] == 64
        assert changes["k"] == ctl.config.min_k
        assert ctl.propose(_signals(queue_occupancy=0.95)) == {}

    def test_low_noise_waits_for_calm_streak(self):
        svc = _service()
        ctl = _primed(svc, mode="low_noise")
        calm = _signals(queue_occupancy=0.0, flush_latency_p99=0.0)
        for _ in range(ctl.config.calm_windows - 1):
            assert ctl.propose(calm) == {}
        changes = ctl.propose(calm)  # streak reached: drift cheaper
        assert changes["batch_size"] == 64
        assert changes["k"] == 32

    def test_low_noise_snaps_back_on_disturbance(self):
        svc = _service()
        ctl = _primed(svc, mode="low_noise")
        svc.batch_size = 256  # drifted
        changes = ctl.propose(_signals(queue_occupancy=0.9))
        assert changes["batch_size"] == ctl.baseline["batch_size"]
        assert ctl._calm_streak == 0

    def test_proposals_respect_bounds(self):
        svc = _service(batch_size=900, queue_size=1024)
        ctl = _primed(svc)
        changes = ctl.propose(_signals(queue_occupancy=0.9))
        assert changes["batch_size"] <= svc.queue_size
        # shrink k repeatedly: never below min_k
        for _ in range(10):
            changes = ctl.propose(_signals(queue_occupancy=0.9))
            if "k" in changes:
                svc.sampler.resize(changes["k"])
        assert getattr(svc.sampler, "k") >= ctl.config.min_k


# ----------------------------------------------------------------------
# StreamService.retune mechanics
# ----------------------------------------------------------------------
class TestRetune:
    def test_batch_size_clamped_at_construction(self):
        # Bugfix pin: batch_size > queue_size used to be accepted as dead
        # config (size-triggered flushes could never fire).
        service = StreamService(SPEC, batch_size=4096, queue_size=256)
        assert service.batch_size == 256

    def test_retune_applies_all_knobs(self):
        async def body():
            service = _service()
            await service.start()
            try:
                changes = await service.retune(
                    batch_size=64, max_latency=0.2, k=32
                )
                assert changes == {
                    "batch_size": 64, "max_latency": 0.2, "k": 32
                }
                assert service.batch_size == 64
                assert service._batcher.batch_size == 64
                assert service.max_latency == 0.2
                assert service.sampler.k == 32
                assert service.metrics.retunes_applied == 1
            finally:
                await service.stop()
        run_async(body())

    def test_retune_clamps_batch_size_to_queue_size(self):
        # Bugfix pin: the same dead-config guard applies online.
        async def body():
            service = _service(queue_size=128)
            await service.start()
            try:
                changes = await service.retune(batch_size=4096)
                assert changes == {"batch_size": 128}
                assert service.batch_size == 128
            finally:
                await service.stop()
        run_async(body())

    def test_retune_k_requires_resizable(self):
        async def body():
            service = StreamService(
                SamplerSpec("varopt", {"k": 16, "rng": 1})
            )
            await service.start()
            try:
                with pytest.raises(ValueError, match="resiz"):
                    await service.retune(k=8)
            finally:
                await service.stop()
        run_async(body())

    def test_retune_validates_and_noops(self):
        async def body():
            service = _service()
            await service.start()
            try:
                assert await service.retune() == {}
                with pytest.raises(ValueError):
                    await service.retune(batch_size=0)
                with pytest.raises(ValueError):
                    await service.retune(max_latency=0.0)
                assert service.metrics.retunes_applied == 0
            finally:
                await service.stop()
        run_async(body())

    def test_retune_requires_running_service(self):
        async def body():
            service = _service()
            with pytest.raises(RuntimeError):
                await service.retune(batch_size=16)
            await service.start()
            await service.stop()
            with pytest.raises(RuntimeError):
                await service.retune(batch_size=16)
        run_async(body())

    def test_retune_is_wal_logged(self, tmp_path):
        async def body():
            service = StreamService(SPEC, dir=tmp_path, batch_size=32)
            await service.start()
            await service.ingest_many(KEYS[:100], weights=WEIGHTS[:100])
            await service.flush()
            before = service.metrics.wal_records
            await service.retune(batch_size=64, k=32)
            assert service.metrics.wal_records == before + 1
            await service.stop()
        run_async(body())

    def test_retune_applies_under_sustained_backlog(self, tmp_path):
        # Bugfix pin: the consumer's pull loop used to drain the queue to
        # empty before checking for pending retunes.  Under sustained
        # overload the queue never empties, so retunes starved exactly
        # when the control plane needed them.  The self-feeding hook
        # below keeps the queue non-empty across (up to) 50 flushes: the
        # retune must land at the first flush boundary after it is
        # queued, not after the feeding stops.
        state = {"flushes": 0, "svc": None}

        def hook(stage):
            # Feed only while the retune has not landed (batch still 8):
            # stops the backlog once the fix kicks in, and never ingests
            # into a stopping service during the final drain.
            if stage == "flush.before" and state["svc"].batch_size == 8:
                state["flushes"] += 1
                if state["flushes"] < 50:
                    state["svc"].try_ingest_many(KEYS[:8], weights=WEIGHTS[:8])

        async def body():
            service = StreamService(
                SPEC, dir=tmp_path, batch_size=8, fault_hook=hook
            )
            state["svc"] = service
            await service.start()
            pending = asyncio.ensure_future(service.retune(batch_size=512))
            await asyncio.sleep(0)  # let the retune enqueue itself
            service.try_ingest_many(KEYS[:8], weights=WEIGHTS[:8])
            await asyncio.wait_for(pending, 10)
            assert state["flushes"] < 50
            assert service.batch_size == 512
            await service.stop()
        run_async(body())

    def test_crash_fails_pending_retune(self, tmp_path):
        armed = {"on": False}

        def hook(stage):
            if armed["on"] and stage == "wal.append.before":
                raise OSError("injected")

        async def body():
            service = StreamService(
                SPEC, dir=tmp_path, batch_size=8, fault_hook=hook
            )
            await service.start()
            await service.ingest_many(KEYS[:8], weights=WEIGHTS[:8])
            await service.flush()
            armed["on"] = True  # the next WAL append is the admin record
            with pytest.raises(ServiceCrashed):
                await service.retune(batch_size=64)
            await service.abort()
        run_async(body())


# ----------------------------------------------------------------------
# Recovery through retunes (bit-exactness)
# ----------------------------------------------------------------------
class TestRetuneRecovery:
    def _run_with_retunes(self, tmp_path, checkpoint_every):
        async def body():
            service = StreamService(
                SPEC, dir=tmp_path, batch_size=16, max_latency=5.0,
                queue_size=2048, checkpoint_every_events=checkpoint_every,
            )
            await service.start()
            await service.ingest_many(KEYS[:200], weights=WEIGHTS[:200])
            await service.flush()
            await service.retune(batch_size=64, max_latency=0.5, k=32)
            await service.ingest_many(
                KEYS[200:400], weights=WEIGHTS[200:400]
            )
            await service.flush()
            await service.retune(k=128)
            await service.ingest_many(KEYS[400:], weights=WEIGHTS[400:])
            await service.stop()
            return signature(service.sampler)
        return run_async(body())

    @pytest.mark.parametrize(
        "checkpoint_every", [10_000, 64],
        ids=["no-checkpoint", "checkpoint-straddling"],
    )
    def test_recovery_is_bit_exact_through_retunes(
        self, tmp_path, checkpoint_every
    ):
        live = self._run_with_retunes(tmp_path, checkpoint_every)
        recovered = StreamService.recover(tmp_path)
        assert signature(recovered.sampler) == live
        # retuned config survives (WAL admin replay / checkpoint config)
        assert recovered.batch_size == 64
        assert recovered.max_latency == 0.5
        assert recovered.sampler.k == 128

    def test_recovered_service_resumes_bit_exact(self, tmp_path):
        self._run_with_retunes(tmp_path, 64)

        async def resume(service):
            await service.start()
            extra = np.arange(5000, 5200)
            await service.ingest_many(extra, weights=np.ones(extra.size))
            await service.stop()
            return signature(service.sampler)

        a = run_async(resume(StreamService.recover(tmp_path)))
        b = run_async(resume(StreamService.recover(tmp_path)))
        assert a == b

    def test_recovery_resets_phantom_queue_depth(self, tmp_path):
        # Bugfix pin: the checkpointed metrics snapshot can carry a
        # non-zero queue_depth / last-flush gauge, but a recovered
        # service starts with an empty buffer — a controller reading the
        # stale gauges would see phantom backlog and mis-retune.
        async def body():
            service = StreamService(
                SPEC, dir=tmp_path, batch_size=8,
                checkpoint_every_events=8,
            )
            await service.start()
            await service.ingest_many(KEYS[:64], weights=WEIGHTS[:64])
            await service.flush()
            # poison the volatile gauges, then force one more checkpoint
            service.metrics.record_depth(77)
            service.metrics.last_flush_latency = 9.9
            service.metrics.last_flush_duration = 9.9
            await service.ingest_many(KEYS[64:128], weights=WEIGHTS[64:128])
            await service.stop()
        run_async(body())
        recovered = StreamService.recover(tmp_path)
        assert recovered.metrics.queue_depth == 0
        assert recovered.metrics.last_flush_latency == 0.0
        assert recovered.metrics.last_flush_duration == 0.0
        # durable counters still restored
        assert recovered.metrics.events_applied == 128

    @pytest.mark.parametrize(
        "checkpoint_every", [10_000, 64],
        ids=["replayed-from-wal", "carried-by-checkpoint"],
    )
    def test_retunes_applied_counter_survives_recovery(
        self, tmp_path, checkpoint_every
    ):
        # Both persistence routes must agree: retunes the checkpoint
        # snapshot predates are counted during WAL replay, retunes the
        # snapshot covers ride in its metrics dict.
        self._run_with_retunes(tmp_path, checkpoint_every)
        recovered = StreamService.recover(tmp_path)
        assert recovered.metrics.retunes_applied == 2


# ----------------------------------------------------------------------
# Live controller loop
# ----------------------------------------------------------------------
class TestControllerLoop:
    def test_controller_retunes_overloaded_service(self):
        async def body():
            service = _service(batch_size=4, max_latency=0.01,
                               queue_size=256)
            await service.start()
            ctl = AdaptiveController(
                service, mode="balanced",
                config=ControllerConfig(interval=0.02, slo_p99=0.002),
            )
            async with ctl:
                assert ctl.running
                for i in range(30):
                    await service.ingest_many(
                        [f"load-{i}-{j}" for j in range(300)]
                    )
                    await asyncio.sleep(0.005)
                await service.flush()
            assert service.metrics.retunes_applied > 0
            assert service.batch_size > 4  # grew under pressure
            assert len(ctl.history) > 0
            rows = ctl.trajectory()
            assert {"signals", "applied"} <= set(rows[0])
            await service.stop()
        run_async(body())

    def test_step_seam_primes_then_observes(self):
        async def body():
            service = _service()
            await service.start()
            ctl = _primed(service)
            assert await ctl.step() is None      # priming tick
            await service.ingest_many(KEYS[:50], weights=WEIGHTS[:50])
            await service.flush()
            signals = await ctl.step()
            assert signals is not None
            assert signals.ingest_rate > 0
            await service.stop()
        run_async(body())

    def test_loop_stops_when_service_stops(self):
        async def body():
            service = _service()
            await service.start()
            ctl = AdaptiveController(
                service, config=ControllerConfig(interval=0.01)
            )
            await ctl.start()
            with pytest.raises(RuntimeError):
                await ctl.start()  # double start rejected
            await asyncio.sleep(0.05)
            await service.stop()
            await asyncio.sleep(0.05)
            assert not ctl.running
            await ctl.stop()  # idempotent
        run_async(body())

    def test_controller_resizes_sharded_sampler(self):
        async def body():
            service = StreamService(
                SamplerSpec("sharded", {
                    "spec": {"name": "weighted_distinct",
                             "params": {"k": 64, "salt": 3}},
                    "n_shards": 2,
                }),
                batch_size=32,
            )
            await service.start()
            changes = await service.retune(k=16)
            assert changes == {"k": 16}
            assert service.sampler.spec.params["k"] == 16
            assert all(s.k == 16 for s in service.sampler.shards)
            await service.stop()
        run_async(body())


# ----------------------------------------------------------------------
# Cluster control
# ----------------------------------------------------------------------
class TestClusterControl:
    def test_retune_service_facade(self):
        async def body():
            async with Cluster(services=2, batch_size=8) as cluster:
                name = cluster.services[0]
                changes = await cluster.retune_service(name, batch_size=64)
                assert changes == {"batch_size": 64}
                assert cluster.service(name).batch_size == 64
                cluster.mark_service_down(name)
                with pytest.raises(RuntimeError, match="down"):
                    await cluster.retune_service(name, batch_size=16)
        run_async(body())

    def test_retune_quota_swaps_bucket_and_persists(self, tmp_path):
        async def body():
            async with Cluster(dir=tmp_path, services=2) as cluster:
                await cluster.create_tenant(
                    "t1", SPEC.as_dict(),
                    quota=TenantQuota(events_per_sec=100.0),
                )
                old_bucket = cluster.registry.bucket("t1")
                quota = cluster.retune_quota(
                    "t1", TenantQuota(events_per_sec=10.0, burst=5.0)
                )
                assert quota.events_per_sec == 10.0
                assert cluster.registry.bucket("t1") is not old_bucket
                # lifting limits entirely
                cluster.retune_quota("t1", None)
                assert cluster.registry.bucket("t1") is None
        run_async(body())
        # the retuned quota reached the meta file
        recovered = Cluster.recover(tmp_path)
        assert recovered.registry.get("t1").quota == TenantQuota()

    def test_quota_backoff_and_recovery(self):
        async def body():
            async with Cluster(services=2, batch_size=8) as cluster:
                await cluster.create_tenant(
                    "hot", SPEC.as_dict(),
                    quota=TenantQuota(events_per_sec=400.0, burst=50.0),
                )
                await cluster.create_tenant("free", SPEC.as_dict())
                ctl = ClusterController(
                    cluster, config=ControllerConfig(interval=0.02),
                    quota_backoff=0.5, quota_recovery=2.0,
                )
                await ctl.start()
                try:
                    worker = cluster.registry.get("hot").service
                    cluster.service(worker).metrics.record_drop(
                        5, label="hot"
                    )
                    actions = ctl.quota_step()
                    assert actions == [("hot", 400.0, 200.0)]
                    # drop-free windows: restore toward declared rate
                    assert ctl.quota_step() == [("hot", 200.0, 400.0)]
                    # at declared rate: hold
                    assert ctl.quota_step() == []
                    # unlimited tenants are never throttled
                    assert all(t == "hot" for t, _, _ in ctl.quota_history)
                    traj = ctl.trajectory()
                    assert len(traj["quotas"]) == 2
                    assert set(traj["workers"]) == set(cluster.services)
                finally:
                    await ctl.stop()
                assert not ctl.controllers
        run_async(body())

    def test_backoff_has_a_floor(self):
        async def body():
            async with Cluster(services=1, batch_size=8) as cluster:
                await cluster.create_tenant(
                    "t", SPEC.as_dict(),
                    quota=TenantQuota(events_per_sec=2.0),
                )
                ctl = ClusterController(
                    cluster, min_events_per_sec=1.0, quota_backoff=0.25
                )
                worker = cluster.registry.get("t").service
                for _ in range(5):
                    cluster.service(worker).metrics.record_drop(
                        1, label="t"
                    )
                    ctl.quota_step()
                assert (
                    cluster.registry.get("t").quota.events_per_sec == 1.0
                )
        run_async(body())

    def test_cluster_controller_validation(self):
        cluster = Cluster(services=1)
        with pytest.raises(ValueError):
            ClusterController(cluster, quota_backoff=1.5)
        with pytest.raises(ValueError):
            ClusterController(cluster, quota_recovery=0.5)
        with pytest.raises(ValueError):
            ClusterController(cluster, min_events_per_sec=0.0)
