"""Serving-runtime test battery: crash recovery, isolation, batching."""
