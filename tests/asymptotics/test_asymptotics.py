"""Tests for the asymptotic-theory reproductions (repro.asymptotics, §4–6)."""

import numpy as np
import pytest

from repro.asymptotics.empirical_process import (
    analytic_covariance,
    gaussianity_diagnostics,
    simulate_process,
)
from repro.asymptotics.equivalence import (
    inclusion_disagreement,
    linearization_weights,
    uniformizing_transform,
)
from repro.asymptotics.heuristics import (
    deterministic_threshold,
    heuristic_vs_exact,
)
from repro.asymptotics.mestimators import (
    weighted_least_squares,
    weighted_mean,
    weighted_quantile,
)
from repro.core.priorities import ExponentialPriority, InverseWeightPriority
from repro.core.thresholds import BottomK


class TestMEstimators:
    def test_full_sample_mean(self):
        values = np.array([1.0, 5.0, 3.0])
        assert weighted_mean(values, np.ones(3)) == pytest.approx(3.0)

    def test_full_sample_quantile(self, rng):
        values = rng.normal(size=1001)
        med = weighted_quantile(values, np.ones(1001), 0.5)
        assert med == pytest.approx(np.median(values), abs=0.02)

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            weighted_quantile(np.array([1.0]), np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            weighted_quantile(np.array([]), np.array([]), 0.5)

    def test_wls_recovers_coefficients(self, rng):
        n = 2000
        X = np.column_stack([np.ones(n), rng.normal(size=n)])
        beta = np.array([2.0, -1.5])
        y = X @ beta + 0.1 * rng.normal(size=n)
        est = weighted_least_squares(X, y, np.ones(n))
        np.testing.assert_allclose(est, beta, atol=0.02)

    def test_consistency_under_adaptive_threshold(self):
        """Theorem 10, measured: quantile M-estimates under bottom-k
        converge to the population quantile as n grows."""
        errors = {}
        for n in (200, 3200):
            rng = np.random.default_rng(n)
            values = rng.lognormal(0.0, 1.0, n)
            truth = np.quantile(values, 0.5)
            acc = []
            for trial in range(40):
                trial_rng = np.random.default_rng((n, trial))
                u = trial_rng.random(n)
                t = BottomK(max(20, n // 10)).thresholds(u)[0]
                mask = u < t
                weights = 1.0 / np.full(mask.sum(), min(t, 1.0))
                acc.append(abs(weighted_quantile(values[mask], weights, 0.5) - truth))
            errors[n] = np.mean(acc)
        assert errors[3200] < 0.6 * errors[200]


class TestEquivalence:
    def test_linearization_weights_exponential(self):
        fam = ExponentialPriority()
        w = np.array([0.5, 1.0, 4.0])
        np.testing.assert_allclose(linearization_weights(fam, w), w, rtol=1e-4)

    def test_linearization_weights_inverse(self):
        fam = InverseWeightPriority()
        w = np.array([0.5, 2.0])
        np.testing.assert_allclose(linearization_weights(fam, w), w, rtol=1e-6)

    def test_uniformizing_transform_makes_reference_uniform(self, rng):
        from scipy import stats

        fam = ExponentialPriority()
        transform = uniformizing_transform(fam, reference_weight=1.0)
        u = rng.random(20_000)
        transformed = np.asarray(transform.inverse_cdf(u, 1.0))
        assert stats.kstest(transformed, "uniform").pvalue > 1e-4

    def test_disagreement_vanishes_faster_than_t(self):
        """Lemma 13: P(disagree) = o(t), so the ratio must fall with t."""
        fam = ExponentialPriority()
        weights = np.array([0.5, 1.0, 2.0, 4.0])
        ratios = []
        for t in (0.2, 0.02, 0.002):
            p = inclusion_disagreement(
                fam, weights, t, n_trials=400_000, rng=np.random.default_rng(1)
            )
            ratios.append(p / t)
        assert ratios[2] < ratios[1] < ratios[0]
        assert ratios[2] < 0.15 * ratios[0]


class TestEmpiricalProcess:
    @pytest.fixture
    def setup(self, rng):
        n = 400
        weights = rng.lognormal(0, 0.4, n)
        thresholds = np.array([0.05, 0.1, 0.2])
        return weights.copy(), weights, thresholds

    def test_process_mean_near_zero(self, setup):
        values, weights, thresholds = setup
        reps = simulate_process(values, weights, thresholds, 400,
                                rng=np.random.default_rng(2))
        diag = gaussianity_diagnostics(reps)
        scale = np.sqrt(np.diag(diag["covariance"]).max() / 400)
        assert diag["max_abs_mean"] < 5 * scale

    def test_covariance_matches_analytic(self, setup):
        values, weights, thresholds = setup
        reps = simulate_process(values, weights, thresholds, 1500,
                                rng=np.random.default_rng(3))
        empirical = np.cov(reps.T)
        analytic = analytic_covariance(values, weights, thresholds)
        np.testing.assert_allclose(empirical, analytic, rtol=0.25)

    def test_marginals_gaussian(self, setup):
        values, weights, thresholds = setup
        reps = simulate_process(values, weights, thresholds, 800,
                                rng=np.random.default_rng(4))
        diag = gaussianity_diagnostics(reps)
        assert np.all(diag["normality_pvalues"] > 1e-5)

    def test_nested_thresholds_positively_correlated(self, setup):
        values, weights, thresholds = setup
        analytic = analytic_covariance(values, weights, thresholds)
        assert np.all(analytic > 0)
        # Covariance with the smaller threshold dominates (nesting).
        assert analytic[0, 0] >= analytic[0, 2]


class TestHeuristics:
    def test_deterministic_threshold_solves_equation(self, rng):
        weights = rng.lognormal(0, 0.5, 500)
        delta = 0.05 * weights.sum()
        t = deterministic_threshold(weights, weights, delta)
        probs = np.minimum(1.0, weights * t)
        true_var = np.sum(weights**2 * (1 - probs) / probs)
        assert true_var == pytest.approx(delta**2, rel=1e-4)

    def test_comparison_runs_and_reports(self, rng):
        weights = rng.lognormal(0, 0.5, 800)
        comp = heuristic_vs_exact(weights, weights, 0.08 * weights.sum(),
                                  rng=np.random.default_rng(5))
        assert comp.n == 800
        assert comp.heuristic_threshold <= comp.exact_threshold + 1e-9
        assert np.isfinite(comp.exact_error)

    def test_gap_shrinks_with_n(self):
        gaps = {}
        for n in (300, 4800):
            rng = np.random.default_rng(n)
            weights = rng.lognormal(0, 0.5, n)
            probs = np.minimum(1.0, weights * 0.05)
            delta = float(np.sqrt(np.sum(weights**2 * (1 - probs) / probs)))
            acc = []
            for trial in range(30):
                comp = heuristic_vs_exact(
                    weights, weights, delta, rng=np.random.default_rng((n, trial))
                )
                acc.append(
                    abs(comp.heuristic_threshold - comp.exact_threshold)
                )
            gaps[n] = np.mean(acc)
        assert gaps[4800] < 0.6 * gaps[300]
