"""Public API hygiene: exports exist, are importable, and documented."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.samplers",
    "repro.baselines",
    "repro.workloads",
    "repro.asymptotics",
    "repro.experiments",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), f"missing export {name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackages_import(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_subpackage_alls_resolve(self):
        for module_name in SUBPACKAGES:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name} missing"


class TestDocumentation:
    def test_public_classes_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name, None)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"undocumented exports: {undocumented}"

    def test_public_methods_documented(self):
        """Every public method on exported classes carries a docstring
        (possibly inherited from the base class that defines its contract)."""
        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name, None)
            if not inspect.isclass(obj):
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_") or not callable(attr):
                    continue
                resolved = getattr(obj, attr_name, attr)
                if not (inspect.getdoc(resolved) or "").strip():
                    missing.append(f"{name}.{attr_name}")
        assert not missing, f"undocumented methods: {missing}"

    def test_experiment_modules_have_run_and_main(self):
        from repro import experiments

        for name in experiments.__all__:
            module = getattr(experiments, name)
            assert callable(getattr(module, "run", None)), name
            assert callable(getattr(module, "main", None)), name
