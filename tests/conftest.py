"""Shared fixtures for the test suite.

The statistical helper functions live in :mod:`tests.helpers` (import them
with ``from tests.helpers import assert_within_se``); they are re-exported
here for backward compatibility with older test modules.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from tests.helpers import (  # noqa: F401  (re-exported for compatibility)
    assert_within_se,
    enumerate_poisson,
    exact_expectation,
    monte_carlo_mean_se,
)


def pytest_collection_modifyitems(config, items):
    """Deselect ``soak``-marked tests unless ``REPRO_SOAK=1``.

    An environment gate rather than ``addopts -m``, because a later
    ``-m`` on the command line (CI's ``-m "not statistical"``) would
    silently *replace* an ini-file marker expression and re-enable the
    soak runs.
    """
    if os.environ.get("REPRO_SOAK"):
        return
    skip = pytest.mark.skip(
        reason="soak variant: set REPRO_SOAK=1 to run the long stress tests"
    )
    for item in items:
        if "soak" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def within_se():
    """Fixture form of :func:`tests.helpers.assert_within_se`."""
    return assert_within_se
