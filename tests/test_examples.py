"""Every example script must run cleanly and print what it promises."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["HT estimate", "revenue[emea]"],
    "sliding_window_monitoring.py": ["G&L n", "events in last window"],
    "topk_trending.py": ["true top-10", "FrequentItems"],
    "distinct_count_union.py": ["adaptive merge", "theta union"],
    "aqp_dashboard.py": ["rows read", "region-2 total"],
    "multi_stratified_survey.py": ["panel size", "per-country panel counts"],
    "statistics_from_sample.py": ["Kendall tau", "kurtosis of x"],
    "sharded_ingestion.py": [
        "sharded HT estimate",
        "resumed estimate matches uninterrupted run: True",
    ],
    "query_dashboard.py": [
        "region revenue",
        "top customers by estimated revenue",
        "cached re-poll",
    ],
    "serve_live_dashboard.py": [
        "emea revenue",
        "top customers by estimated revenue",
        "batch size histogram",
        "recovered state matches uninterrupted run: True",
    ],
    "cluster_demo.py": [
        "acme revenue",
        "distinct customers",
        "moved 1 of 3 tenants",
        "per-tenant isolation after rebalance: True",
        "rate-rejected",
    ],
}


def run_example(name: str) -> str:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_MARKERS))
def test_example_runs(name):
    stdout = run_example(name)
    for marker in EXPECTED_MARKERS[name]:
        assert marker in stdout, f"{name}: missing {marker!r} in output"


def test_all_examples_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_MARKERS), (
        "examples and test expectations out of sync"
    )
