"""Adapter battery: the INVENTORY contract, sampler ``observe()``
read-only semantics, collector/INVENTORY agreement, the generated docs
table, and degraded-mode gauges from a cluster with a down worker.
"""

from __future__ import annotations

import re

import pytest

from repro import make_sampler
from repro.obs import (
    INVENTORY,
    PrometheusRegistry,
    cluster_collector,
    cluster_registry,
    metric_inventory_markdown,
    parse_exposition,
    render,
    sampler_gauges,
    service_registry,
)
from repro.obs.adapters import MetricSpec
from repro.serve import StreamService
from repro.serve.cluster import Cluster

from tests.cluster.common import run_async, tenant_spec, tenant_stream

pytestmark = [pytest.mark.obs, pytest.mark.timeout(120)]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

SPEC = {"name": "bottom_k", "params": {"k": 32, "rng": 7}}


# ----------------------------------------------------------------------
# The inventory as a contract
# ----------------------------------------------------------------------
class TestInventory:
    def test_names_unique_and_valid(self):
        names = [spec.name for spec in INVENTORY]
        assert len(names) == len(set(names))
        assert all(_NAME_RE.match(name) for name in names)
        assert all(name.startswith("repro_") for name in names)

    def test_kinds_and_labels_valid(self):
        for spec in INVENTORY:
            assert spec.kind in ("counter", "gauge", "histogram"), spec.name
            for label in spec.labels:
                assert _LABEL_RE.match(label), spec.name
                assert label != "le", spec.name
            assert spec.help

    def test_counter_names_end_in_total_unless_gauge(self):
        # Prometheus naming convention: cumulative counters carry the
        # ``_total`` suffix; gauges and histograms must not.
        for spec in INVENTORY:
            if spec.kind == "counter":
                assert spec.name.endswith("_total"), spec.name
            else:
                assert not spec.name.endswith("_total"), spec.name

    def test_inventory_markdown_lists_every_series(self):
        table = metric_inventory_markdown()
        lines = table.splitlines()
        assert lines[0].startswith("| Metric |")
        assert len(lines) == len(INVENTORY) + 2  # header + separator
        for spec in INVENTORY:
            assert f"`{spec.name}`" in table
        assert table.endswith("\n")

    def test_spec_is_frozen(self):
        spec = INVENTORY[0]
        with pytest.raises(AttributeError):
            spec.name = "mutated"
        assert isinstance(spec, MetricSpec)


# ----------------------------------------------------------------------
# Sampler observe(): the read-only gauge source
# ----------------------------------------------------------------------
SAMPLERS = [
    ("bottom_k", {"k": 16, "rng": 3}),
    ("poisson", {"threshold": 0.5, "rng": 3}),
    ("kmv", {"k": 16, "salt": 1}),
    ("theta", {"k": 16, "salt": 1}),
]


class TestObserve:
    @pytest.mark.parametrize("name,params", SAMPLERS,
                             ids=[name for name, _ in SAMPLERS])
    def test_observe_is_read_only_floats(self, name, params):
        sampler = make_sampler(name, **params)
        sampler.update_many(list(range(100)))
        before = sampler.state_version
        observed = sampler.observe()
        assert sampler.observe() == observed  # stable
        assert sampler.state_version == before  # no mutation
        assert "state_version" in observed
        assert all(isinstance(v, float) for v in observed.values())

    def test_sampler_gauges_skip_absent_and_extra_keys(self):
        rows = [({"tenant": "t"}, {"k": 5.0, "custom_diag": 1.0})]
        families = sampler_gauges(rows)
        names = {family.name for family in families}
        assert names == {"repro_sampler_k"}  # absent keys drop families
        assert "custom_diag" not in render(families)


# ----------------------------------------------------------------------
# Collectors agree with the inventory
# ----------------------------------------------------------------------
def _family_names(text: str) -> set:
    return set(parse_exposition(text))


class TestCollectorsMatchInventory:
    def test_service_registry_families_subset_of_inventory(self):
        async def body():
            async with StreamService(SPEC, trace=True) as service:
                keys = tenant_stream(1, 200)
                await service.ingest_many(keys)
                await service.flush()
                text = service_registry(service).render()
            parsed = parse_exposition(text)
            inventory = {spec.name for spec in INVENTORY}
            assert set(parsed) <= inventory
            # Traced service exports the full trace summary family set.
            assert {
                name for name in parsed if name.startswith("repro_trace_")
            } == {
                spec.name for spec in INVENTORY if spec.source == "TraceLog"
            }
            assert parsed["repro_service_events_applied_total"]["samples"] \
                == [("", {}, 200.0)]
        run_async(body())

    def test_cluster_registry_families_subset_of_inventory(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                await cluster.create_tenant("t0", tenant_spec(0))
                await cluster.ingest_many("t0", tenant_stream(0, 300))
                await cluster.flush()
                text = cluster_registry(cluster).render()
            parsed = parse_exposition(text)
            inventory = {spec.name for spec in INVENTORY}
            assert set(parsed) <= inventory
            tenants = parsed["repro_cluster_tenants"]["samples"]
            assert tenants == [("", {}, 1.0)]
            labels = {
                tuple(sorted(labels))
                for _, labels, _ in
                parsed["repro_tenant_events_applied_total"]["samples"]
            }
            assert labels == {("service", "tenant")}
        run_async(body())

    def test_rendered_kinds_match_inventory(self):
        async def body():
            async with StreamService(SPEC) as service:
                text = service_registry(service).render()
            specs = {spec.name: spec for spec in INVENTORY}
            for name, family in parse_exposition(text).items():
                assert family["type"] == specs[name].kind, name
        run_async(body())


# ----------------------------------------------------------------------
# Degraded-mode gauges: scraping through an outage
# ----------------------------------------------------------------------
class TestDegradedScrape:
    def test_down_worker_serves_degraded_snapshot_gauges(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                await cluster.create_tenants(
                    {f"t{i}": tenant_spec(i) for i in range(4)}
                )
                for i in range(4):
                    await cluster.ingest_many(f"t{i}", tenant_stream(i, 200))
                await cluster.flush()
                victim = cluster.registry.get("t0").service
                cluster.mark_service_down(victim, "chaos")

                # Strictly synchronous: collect() must not need the loop.
                families = cluster_collector(cluster)()
                parsed = parse_exposition(render(families))

                down = parsed["repro_cluster_workers_down"]["samples"]
                assert down == [("", {}, 1.0)]
                up = {
                    labels["service"]: value
                    for _, labels, value in
                    parsed["repro_cluster_service_up"]["samples"]
                }
                assert up[victim] == 0.0
                assert sum(up.values()) == len(up) - 1

                degraded = {
                    labels["degraded"]
                    for _, labels, _ in
                    parsed["repro_sampler_fill"]["samples"]
                }
                assert degraded == {"true", "false"}
                unavailable = {
                    labels["tenant"]: value
                    for _, labels, value in
                    parsed["repro_tenant_unavailable"]["samples"]
                }
                victims = {
                    tenant for tenant, value in unavailable.items()
                    if value == 1.0
                }
                assert victims  # at least one tenant rode the down worker
                # Degraded gauges come from the durable snapshot and are
                # labeled as such, one row per unavailable tenant.
                degraded_rows = {
                    labels["tenant"]
                    for _, labels, _ in
                    parsed["repro_sampler_fill"]["samples"]
                    if labels["degraded"] == "true"
                }
                assert degraded_rows == victims
        run_async(body())

    def test_duplicate_registration_rejected_at_render(self, tmp_path):
        async def body():
            async with Cluster(services=1, dir=tmp_path) as cluster:
                registry = (
                    PrometheusRegistry()
                    .register(cluster_collector(cluster))
                    .register(cluster_collector(cluster))
                )
                with pytest.raises(ValueError, match="duplicate"):
                    registry.render()
        run_async(body())
