"""TraceLog battery: deterministic-clock span accounting, ring
eviction, checkpoint entries — and the live ingest-path integration
(spans stamped at admission, completed at flush, checkpoints recorded,
and the deliberate non-persistence of tracing across recovery).
"""

from __future__ import annotations

import pytest

from repro.obs import TRACE_STAGES, TraceLog
from repro.serve import StreamService
from repro.serve.cluster import Cluster

from tests.serve.common import run_async, stream

pytestmark = [pytest.mark.obs, pytest.mark.timeout(120)]

SPEC = {"name": "bottom_k", "params": {"k": 32, "rng": 7}}


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# Unit: the log itself, driven by a fake clock
# ----------------------------------------------------------------------
class TestTraceLog:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceLog(0)

    def test_empty_log_is_falsy_but_enabled(self):
        # ``__len__`` counts retained records, so a fresh log is falsy —
        # the reason enablement checks use ``is not None``, never truth.
        log = TraceLog()
        assert len(log) == 0
        assert not log
        assert log.records() == []

    def test_begin_stamps_monotonic_ids_at_clock_time(self):
        clock = FakeClock(5.0)
        log = TraceLog(clock=clock)
        first = log.begin(10)
        clock.now = 6.0
        second = log.begin(3)
        assert (first["id"], second["id"]) == (1, 2)
        assert (first["n"], second["n"]) == (10, 3)
        assert (first["t0"], second["t0"]) == (5.0, 6.0)
        assert log.spans_started == 2
        assert log.spans_completed == 0
        assert len(log) == 0  # only *completed* spans hit the ring

    def test_complete_splits_stages_and_accumulates(self):
        clock = FakeClock(1.0)
        log = TraceLog(clock=clock)
        span = log.begin(7)
        record = log.complete(
            span, reason="size", flush_start=1.5, wal_done=1.7,
            apply_done=2.0,
        )
        assert record["kind"] == "span"
        assert record["queued"] == pytest.approx(0.5)
        assert record["wal"] == pytest.approx(0.2)
        assert record["apply"] == pytest.approx(0.3)
        assert record["total"] == pytest.approx(1.0)
        assert record["reason"] == "size"
        assert log.spans_completed == 1
        assert log.events_traced == 7
        assert log.last_span_seconds == pytest.approx(1.0)
        assert log.stage_seconds == {
            "queued": pytest.approx(0.5),
            "wal": pytest.approx(0.2),
            "apply": pytest.approx(0.3),
        }

    def test_out_of_order_timestamps_clamp_to_zero(self):
        log = TraceLog(clock=FakeClock(10.0))
        span = log.begin(1)
        record = log.complete(
            span, reason="latency", flush_start=9.0, wal_done=8.0,
            apply_done=7.0,
        )
        assert all(record[stage] == 0.0 for stage in TRACE_STAGES)
        assert record["total"] == 0.0

    def test_ring_evicts_oldest_but_counters_keep_totals(self):
        clock = FakeClock()
        log = TraceLog(capacity=3, clock=clock)
        for i in range(5):
            span = log.begin(1)
            log.complete(span, reason="size", flush_start=clock.now,
                         wal_done=clock.now, apply_done=clock.now)
        assert len(log) == 3
        assert [r["id"] for r in log.records()] == [3, 4, 5]
        assert log.spans_completed == 5
        assert log.summary()["retained"] == 3
        assert log.summary()["capacity"] == 3

    def test_checkpoint_entries_share_the_ring(self):
        log = TraceLog(clock=FakeClock())
        log.record_checkpoint(0.25, offset=100)
        log.record_checkpoint(-1.0, offset=200)  # clamped, still counted
        records = log.records()
        assert [r["kind"] for r in records] == ["checkpoint", "checkpoint"]
        assert records[0]["duration"] == 0.25
        assert records[1]["duration"] == 0.0
        assert log.checkpoints == 2
        assert log.checkpoint_seconds == 0.25

    def test_records_are_copies(self):
        log = TraceLog(clock=FakeClock())
        log.record_checkpoint(0.1, offset=1)
        log.records()[0]["duration"] = 999.0
        assert log.records()[0]["duration"] == 0.1

    def test_summary_shape(self):
        log = TraceLog(capacity=8, clock=FakeClock())
        assert log.summary() == {
            "spans_started": 0,
            "spans_completed": 0,
            "events_traced": 0,
            "stage_seconds": {stage: 0.0 for stage in TRACE_STAGES},
            "checkpoints": 0,
            "checkpoint_seconds": 0.0,
            "last_span_seconds": 0.0,
            "retained": 0,
            "capacity": 8,
        }


# ----------------------------------------------------------------------
# Integration: spans on the live ingest path
# ----------------------------------------------------------------------
class TestServiceTracing:
    def test_untraced_service_has_no_log(self):
        async def body():
            async with StreamService(SPEC) as service:
                assert service.trace_log is None
                keys, weights = stream(100)
                await service.ingest_many(keys, weights)
                await service.flush()
        run_async(body())

    def test_spans_cover_every_applied_event(self):
        async def body():
            async with StreamService(SPEC, trace=True,
                                     batch_size=64) as service:
                log = service.trace_log
                assert isinstance(log, TraceLog)
                keys, weights = stream(500)
                # Chunked ingest: one span per admitted chunk.
                for start in range(0, 500, 50):
                    await service.ingest_many(
                        keys[start:start + 50], weights[start:start + 50]
                    )
                await service.flush()
                assert log.spans_started == 10
                assert log.spans_completed == 10
                assert log.events_traced == 500
                assert log.events_traced == service.metrics.events_applied
                spans = [r for r in log.records() if r["kind"] == "span"]
                assert sum(r["n"] for r in spans) == 500
                assert all(
                    r["total"] >= r["wal"] + r["apply"] for r in spans
                )
        run_async(body())

    def test_checkpoints_recorded_on_durable_service(self, tmp_path):
        async def body():
            async with StreamService(
                SPEC, dir=tmp_path, trace=True, batch_size=32,
                checkpoint_every_events=64,
            ) as service:
                keys, weights = stream(300)
                await service.ingest_many(keys, weights)
                await service.flush()
            log = service.trace_log
            assert log.checkpoints >= 1
            kinds = {r["kind"] for r in log.records()}
            assert kinds == {"span", "checkpoint"}
        run_async(body())

    def test_tracing_is_not_persisted_but_overridable(self, tmp_path):
        async def body():
            async with StreamService(
                SPEC, dir=tmp_path, trace=True, batch_size=32
            ) as service:
                keys, weights = stream(200)
                await service.ingest_many(keys, weights)
                await service.flush()
            # Tracing is runtime-only config: plain recovery comes back
            # untraced, and an explicit override re-enables it fresh.
            async with StreamService.recover(tmp_path) as plain:
                assert plain.trace_log is None
            async with StreamService.recover(tmp_path, trace=True) as traced:
                assert isinstance(traced.trace_log, TraceLog)
                assert traced.trace_log.spans_started == 0
        run_async(body())

    def test_cluster_trace_flag_survives_restart(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path,
                               trace=True) as cluster:
                for worker in cluster._workers.values():
                    assert isinstance(worker.trace_log, TraceLog)
                name = next(iter(cluster._workers))
                await cluster.restart_service(name)
                assert isinstance(
                    cluster._workers[name].trace_log, TraceLog
                )
        run_async(body())
