"""Alert-rule battery: expression validation, injectable-clock
windowing, ``for_duration`` hysteresis with flap suppression, and every
default rule driven to fire *and* resolve from synthetic
``ServiceMetrics`` snapshots.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    ALERT_METRICS,
    AlertEngine,
    AlertRule,
    ClusterWatcher,
    ServiceWatcher,
    default_rules,
)
from repro.obs.alerts import _window_values
from repro.serve import ServiceMetrics

pytestmark = [pytest.mark.obs, pytest.mark.timeout(120)]


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# Rule construction
# ----------------------------------------------------------------------
class TestRuleValidation:
    def test_unknown_metric_rejected_with_valid_name_list(self):
        with pytest.raises(ValueError) as err:
            AlertRule("bad", "qeue_depth > 5")
        message = str(err.value)
        assert "unknown metric 'qeue_depth'" in message
        # The error must teach the valid vocabulary, not just reject.
        for name in ALERT_METRICS:
            assert name in message

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown operator"):
            AlertRule("bad", "queue_depth >> 5")

    def test_non_numeric_threshold_rejected(self):
        with pytest.raises(ValueError, match="must be a number"):
            AlertRule("bad", "queue_depth > lots")

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="metric op threshold"):
            AlertRule("bad", "queue_depth>5")

    def test_bad_severity_and_duration_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            AlertRule("bad", "queue_depth > 5", severity="panic")
        with pytest.raises(ValueError, match="for_duration"):
            AlertRule("bad", "queue_depth > 5", for_duration=-1)

    def test_missing_metric_reads_condition_false(self):
        rule = AlertRule("r", "workers_down > 0")
        assert rule.holds({"queue_depth": 9.0}) == (False, None)

    def test_duplicate_rule_name_rejected(self):
        engine = AlertEngine([AlertRule("dup", "queue_depth > 1")])
        with pytest.raises(ValueError, match="duplicate"):
            engine.add_rule(AlertRule("dup", "queue_depth > 2"))


# ----------------------------------------------------------------------
# Hysteresis state machine (injectable clock)
# ----------------------------------------------------------------------
class TestHysteresis:
    def engine(self, for_duration: float) -> tuple[AlertEngine, FakeClock]:
        clock = FakeClock()
        rule = AlertRule("lag", "queue_depth > 10",
                         for_duration=for_duration)
        return AlertEngine([rule], clock=clock), clock

    def test_zero_duration_fires_and_resolves_immediately(self):
        engine, _ = self.engine(0.0)
        events = engine.observe({"queue_depth": 11}, now=0.0)
        assert [e.kind for e in events] == ["firing"]
        assert engine.status() == {"lag": "firing"}
        events = engine.observe({"queue_depth": 3}, now=1.0)
        assert [e.kind for e in events] == ["resolved"]
        assert engine.status() == {"lag": "ok"}

    def test_for_duration_gates_firing(self):
        engine, _ = self.engine(1.0)
        assert engine.observe({"queue_depth": 99}, now=0.0) == []
        assert engine.status() == {"lag": "pending"}
        assert engine.observe({"queue_depth": 99}, now=0.5) == []
        events = engine.observe({"queue_depth": 99}, now=1.0)
        assert [e.kind for e in events] == ["firing"]
        assert engine.firing()["lag"]["value"] == 99.0

    def test_resolve_needs_symmetric_clear_window(self):
        engine, _ = self.engine(1.0)
        for t in (0.0, 1.0):
            engine.observe({"queue_depth": 99}, now=t)
        assert engine.status() == {"lag": "firing"}
        # Clear, but not for long enough — still firing.
        assert engine.observe({"queue_depth": 0}, now=1.5) == []
        # A blip back above threshold resets the clear window.
        assert engine.observe({"queue_depth": 99}, now=2.0) == []
        assert engine.observe({"queue_depth": 0}, now=2.4) == []
        assert engine.status() == {"lag": "firing"}
        events = engine.observe({"queue_depth": 0}, now=3.4)
        assert [e.kind for e in events] == ["resolved"]

    def test_flap_inside_pending_window_emits_nothing(self):
        engine, _ = self.engine(1.0)
        for t, depth in ((0.0, 99), (0.5, 0), (1.0, 99), (1.5, 0),
                         (2.0, 99), (2.5, 0)):
            assert engine.observe({"queue_depth": depth}, now=t) == []
        assert engine.transitions == {"firing": 0, "resolved": 0}
        assert engine.events == type(engine.events)(maxlen=256)

    def test_event_history_is_bounded(self):
        engine, _ = self.engine(0.0)
        engine.events = type(engine.events)(maxlen=4)
        for i in range(20):
            engine.observe({"queue_depth": 99 if i % 2 else 0}, now=float(i))
        assert len(engine.events) == 4
        assert engine.transitions["firing"] + engine.transitions["resolved"] > 4

    def test_evaluations_counted(self):
        engine, clock = self.engine(0.0)
        for _ in range(5):
            clock.now += 1.0
            engine.observe({})
        assert engine.evaluations == 5


# ----------------------------------------------------------------------
# Every default rule, fired and resolved from synthetic snapshots
# ----------------------------------------------------------------------
def _snapshot(**fields) -> ServiceMetrics:
    metrics = ServiceMetrics()
    for name, value in fields.items():
        setattr(metrics, name, value)
    return metrics


class TestDefaultRules:
    QUEUE_SIZE = 100

    def window(self, prev: ServiceMetrics, curr: ServiceMetrics, **extra):
        values = _window_values(prev, curr, 1.0, self.QUEUE_SIZE)
        values.setdefault("workers_down", 0.0)
        values.setdefault("circuits_open", 0.0)
        values.update(extra)
        return values

    def drive(self, rule_name: str, quiet: dict, noisy: dict):
        """Assert ``rule_name`` (and only it) fires on ``noisy`` and
        resolves back on ``quiet``."""
        engine = AlertEngine(default_rules(), clock=FakeClock())
        assert engine.observe(quiet, now=0.0) == []
        events = engine.observe(noisy, now=1.0)
        assert [(e.rule, e.kind) for e in events] == [(rule_name, "firing")]
        assert rule_name in engine.firing()
        events = engine.observe(quiet, now=2.0)
        assert [(e.rule, e.kind) for e in events] == [(rule_name, "resolved")]
        assert engine.firing() == {}

    def test_drop_rate(self):
        prev = _snapshot(events_dropped=100)
        curr = _snapshot(events_dropped=150)
        self.drive(
            "drop-rate",
            quiet=self.window(prev, prev),
            noisy=self.window(prev, curr),
        )

    def test_queue_occupancy(self):
        calm = _snapshot(queue_depth=5)
        swamped = _snapshot(queue_depth=95)  # 0.95 of QUEUE_SIZE
        self.drive(
            "queue-occupancy",
            quiet=self.window(calm, calm),
            noisy=self.window(calm, swamped),
        )

    def test_flush_p99_slo(self):
        prev = _snapshot()
        # 20 flushes in the 256ms pow2 bucket: windowed p99 = 0.256s,
        # past the default 0.1s SLO.
        slow = _snapshot(flush_latency_buckets={256: 20})
        self.drive(
            "flush-p99-slo",
            quiet=self.window(prev, prev),
            noisy=self.window(prev, slow),
        )

    def test_worker_down(self):
        base = _snapshot()
        self.drive(
            "worker-down",
            quiet=self.window(base, base),
            noisy=self.window(base, base, workers_down=1.0),
        )

    def test_circuit_open(self):
        base = _snapshot()
        self.drive(
            "circuit-open",
            quiet=self.window(base, base),
            noisy=self.window(base, base, circuits_open=2.0),
        )

    def test_outage_rules_have_no_hysteresis(self):
        # Even when the deployment asks for smoothing on the load rules,
        # an outage must fire within one evaluation.
        rules = {rule.name: rule for rule in default_rules(for_duration=5.0)}
        assert rules["worker-down"].for_duration == 0.0
        assert rules["circuit-open"].for_duration == 0.0
        assert rules["drop-rate"].for_duration == 5.0


# ----------------------------------------------------------------------
# Watchers
# ----------------------------------------------------------------------
class TestWatchers:
    def test_service_watcher_first_sample_is_gauges_only(self):
        clock = FakeClock(10.0)
        service = type("S", (), {})()
        service.metrics = _snapshot(queue_depth=7, events_enqueued=100)
        service.queue_size = 70
        watcher = ServiceWatcher(service, clock=clock)
        first = watcher.sample()
        assert first["queue_depth"] == 7.0
        assert first["queue_occupancy"] == pytest.approx(0.1)
        assert "ingest_rate" not in first  # no window yet

        clock.now = 12.0
        service.metrics = _snapshot(queue_depth=7, events_enqueued=300)
        second = watcher.sample()
        assert second["interval"] == pytest.approx(2.0)
        assert second["ingest_rate"] == pytest.approx(100.0)

    def test_service_watcher_non_advancing_clock_degrades_to_gauges(self):
        clock = FakeClock(5.0)
        service = type("S", (), {})()
        service.metrics = _snapshot(queue_depth=1)
        service.queue_size = 10
        watcher = ServiceWatcher(service, clock=clock)
        watcher.sample()
        stalled = watcher.sample()  # same timestamp: no rate window
        assert "ingest_rate" not in stalled
        assert stalled["queue_depth"] == 1.0

    def test_cluster_watcher_adds_cluster_gauges(self, tmp_path):
        import asyncio
        from repro.serve.cluster import Cluster

        async def body():
            async with Cluster(services=2, dir=tmp_path) as cluster:
                clock = FakeClock(1.0)
                watcher = ClusterWatcher(
                    cluster, circuits=lambda: 3, clock=clock
                )
                first = watcher.sample()
                assert first["workers_down"] == 0.0
                assert first["circuits_open"] == 3.0
                cluster.mark_service_down("svc-0", "maintenance")
                clock.now = 2.0
                second = watcher.sample()
                assert second["workers_down"] == 1.0
                assert second["interval"] == pytest.approx(1.0)
        asyncio.run(body())
