"""Encoder battery: spec-exact escaping, cumulative histograms,
byte-stable rendering.

The property suite round-trips arbitrary names, label values
(newlines, quotes, backslashes, unicode), and histogram buckets through
:func:`repro.obs.parse_exposition` — the reference parser shares no
string-building code with the encoder, so an escaping bug in either
direction breaks the round-trip instead of cancelling out.
"""

from __future__ import annotations

import math

import pytest

from hypothesis import given, settings, strategies as st

from repro.obs import (
    MetricFamily,
    PrometheusRegistry,
    escape_help,
    escape_label_value,
    format_value,
    parse_exposition,
    render,
)

pytestmark = [pytest.mark.obs, pytest.mark.timeout(120)]


# ----------------------------------------------------------------------
# Unit: escaping and value formatting
# ----------------------------------------------------------------------
class TestEscaping:
    def test_label_value_escapes(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_label_backslash_escaped_before_quote_and_newline(self):
        # A pre-escaped-looking input must stay distinguishable: the
        # literal two characters ``\`` ``n`` render as ``\\n``, not
        # as an (ambiguous) escaped newline.
        assert escape_label_value("\\n") == "\\\\n"
        assert escape_label_value("\n") == "\\n"

    def test_help_escapes_backslash_and_newline_only(self):
        assert escape_help('say "hi"\n\\done') == 'say "hi"\\n\\\\done'

    def test_format_value_spellings(self):
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"
        assert format_value(3) == "3.0"
        assert format_value(0.25) == "0.25"


# ----------------------------------------------------------------------
# Unit: family construction guards
# ----------------------------------------------------------------------
class TestMetricFamily:
    def test_rejects_bad_name(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricFamily("2bad", "counter", "")

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="unknown metric kind"):
            MetricFamily("ok", "summary", "")

    def test_rejects_bad_label_name(self):
        with pytest.raises(ValueError, match="invalid label name"):
            MetricFamily("ok", "gauge", "").add(1.0, {"bad-name": "x"})

    def test_rejects_reserved_le_label(self):
        with pytest.raises(ValueError, match="'le' label is reserved"):
            MetricFamily("ok", "gauge", "").add(1.0, {"le": "0.5"})

    def test_add_on_histogram_rejected(self):
        with pytest.raises(ValueError, match="add_histogram"):
            MetricFamily("ok", "histogram", "").add(1.0)

    def test_add_histogram_on_counter_rejected(self):
        with pytest.raises(ValueError, match="histogram family"):
            MetricFamily("ok", "counter", "").add_histogram({1.0: 1}, 1.0)

    def test_histogram_rejects_infinite_bound(self):
        with pytest.raises(ValueError, match="finite"):
            MetricFamily("ok", "histogram", "").add_histogram(
                {math.inf: 1}, 0.0
            )

    def test_histogram_rejects_negative_count(self):
        with pytest.raises(ValueError, match="non-negative"):
            MetricFamily("ok", "histogram", "").add_histogram(
                {1.0: -1}, 0.0
            )

    def test_histogram_count_must_cover_buckets(self):
        with pytest.raises(ValueError, match="cover"):
            MetricFamily("ok", "histogram", "").add_histogram(
                {1.0: 5}, 0.0, count=3
            )

    def test_histogram_count_beyond_buckets_is_the_inf_overflow(self):
        family = MetricFamily("ok", "histogram", "").add_histogram(
            {1.0: 2, 2.0: 3}, sum_value=9.0, count=10
        )
        parsed = parse_exposition(render([family]))
        buckets = {
            labels["le"]: value
            for suffix, labels, value in parsed["ok"]["samples"]
            if suffix == "_bucket"
        }
        assert buckets == {"1.0": 2.0, "2.0": 5.0, "+Inf": 10.0}


# ----------------------------------------------------------------------
# Unit: registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            PrometheusRegistry().register([MetricFamily("x", "gauge", "")])

    def test_rejects_duplicate_family_names_across_collectors(self):
        registry = (
            PrometheusRegistry()
            .register(lambda: [MetricFamily("dup", "gauge", "").add(1)])
            .register(lambda: [MetricFamily("dup", "gauge", "").add(2)])
        )
        with pytest.raises(ValueError, match="duplicate metric family"):
            registry.render()

    def test_collectors_run_fresh_per_scrape(self):
        state = {"v": 0}

        def collector():
            state["v"] += 1
            return [MetricFamily("live", "gauge", "").add(state["v"])]

        registry = PrometheusRegistry().register(collector)
        assert "live 1.0" in registry.render()
        assert "live 2.0" in registry.render()


# ----------------------------------------------------------------------
# Unit: parser as an oracle
# ----------------------------------------------------------------------
class TestParser:
    def test_rejects_malformed_sample_line(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_exposition("{x} nope\n")

    def test_rejects_non_monotone_histogram(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="2.0"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
        )
        with pytest.raises(ValueError, match="monotone"):
            parse_exposition(text)

    def test_rejects_histogram_without_inf_terminator(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_exposition(text)

    def test_suffix_attribution_only_for_histogram_types(self):
        # A *gauge* named like a histogram series must stay its own
        # family — attribution keys off the declared TYPE, not the name.
        text = (
            "# TYPE queue_count gauge\n"
            "queue_count 4\n"
        )
        parsed = parse_exposition(text)
        assert parsed["queue_count"]["samples"] == [("", {}, 4.0)]
        assert "queue" not in parsed


# ----------------------------------------------------------------------
# Property battery
# ----------------------------------------------------------------------
metric_names = st.from_regex(r"[a-zA-Z_:][a-zA-Z0-9_:]{0,30}", fullmatch=True)
label_names = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,15}", fullmatch=True).filter(
    lambda name: name != "le"
)
# Arbitrary text including the three escaped characters and unicode.
label_values = st.text(
    alphabet=st.one_of(
        st.characters(blacklist_categories=("Cs",)),
        st.sampled_from(['"', "\\", "\n", "{", "}", ",", "="]),
    ),
    max_size=40,
)
finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=64
)
label_dicts = st.dictionaries(label_names, label_values, max_size=4)


@settings(max_examples=150, deadline=None)
@given(
    name=metric_names,
    kind=st.sampled_from(["counter", "gauge"]),
    help_text=st.text(max_size=60),
    rows=st.lists(
        st.tuples(label_dicts, finite_floats), min_size=1, max_size=5
    ),
)
def test_scalar_samples_round_trip(name, kind, help_text, rows):
    """Names, labels (any text), HELP, and values survive render→parse."""
    family = MetricFamily(name, kind, help_text)
    for labels, value in rows:
        family.add(value, labels)
    parsed = parse_exposition(render([family]))

    # The family may be re-keyed only if the *parser* attributed a
    # histogram suffix — impossible here because the TYPE is scalar.
    assert set(parsed) == {name}
    assert parsed[name]["type"] == kind
    # The parser strips each physical line, so raw trailing whitespace
    # in HELP (never produced by our own adapters) is not preserved;
    # everything else must round-trip exactly.
    assert parsed[name]["help"] == help_text.rstrip()
    got = [(labels, value) for _, labels, value in parsed[name]["samples"]]
    assert len(got) == len(rows)
    for (labels, value), (got_labels, got_value) in zip(rows, got):
        assert got_labels == labels
        assert got_value == value


@settings(max_examples=150, deadline=None)
@given(
    name=metric_names,
    labels=label_dicts,
    buckets=st.dictionaries(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.integers(min_value=0, max_value=10**6),
        max_size=8,
    ),
    overflow=st.integers(min_value=0, max_value=10**6),
    sum_value=finite_floats,
)
def test_histogram_cumulative_monotone_ending_inf(
    name, labels, buckets, overflow, sum_value
):
    """Raw buckets render as a cumulative monotone series ending +Inf,
    with ``_count`` covering the overflow and ``_sum`` intact."""
    total = sum(buckets.values()) + overflow
    family = MetricFamily(name, "histogram", "h").add_histogram(
        buckets, sum_value=sum_value, labels=labels, count=total
    )
    parsed = parse_exposition(render([family]))  # validates monotone/+Inf
    samples = parsed[name]["samples"]

    series = {}
    for suffix, got_labels, value in samples:
        if suffix == "_bucket":
            series[got_labels.pop("le")] = value
            assert got_labels == labels
    expected_cumulative = 0.0
    for upper in sorted(buckets):
        expected_cumulative += buckets[upper]
        assert series[format_value(upper)] == expected_cumulative
    assert series["+Inf"] == total
    assert len(series) == len(buckets) + 1

    sums = [v for s, _, v in samples if s == "_sum"]
    counts = [v for s, _, v in samples if s == "_count"]
    assert sums == [sum_value]
    assert counts == [float(total)]


@settings(max_examples=75, deadline=None)
@given(
    rows=st.lists(
        st.tuples(label_dicts, finite_floats), min_size=1, max_size=4
    ),
    buckets=st.dictionaries(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.integers(min_value=0, max_value=1000),
        max_size=5,
    ),
)
def test_rendering_is_byte_stable(rows, buckets):
    """The same registry state renders to identical bytes, scrape after
    scrape — families in registration order, label keys sorted."""
    def collector():
        gauge = MetricFamily("stable_gauge", "gauge", "g")
        for labels, value in rows:
            gauge.add(value, labels)
        hist = MetricFamily("stable_hist", "histogram", "h").add_histogram(
            buckets, sum_value=1.0
        )
        return [gauge, hist]

    registry = PrometheusRegistry().register(collector)
    first = registry.render()
    assert all(registry.render() == first for _ in range(3))
    # Label *insertion* order must not leak into the bytes.
    reordered = [
        (dict(reversed(list(labels.items()))), value)
        for labels, value in rows
    ]
    gauge = MetricFamily("stable_gauge", "gauge", "g")
    for labels, value in reordered:
        gauge.add(value, labels)
    hist = MetricFamily("stable_hist", "histogram", "h").add_histogram(
        buckets, sum_value=1.0
    )
    assert render([gauge, hist]) == first


@settings(max_examples=100, deadline=None)
@given(help_text=st.text(max_size=80).map(lambda s: s.rstrip()))
def test_help_round_trips(help_text):
    family = MetricFamily("h", "gauge", help_text).add(0.0)
    parsed = parse_exposition(render([family]))
    assert parsed["h"]["help"] == help_text
