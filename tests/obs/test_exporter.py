"""Scrape-serving battery: the HTTP helpers, the standalone exporter,
and the frontend's dual-protocol port (HTTP sniff + ``scrape``/``trace``
frame verbs on the same listener).
"""

from __future__ import annotations

import asyncio
import contextlib
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsExporter,
    SCRAPE_CONTENT_TYPE,
    parse_exposition,
    service_registry,
)
from repro.obs.exporter import http_response
from repro.serve import StreamService
from repro.serve.cluster import Cluster, ClusterClient, ClusterFrontend

from tests.cluster.common import run_async, tenant_spec, tenant_stream

pytestmark = [pytest.mark.obs, pytest.mark.timeout(120)]

SPEC = {"name": "bottom_k", "params": {"k": 32, "rng": 7}}


def _fetch(url: str) -> tuple[int, dict, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=10) as reply:
            return reply.status, dict(reply.headers), reply.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


@contextlib.asynccontextmanager
async def served(n_services: int = 2, **cluster_kwargs):
    async with Cluster(services=n_services, **cluster_kwargs) as cluster:
        async with ClusterFrontend(cluster) as frontend:
            client = await ClusterClient.connect(*frontend.address)
            try:
                yield cluster, frontend, client
            finally:
                await client.aclose()


class TestHttpHelpers:
    def test_response_shape(self):
        raw = http_response("body\n")
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert f"Content-Type: {SCRAPE_CONTENT_TYPE}".encode() in head
        assert b"Content-Length: 5" in head
        assert b"Connection: close" in head
        assert payload == b"body\n"

    def test_status_override(self):
        raw = http_response("gone", status=404, reason="Not Found")
        assert raw.startswith(b"HTTP/1.1 404 Not Found\r\n")


class TestMetricsExporter:
    def test_address_requires_start(self):
        exporter = MetricsExporter(None)
        with pytest.raises(RuntimeError, match="not started"):
            exporter.address

    def test_double_start_rejected(self):
        async def body():
            async with StreamService(SPEC) as service:
                exporter = MetricsExporter(service_registry(service))
                async with exporter:
                    with pytest.raises(RuntimeError, match="already"):
                        await exporter.start()
                # stop() is idempotent.
                await exporter.stop()
        run_async(body())

    def test_curl_style_scrape_parses(self):
        async def body():
            async with StreamService(SPEC, trace=True) as service:
                await service.ingest_many(tenant_stream(3, 250))
                await service.flush()
                async with MetricsExporter(
                    service_registry(service)
                ) as exporter:
                    host, port = exporter.address
                    status, headers, body_bytes = await asyncio.to_thread(
                        _fetch, f"http://{host}:{port}/metrics"
                    )
            assert status == 200
            assert headers["Content-Type"] == SCRAPE_CONTENT_TYPE
            assert int(headers["Content-Length"]) == len(body_bytes)
            parsed = parse_exposition(body_bytes.decode("utf-8"))
            samples = parsed["repro_service_events_applied_total"]["samples"]
            assert samples == [("", {}, 250.0)]
            assert "repro_trace_spans_completed_total" in parsed
        run_async(body())

    def test_query_string_and_404(self):
        async def body():
            async with StreamService(SPEC) as service:
                async with MetricsExporter(
                    service_registry(service)
                ) as exporter:
                    host, port = exporter.address
                    ok, _, _ = await asyncio.to_thread(
                        _fetch, f"http://{host}:{port}/metrics?debug=1"
                    )
                    missing, _, text = await asyncio.to_thread(
                        _fetch, f"http://{host}:{port}/other"
                    )
            assert ok == 200
            assert missing == 404
            assert b"scrape /metrics" in text
        run_async(body())


class TestFrontendScrape:
    def test_http_scrape_on_the_frame_port(self, tmp_path):
        async def body():
            async with served(dir=tmp_path) as (cluster, frontend, client):
                await client.create_tenant("acme", tenant_spec(0))
                await client.ingest_many("acme", tenant_stream(0, 300).tolist())
                await client.admin("flush")
                host, port = frontend.address
                status, headers, body_bytes = await asyncio.to_thread(
                    _fetch, f"http://{host}:{port}/metrics"
                )
                assert status == 200
                assert headers["Content-Type"] == SCRAPE_CONTENT_TYPE
                parsed = parse_exposition(body_bytes.decode("utf-8"))
                # One scrape carries every layer: cluster, tenant,
                # sampler, and the frontend's own counters.
                assert parsed["repro_cluster_tenants"]["samples"] == \
                    [("", {}, 1.0)]
                assert "repro_tenant_events_applied_total" in parsed
                assert "repro_sampler_fill" in parsed
                assert "repro_frontend_scrapes_total" in parsed

                # The frame protocol still works on the same port after
                # HTTP connections came and went.
                estimate = await client.estimate("acme", "total")
                assert estimate["estimate"] > 0
                assert frontend.metrics.scrapes_served == 1
        run_async(body())

    def test_scrape_verb_over_frames(self, tmp_path):
        async def body():
            async with served(dir=tmp_path) as (cluster, frontend, client):
                await client.create_tenant("acme", tenant_spec(0))
                text = await client.scrape()
                parsed = parse_exposition(text)
                assert "repro_cluster_services" in parsed
                # The scrape counts itself before rendering, so each
                # exposition already includes its own serving.
                count = parsed["repro_frontend_scrapes_total"]["samples"]
                assert count == [("", {}, 1.0)]
                text = await client.scrape()
                scraped = parse_exposition(text)
                count = scraped["repro_frontend_scrapes_total"]["samples"]
                assert count == [("", {}, 2.0)]
                assert frontend.metrics.scrapes_served == 2
        run_async(body())

    def test_trace_verb(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path,
                               trace=True) as cluster:
                async with ClusterFrontend(cluster) as frontend:
                    client = await ClusterClient.connect(*frontend.address)
                    try:
                        await client.create_tenant("acme", tenant_spec(0))
                        await client.ingest_many(
                            "acme", tenant_stream(0, 300).tolist()
                        )
                        await client.admin("flush")

                        overview = await client.trace()
                        assert set(overview["services"]) == \
                            set(cluster.services)
                        assert any(
                            summary is not None and
                            summary["spans_completed"] > 0
                            for summary in overview["services"].values()
                        )

                        name = cluster.registry.get("acme").service
                        detail = await client.trace(name)
                        assert detail["enabled"] is True
                        # The tenant-create row rides the ingest path
                        # too, so the span coverage is >= the payload.
                        traced = detail["summary"]["events_traced"]
                        assert traced >= 300
                        spans = [r for r in detail["records"]
                                 if r["kind"] == "span"]
                        assert sum(r["n"] for r in spans) == traced
                        assert frontend.metrics.trace_reads == 2

                        with pytest.raises(RuntimeError, match="nope"):
                            await client.call(
                                {"verb": "trace", "service": "nope"}
                            )
                    finally:
                        await client.aclose()
        run_async(body())

    def test_trace_verb_reports_disabled_when_untraced(self, tmp_path):
        async def body():
            async with served(dir=tmp_path) as (cluster, frontend, client):
                name = cluster.services[0]
                detail = await client.trace(name)
                assert detail["enabled"] is False
                assert detail["records"] == []
                assert detail["summary"] is None
        run_async(body())
