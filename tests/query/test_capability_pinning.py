"""Pinning tests: the capability table is the single source of truth.

The drift this suite removes: ``estimate_kinds()`` listings, unknown-kind
error messages, and the query layer's supported/gap story used to be free
to disagree (hand-maintained strings vs. what ``estimate()``/``query()``
actually accept).  Now everything derives from two authorities — the
scanned ``estimate_*`` surface and the declared ``query_capabilities``
table — and these tests pin the derivations so no sampler can advertise
one thing and accept another.
"""

from __future__ import annotations

import pytest

import repro
from repro import ShardedSampler
from repro.api.protocol import _NO_SAMPLE_REASON, QUERY_AGGREGATES, StreamSampler
from repro.api.registry import available_samplers, get_sampler_class
from repro.query import capability_markdown, capability_table

from .test_contract import CASES, EXCLUDED


def _stream_sampler_classes():
    return [
        (name, get_sampler_class(name))
        for name in available_samplers()
        if issubclass(get_sampler_class(name), StreamSampler)
    ]


# ----------------------------------------------------------------------
# Capability tables are complete, explicit, and well-formed
# ----------------------------------------------------------------------
def test_capability_table_covers_every_registered_name():
    table = capability_table()
    assert set(table) == set(available_samplers())
    for name, row in table.items():
        assert tuple(row) == QUERY_AGGREGATES + ("windowed",), name
        for aggregate, entry in row.items():
            assert entry is True or (isinstance(entry, str) and entry), (
                f"{name}.{aggregate} must be True or a non-empty reason"
            )


def test_every_class_declares_capabilities_explicitly():
    """No registered class rides on the protocol's undeclared default."""
    for name in available_samplers():
        cls = get_sampler_class(name)
        caps = getattr(cls, "query_capabilities", None)
        assert caps is not None, name
        assert not any(
            caps.get(a) == _NO_SAMPLE_REASON for a in QUERY_AGGREGATES
        ), f"{name} still uses the base-class placeholder capability table"


def test_query_variance_declarations_are_wellformed():
    for name, cls in _stream_sampler_classes():
        flag = cls.query_variance
        assert flag is True or (isinstance(flag, str) and flag), name


def test_query_windowed_declarations_are_wellformed():
    for name, cls in _stream_sampler_classes():
        flag = getattr(cls, "query_windowed")
        assert flag is True or (isinstance(flag, str) and flag), name


def test_windowed_declarations_match_time_indexed_samples():
    """A class declaring ``query_windowed = True`` must actually emit a
    time column from a time-fed stream (and the planner refuses the rest
    with the declared reason — the drift this pin removes is a sampler
    advertising windowed queries whose samples carry no times)."""
    import numpy as np

    sampler = repro.make_sampler("sliding_window", k=8, window=10.0)
    for i in range(32):
        sampler.update(i, time=float(i))
    assert sampler.sample().times is not None
    decayed = repro.make_sampler("time_decay", k=8, decay_rate=0.1)
    for i in range(32):
        decayed.update(i, time=float(i))
    assert decayed.sample().times is not None
    timed_bk = repro.make_sampler("bottom_k", k=8, rng=0)
    timed_bk.update_many(np.arange(32), times=np.arange(32.0))
    assert timed_bk.sample().times is not None


def test_probability_one_samples_declare_no_variance_story():
    """Samplers whose rows degenerate to probability 1 must not claim the
    HT plug-in variance (it would be identically zero, not an estimate)."""
    for case in CASES:
        sampler = case.build()
        case.feed(sampler)
        if not sampler.supported_aggregates():
            continue
        probs = sampler.sample().probabilities
        if probs.size and (probs == 1.0).all():
            assert sampler.query_variance is not True, (
                f"{case.name}: all-probability-1 sample but query_variance "
                "declares the HT plug-in applies"
            )
            # Probability-1 rows carry pre-corrected values: only the
            # sum-style aggregates over those values stay meaningful.
            # count degenerates to the table size, mean/quantile to
            # statistics of the corrected values (the varopt bug class).
            assert set(sampler.supported_aggregates()) <= {"sum", "topk"}, (
                f"{case.name}: probability-1 sample claims an aggregate "
                "that degenerates (count/mean/distinct/quantile)"
            )


# ----------------------------------------------------------------------
# estimate_kinds() and its error message derive from live surfaces
# ----------------------------------------------------------------------
def test_estimate_kinds_match_scanned_methods():
    for name, cls in _stream_sampler_classes():
        scanned = tuple(
            sorted(
                attr[len("estimate_"):]
                for attr in dir(cls)
                if attr.startswith("estimate_")
                and attr != "estimate_kinds"
                and callable(getattr(cls, attr))
            )
        )
        assert cls.estimate_kinds() == scanned, name


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_unknown_kind_message_lists_both_surfaces(case):
    """The unknown-kind error enumerates exactly the advertised kinds and
    (when the sampler answers queries) exactly the supported aggregates."""
    sampler = case.build()
    if sampler.legacy_estimate_param is not None:
        # Unknown kinds route down the legacy positional-key path for
        # these samplers (with a deprecation warning), so the message is
        # checked at its source instead.
        with pytest.warns(DeprecationWarning):
            sampler.estimate("definitely_not_a_kind")
        message = sampler._unknown_kind_message("definitely_not_a_kind")
    else:
        with pytest.raises(ValueError) as err:
            sampler.estimate("definitely_not_a_kind")
        message = str(err.value)
    for kind in sampler.estimate_kinds():
        assert kind in message
    supported = sampler.supported_aggregates()
    if supported:
        assert ".query()" in message
        for aggregate in supported:
            assert aggregate in message
    else:
        assert ".query()" not in message


def test_supported_aggregates_reads_instance_mirror():
    """The engine's instance-level mirror is what listings consult."""
    engine = ShardedSampler({"name": "theta", "params": {"k": 16}}, n_shards=2)
    theta = get_sampler_class("theta")
    assert engine.supported_aggregates() == tuple(
        a for a in QUERY_AGGREGATES if theta.query_capabilities[a] is True
    )
    # Class-level access still shows the declared placeholder row — for
    # the variance flag too, so the generated matrix cannot claim
    # unconditional CI support for the engine.
    assert all(
        isinstance(v, str) for v in ShardedSampler.query_capabilities.values()
    )
    assert isinstance(ShardedSampler.query_variance, str)
    # Instances mirror the shard class's variance declaration both ways.
    assert engine.query_variance is theta.query_variance
    bk_engine = ShardedSampler(
        {"name": "bottom_k", "params": {"k": 4}}, n_shards=2
    )
    assert bk_engine.query_variance is True
    # ... and the windowed declaration, so the planner's windowed gate
    # sees the shard class's answer through the engine too.
    assert isinstance(ShardedSampler.query_windowed, str)
    assert bk_engine.query_windowed is True
    assert engine.query_windowed == theta.query_windowed


def test_gap_reason_lookup_rejects_unknown_aggregates():
    sampler = repro.make_sampler("bottom_k", k=4)
    with pytest.raises(ValueError, match="unknown query aggregate"):
        sampler.query_gap_reason("median")


# ----------------------------------------------------------------------
# The rendered matrix derives from the table (docs pin against this)
# ----------------------------------------------------------------------
def test_capability_markdown_is_faithful():
    markdown = capability_markdown()
    table = capability_table()
    lines = [l for l in markdown.splitlines() if l.startswith("| `")]
    assert len(lines) == len(table)
    for line in lines:
        name = line.split("`")[1]
        cells = [c.strip() for c in line.strip("|").split("|")][1:]
        row = table[name]
        for aggregate, cell in zip(QUERY_AGGREGATES + ("windowed",), cells):
            if row[aggregate] is True:
                assert cell == "yes"
            else:
                assert cell.startswith("—")
    # Every footnoted reason appears verbatim.
    for row in table.values():
        for entry in row.values():
            if entry is not True:
                assert str(entry) in markdown


# ----------------------------------------------------------------------
# The estimate() facade and the query layer agree (both directions)
# ----------------------------------------------------------------------
def _timed_sliding_window():
    sampler = repro.make_sampler("sliding_window", k=64, window=2.0, rng=11)
    for i in range(400):
        sampler.update(i, time=i * 0.01)
    return sampler


def _timed_decay():
    sampler = repro.make_sampler("time_decay", k=64, decay_rate=0.5, rng=12)
    for i in range(400):
        sampler.update(i, time=i * 0.01)
    return sampler


def test_sliding_window_facade_and_query_agree():
    """``estimate('window_count')`` and the declarative windowed count
    answer the same question — and give the same number."""
    sampler = _timed_sliding_window()
    facade = sampler.estimate("window_count")
    declarative = sampler.query("count").estimate
    assert facade == pytest.approx(declarative)
    # The other direction: every advertised aggregate actually runs.
    for aggregate in sampler.supported_aggregates():
        kw = {"k": 3} if aggregate == "topk" else (
            {"q": 0.5} if aggregate == "quantile" else {}
        )
        sampler.query(aggregate, **kw)


def test_time_decay_facade_and_query_agree():
    """``estimate('decayed_total')`` equals ``query('sum', decay=rate)``:
    the decayed HT total through the facade and through the windowed
    query path are the same estimator over the same sample."""
    sampler = _timed_decay()
    facade = sampler.estimate("decayed_total")
    declarative = sampler.query(
        "sum", decay=sampler.decay_rate
    ).estimate
    assert facade == pytest.approx(declarative)
    # Explicit now= matches the facade's now= too.
    assert sampler.estimate("decayed_total", now=10.0) == pytest.approx(
        sampler.query("sum", decay=sampler.decay_rate, now=10.0).estimate
    )
    for aggregate in sampler.supported_aggregates():
        kw = {"k": 3} if aggregate == "topk" else (
            {"q": 0.5} if aggregate == "quantile" else {}
        )
        sampler.query(aggregate, **kw)


def test_unsupported_time_scope_is_refused_with_declared_reason():
    """A sampler that declares no windowed story refuses window=/last=/
    decay= with its declared reason — before any execution."""
    from repro.query import QueryCapabilityError

    sampler = repro.make_sampler("theta", k=32)
    for i in range(100):
        sampler.update(i)
    with pytest.raises(QueryCapabilityError, match="time-scoped"):
        sampler.query("distinct", last=5.0)


def test_exclusions_are_exactly_the_non_protocol_classes():
    non_protocol = {
        name
        for name in available_samplers()
        if not issubclass(get_sampler_class(name), StreamSampler)
    }
    assert set(EXCLUDED) == non_protocol
