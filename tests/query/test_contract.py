"""Contract suite for the declarative query layer.

Mirrors the API contract suite's shape: one case table covering every
registered sampler, with coverage enforced — each name either has a query
case (its supported aggregates all smoke-execute, its declared gaps all
raise :class:`repro.query.QueryCapabilityError` with the declared reason)
or sits in ``EXCLUDED`` with the reason it is out of protocol.

On top of the per-sampler sweep: group-by fan-out must agree with the
equivalent ``where=`` queries, the result cache must hit between updates
and invalidate on any mutation, and sharded engines must answer
bit-identically to single instances on the hash-coordinated sketches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np
import pytest

import repro
from repro import Query, QueryCapabilityError, QueryResult, ShardedSampler, make_sampler
from repro.api.protocol import QUERY_AGGREGATES

N = 4000
UNIVERSE = 500


def _workload() -> dict:
    rng = np.random.default_rng(7)
    keys = rng.integers(0, UNIVERSE, N).astype(np.int64)
    per_key = np.random.default_rng(8).lognormal(0.0, 0.5, UNIVERSE)
    return {
        "keys": keys,
        "weights": per_key[keys],
        "per_key": per_key,
        "times": np.cumsum(rng.exponential(1e-3, N)),
        "sizes": np.ones(N),
        "unique": np.unique(keys),
    }


W = _workload()


def _feed_weighted(s):
    s.update_many(W["keys"], W["weights"])


def _feed_unweighted(s):
    s.update_many(W["keys"])


def _feed_sized(s):
    s.update_many(W["keys"], W["weights"], sizes=W["sizes"])


def _feed_timed(s):
    s.update_many(W["keys"], W["weights"], times=W["times"])


def _feed_window(s):
    s.update_many(W["keys"], times=W["times"])


def _feed_grouped(s):
    s.update_many(W["keys"], groups=[f"g{int(k) % 5}" for k in W["keys"]])


def _feed_stratified(s):
    s.update_many(W["keys"], strata=[(int(k) % 3, int(k) % 5) for k in W["keys"]])


def _feed_multiweight(s):
    unique = W["unique"]
    cols = W["per_key"][unique]
    s.update_many(unique, weights={"a": cols, "b": 1.0 + cols})


def _feed_mux(s):
    s.update_many([("t0", int(k)) for k in W["keys"]], W["weights"])


@dataclass
class QueryCase:
    """One sampler configuration driven through every aggregate."""

    name: str
    build: Callable[[], object]
    feed: Callable[[object], None]


CASES = [
    QueryCase("bottom_k", lambda: make_sampler("bottom_k", k=64, rng=0), _feed_weighted),
    QueryCase("poisson", lambda: make_sampler("poisson", threshold=0.05, rng=0), _feed_weighted),
    QueryCase("varopt", lambda: make_sampler("varopt", k=64, rng=0), _feed_weighted),
    QueryCase(
        "variance_target",
        lambda: make_sampler("variance_target", delta=60.0, horizon=N, rng=0),
        _feed_weighted,
    ),
    QueryCase("budget", lambda: make_sampler("budget", budget=60.0, rng=0), _feed_sized),
    QueryCase("top_k", lambda: make_sampler("top_k", k=32, rng=0), _feed_unweighted),
    QueryCase(
        "space_saving", lambda: make_sampler("space_saving", capacity=32), _feed_unweighted
    ),
    QueryCase(
        "frequent_items",
        lambda: make_sampler("frequent_items", max_map_size=32),
        _feed_unweighted,
    ),
    QueryCase(
        "unbiased_space_saving",
        lambda: make_sampler("unbiased_space_saving", capacity=32, rng=0),
        _feed_unweighted,
    ),
    QueryCase(
        "weighted_distinct",
        lambda: make_sampler("weighted_distinct", k=64, salt=0),
        _feed_weighted,
    ),
    QueryCase(
        "adaptive_distinct",
        lambda: make_sampler("adaptive_distinct", k=64, salt=0),
        _feed_unweighted,
    ),
    QueryCase("kmv", lambda: make_sampler("kmv", k=32, salt=0), _feed_unweighted),
    QueryCase("theta", lambda: make_sampler("theta", k=32, salt=0), _feed_unweighted),
    QueryCase(
        "grouped_distinct",
        lambda: make_sampler("grouped_distinct", m=4, k=8, salt=0),
        _feed_grouped,
    ),
    QueryCase(
        "multi_stratified",
        lambda: make_sampler("multi_stratified", n_dims=2, k=16, salt=0),
        _feed_stratified,
    ),
    QueryCase(
        "multi_objective",
        lambda: make_sampler("multi_objective", k=32, objectives=("a", "b"), salt=0),
        _feed_multiweight,
    ),
    QueryCase(
        "sliding_window",
        lambda: make_sampler("sliding_window", k=64, window=1.0, rng=0),
        _feed_window,
    ),
    QueryCase(
        "time_decay",
        lambda: make_sampler("time_decay", k=64, decay_rate=1.0, rng=0),
        _feed_timed,
    ),
    QueryCase(
        "sharded",
        lambda: ShardedSampler({"name": "bottom_k", "params": {"k": 64}}, n_shards=4),
        _feed_weighted,
    ),
    # The mux is in-protocol but answers no aggregates itself: every entry
    # is a tenant-scoped gap reason, so this case only exercises the
    # refusal path (queries run against the per-tenant child samplers).
    QueryCase(
        "tenant_mux",
        lambda: make_sampler(
            "tenant_mux",
            tenants={"t0": {"name": "bottom_k", "params": {"k": 64, "rng": 0}}},
        ),
        _feed_mux,
    ),
]

#: Registered names with no query case, and why.
EXCLUDED = {
    "cps": "offline design outside the StreamSampler protocol",
    "priority_layout": "offline physical layout outside the StreamSampler protocol",
    "multi_objective_layout": "offline physical layout outside the StreamSampler protocol",
}


def test_every_registered_sampler_has_a_query_case_or_exclusion():
    covered = {case.name for case in CASES}
    assert covered | set(EXCLUDED) == set(repro.available_samplers())
    assert not covered & set(EXCLUDED)


def _built(case: QueryCase):
    sampler = case.build()
    case.feed(sampler)
    return sampler


def _assert_scalar_result(result: QueryResult, with_variance: bool, level):
    assert math.isfinite(float(result.estimate))
    if with_variance:
        assert result.variance is not None and result.variance >= 0.0
        assert result.stderr == pytest.approx(math.sqrt(max(result.variance, 0.0)))
        if level is not None:
            lo, hi = result.ci
            assert lo <= result.estimate <= hi
            assert result.level == level
    else:
        assert result.variance is None and result.stderr is None
        assert result.ci is None


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_supported_aggregates_execute(case):
    """Every aggregate a sampler advertises runs and returns sane fields."""
    sampler = _built(case)
    with_variance = sampler.query_variance is True
    level = 0.95 if with_variance else None
    for aggregate in sampler.supported_aggregates():
        result = sampler.query(Query(aggregate=aggregate, ci=level))
        assert result.aggregate == aggregate
        assert result.sample_size >= 0
        if aggregate == "topk":
            assert isinstance(result.estimate, tuple)
            for item in result.estimate:
                assert math.isfinite(item.estimate)
        elif aggregate == "quantile":
            assert math.isfinite(float(result.estimate))
            if level is not None and result.sample_size:
                lo, hi = result.ci
                assert lo <= hi
        else:
            _assert_scalar_result(result, with_variance, level)


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_declared_gaps_raise_with_reason(case):
    """Unsupported aggregates raise, carrying the declared reason."""
    sampler = _built(case)
    for aggregate in QUERY_AGGREGATES:
        reason = sampler.query_gap_reason(aggregate)
        if reason is None:
            continue
        with pytest.raises(QueryCapabilityError) as err:
            sampler.query(aggregate)
        assert reason in str(err.value)


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_ci_requests_honor_variance_declaration(case):
    """ci= raises (with the declared reason) iff no variance story."""
    sampler = _built(case)
    supported = sampler.supported_aggregates()
    if not supported:
        return
    aggregate = supported[0]
    if sampler.query_variance is True:
        sampler.query(Query(aggregate=aggregate, ci=0.5))
    else:
        with pytest.raises(QueryCapabilityError) as err:
            sampler.query(Query(aggregate=aggregate, ci=0.5))
        assert str(sampler.query_variance) in str(err.value)


# ----------------------------------------------------------------------
# Group-by semantics
# ----------------------------------------------------------------------
def test_group_by_matches_where_fanout():
    """Each group's sub-result equals the equivalent where= query."""
    sampler = make_sampler("bottom_k", k=128, rng=0)
    _feed_weighted(sampler)
    grouped = sampler.query(
        Query("sum", group_by=lambda k: int(k) % 3, ci=0.95)
    )
    assert set(grouped.groups) == {0, 1, 2}
    for g, sub in grouped.groups.items():
        direct = sampler.query(
            Query("sum", where=lambda k, g=g: int(k) % 3 == g, ci=0.95)
        )
        assert sub.estimate == pytest.approx(direct.estimate, rel=1e-12)
        assert sub.variance == pytest.approx(direct.variance, rel=1e-12)
        assert sub.ci == pytest.approx(direct.ci, rel=1e-12)
    # The top-level fields hold the ungrouped answer over the selection.
    overall = sampler.query(Query("sum", ci=0.95))
    assert grouped.estimate == pytest.approx(overall.estimate, rel=1e-12)


def test_group_by_mean_matches_where_fanout():
    sampler = make_sampler("bottom_k", k=128, rng=0)
    _feed_weighted(sampler)
    grouped = sampler.query(Query("mean", group_by=lambda k: int(k) % 2, ci=0.9))
    for g, sub in grouped.groups.items():
        direct = sampler.query(
            Query("mean", where=lambda k, g=g: int(k) % 2 == g, ci=0.9)
        )
        assert sub.estimate == pytest.approx(direct.estimate, rel=1e-12)
        assert sub.variance == pytest.approx(direct.variance, rel=1e-12)


def test_group_by_accepts_precomputed_labels_and_masks():
    sampler = make_sampler("bottom_k", k=64, rng=0)
    _feed_weighted(sampler)
    n = len(sampler.sample())
    keys = sampler.sample().keys
    labels = [int(k) % 2 for k in keys]
    mask = np.array([int(k) % 3 == 0 for k in keys])
    by_callable = sampler.query(
        Query("sum", where=lambda k: int(k) % 3 == 0, group_by=lambda k: int(k) % 2)
    )
    by_columns = sampler.query(Query("sum", where=mask, group_by=labels))
    assert by_columns.estimate == pytest.approx(by_callable.estimate, rel=1e-12)
    for g in by_callable.groups:
        assert by_columns[g].estimate == pytest.approx(
            by_callable[g].estimate, rel=1e-12
        )
    with pytest.raises(ValueError, match="align with the sample rows"):
        sampler.query(Query("sum", where=np.ones(n + 1, dtype=bool)))
    with pytest.raises(ValueError, match="align with the sample rows"):
        sampler.query(Query("sum", group_by=[0] * (n + 1)))


def test_group_by_tuple_labels():
    """Multi-column group-bys (tuple labels) must not be stacked by numpy."""
    sampler = make_sampler("bottom_k", k=64, rng=0)
    _feed_weighted(sampler)
    grouped = sampler.query(
        Query("sum", group_by=lambda k: (int(k) % 2, int(k) % 3))
    )
    assert set(grouped.groups) == {(a, b) for a in (0, 1) for b in (0, 1, 2)}
    for (a, b), sub in grouped.groups.items():
        direct = sampler.query(
            Query(
                "sum",
                where=lambda k, a=a, b=b: int(k) % 2 == a and int(k) % 3 == b,
            )
        )
        assert sub.estimate == pytest.approx(direct.estimate, rel=1e-12)


def test_group_by_mixed_type_labels_keep_python_semantics():
    """Heterogeneous labels must not be silently stringified by numpy."""
    sampler = make_sampler("bottom_k", k=64, rng=0)
    _feed_weighted(sampler)
    grouped = sampler.query(
        Query("count", group_by=lambda k: "even" if int(k) % 2 == 0 else 1)
    )
    assert set(grouped.groups) == {"even", 1}
    assert grouped["even"].estimate > 0
    assert grouped[1].estimate > 0


def test_grouped_distinct_group_by_is_native():
    """grouped_distinct rows are (group, key) pairs; group_by fans them out."""
    sketch = make_sampler("grouped_distinct", m=4, k=8, salt=0)
    _feed_grouped(sketch)
    result = sketch.query(Query("distinct", group_by=lambda gk: gk[0]))
    assert set(result.groups) <= {f"g{i}" for i in range(5)}
    assert result.estimate == pytest.approx(
        sum(sub.estimate for sub in result.groups.values()), rel=1e-9
    )


# ----------------------------------------------------------------------
# Value column resolution
# ----------------------------------------------------------------------
def test_value_weight_recovers_weighted_subset_sum():
    """value="weight" on weighted_distinct is §3.4's weighted S_hat(A)."""
    sketch = make_sampler("weighted_distinct", k=256, salt=1)
    _feed_weighted(sketch)
    predicate = lambda k: int(k) % 3 == 0  # noqa: E731
    via_query = sketch.query(Query("sum", where=predicate, value="weight"))
    via_legacy = sketch.estimate("subset_sum", predicate=predicate)
    assert via_query.estimate == pytest.approx(via_legacy, rel=1e-9)


def test_value_callable_column():
    sampler = make_sampler("bottom_k", k=64, rng=0)
    _feed_weighted(sampler)
    doubled = sampler.query(Query("sum", value=lambda k: 2.0))
    counted = sampler.query(Query("count"))
    assert doubled.estimate == pytest.approx(2.0 * counted.estimate, rel=1e-12)


# ----------------------------------------------------------------------
# Result cache / state versioning
# ----------------------------------------------------------------------
def test_cache_hits_between_updates_and_invalidates_on_mutation():
    sampler = make_sampler("bottom_k", k=32, rng=0)
    _feed_weighted(sampler)
    q = Query("sum", ci=0.95)
    first = sampler.query(q)
    assert sampler.query(q) is first  # cached object, no re-execution
    v = sampler.state_version
    sampler.update(10**9, weight=5.0)
    assert sampler.state_version == v + 1
    second = sampler.query(q)
    assert second is not first


def test_cache_invalidates_on_trim_and_window_advance():
    """Sampler-specific public mutators bump state_version too: a trim
    or window advance must never replay pre-mutation cached answers."""
    sketch = make_sampler("adaptive_distinct", k=64, salt=0)
    sketch.update_many(np.arange(1000))
    q = Query("distinct")
    before = sketch.query(q)
    sketch.trim(8)
    after = sketch.query(q)
    assert after is not before
    assert after.estimate == pytest.approx(sketch.estimate("distinct"), rel=1e-12)

    window = make_sampler("sliding_window", k=16, window=10.0, rng=0)
    window.update_many(np.arange(100), times=np.linspace(0.0, 1.0, 100))
    q = Query("count")
    populated = window.query(q)
    window.advance(1000.0)  # everything expires
    emptied = window.query(q)
    assert emptied is not populated
    assert emptied.estimate == 0.0


def test_cache_invalidates_on_merge_and_state_restore():
    a = make_sampler("weighted_distinct", k=32, salt=0)
    b = make_sampler("weighted_distinct", k=32, salt=0)
    a.update_many(np.arange(0, 2000))
    b.update_many(np.arange(2000, 4000))
    q = Query("distinct")
    before = a.query(q)
    a.merge(b)
    after = a.query(q)
    assert after is not before
    assert after.estimate > before.estimate
    revived = repro.sampler_from_state(a.to_state())
    assert revived.query(q).estimate == pytest.approx(after.estimate, rel=1e-12)


def test_cache_never_serves_stale_answers_for_mutated_mask_buffers():
    """Precomputed columns fingerprint by content: rewriting a mask
    buffer in place must re-execute, not replay the cached answer."""
    sampler = make_sampler("bottom_k", k=64, rng=0)
    _feed_weighted(sampler)
    keys = sampler.sample().keys
    mask = np.array([int(k) % 2 == 0 for k in keys])
    first = sampler.query(Query("sum", where=mask))
    mask[:] = [int(k) % 2 == 1 for k in keys]  # same buffer, new content
    second = sampler.query(Query("sum", where=mask))
    direct = sampler.query(Query("sum", where=lambda k: int(k) % 2 == 1))
    assert second.estimate == pytest.approx(direct.estimate, rel=1e-12)
    assert second.estimate != first.estimate
    # Same story for python-list label columns.
    labels = [int(k) % 2 for k in keys]
    a = sampler.query(Query("count", group_by=labels))
    labels_copy = list(labels)
    b = sampler.query(Query("count", group_by=labels_copy))
    assert a is b  # equal content -> same cache entry


def test_hash_colliding_columns_do_not_share_cache_entries():
    """Fingerprints embed column *content*: hash collisions (CPython's
    hash(-1) == hash(-2)) must not serve another column's cached answer."""
    sampler = make_sampler("bottom_k", k=16, rng=0)
    sampler.update_many(np.arange(100))
    assert hash((-1,)) == hash((-2,))  # the collision this guards against
    n = len(sampler.sample())
    a = sampler.query(Query("sum", group_by=[-1] * n))
    b = sampler.query(Query("sum", group_by=[-2] * n))
    assert set(a.groups) == {-1}
    assert set(b.groups) == {-2}


def test_to_dict_disambiguates_colliding_group_labels():
    """int 1 and str "1" groups must both survive serialization."""
    sampler = make_sampler("bottom_k", k=16, rng=0)
    sampler.update_many(np.arange(100))
    n = len(sampler.sample())
    labels = [1 if i % 2 else "1" for i in range(n)]
    result = sampler.query(Query("count", group_by=labels))
    assert set(result.groups) == {1, "1"}
    d = result.to_dict()
    assert len(d["groups"]) == 2
    assert set(d["groups"]) == {"1", "'1'"}


def test_equal_queries_same_object_share_cache_entries():
    sampler = make_sampler("bottom_k", k=32, rng=0)
    _feed_weighted(sampler)
    predicate = lambda k: int(k) % 2 == 0  # noqa: E731
    q = Query("sum", where=predicate)
    assert sampler.query(q) is sampler.query(q)
    # A distinct-but-equivalent predicate misses the cache yet agrees.
    other = sampler.query(Query("sum", where=lambda k: int(k) % 2 == 0))
    assert other is not sampler.query(q)
    assert other.estimate == pytest.approx(sampler.query(q).estimate, rel=1e-12)


def test_query_entry_point_forms_agree():
    sampler = make_sampler("bottom_k", k=32, rng=0)
    _feed_weighted(sampler)
    spec = Query("count")
    assert sampler.query(spec).estimate == sampler.query("count").estimate
    assert sampler.query(aggregate="count").estimate == sampler.query(spec).estimate
    with pytest.raises(TypeError, match="not both"):
        sampler.query(spec, ci=0.5)
    with pytest.raises(TypeError, match="takes a Query"):
        sampler.query(12)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
def test_offline_designs_get_capability_errors_not_attribute_errors():
    """Non-protocol registered classes still surface their declared gap
    reasons through the planner (not an AttributeError)."""
    from repro.query.planner import execute

    cps = make_sampler("cps", working_probs=[0.5, 0.5, 0.5], k=1)
    with pytest.raises(QueryCapabilityError, match="offline maximum-entropy"):
        execute(cps, Query("sum"))
    layout = make_sampler("priority_layout", values=[1.0, 2.0])
    with pytest.raises(QueryCapabilityError, match="offline physical layout"):
        execute(layout, Query("mean"))


def test_samplers_and_results_stay_picklable_after_queries():
    """Querying (even with lambdas) must not break sampler pickling, and
    results — groups proxy included — pickle on their own."""
    import pickle

    sampler = make_sampler("bottom_k", k=32, rng=0)
    _feed_weighted(sampler)
    grouped = sampler.query(Query("sum", group_by=lambda k: int(k) % 2))
    revived = pickle.loads(pickle.dumps(sampler))
    assert revived.query(Query("count")).estimate == pytest.approx(
        sampler.query(Query("count")).estimate, rel=1e-12
    )
    round_tripped = pickle.loads(pickle.dumps(grouped))
    assert dict(round_tripped.to_dict()) == dict(grouped.to_dict())
    with pytest.raises(TypeError):  # still read-only after the round trip
        round_tripped.groups[0] = None


def test_query_spec_validation():
    with pytest.raises(ValueError, match="unknown aggregate"):
        Query("median")
    with pytest.raises(ValueError, match="only valid for the topk"):
        Query("sum", k=5)
    with pytest.raises(ValueError, match="only valid for the quantile"):
        Query("sum", q=0.5)
    with pytest.raises(ValueError, match="q must lie"):
        Query("quantile", q=1.5)
    with pytest.raises(ValueError, match="confidence level"):
        Query("sum", ci=95)
    with pytest.raises(ValueError, match="value="):
        Query("sum", value="weights")


def test_result_to_dict_round_trips_shapes():
    sampler = make_sampler("bottom_k", k=64, rng=0)
    _feed_weighted(sampler)
    grouped = sampler.query(Query("topk", k=3, group_by=lambda k: int(k) % 2))
    d = grouped.to_dict()
    assert d["aggregate"] == "topk"
    assert set(d["groups"]) == {"0", "1"}
    assert all(isinstance(row, dict) for row in d["estimate"])
    with pytest.raises(KeyError):
        sampler.query(Query("count"))["nope"]


# ----------------------------------------------------------------------
# Sharded execution
# ----------------------------------------------------------------------
#: Hash-coordinated sketches whose shard-then-merge state is bit-exact, so
#: query answers must be bit-identical too (canonical row ordering makes
#: the float reductions order-independent).
COORDINATED_SPECS = [
    ("weighted_distinct", {"k": 128, "salt": 3}, _feed_weighted),
    ("kmv", {"k": 64, "salt": 3}, _feed_unweighted),
    ("theta", {"k": 64, "salt": 3}, _feed_unweighted),
    (
        "bottom_k",
        {"k": 128, "family": "uniform", "coordinated": True, "salt": 3},
        _feed_unweighted,
    ),
]


@pytest.mark.parametrize(
    "name,params,feed", COORDINATED_SPECS, ids=[s[0] for s in COORDINATED_SPECS]
)
def test_sharded_query_answers_bit_identical(name, params, feed):
    single = make_sampler(name, **params)
    engine = ShardedSampler({"name": name, "params": params}, n_shards=4)
    feed(single)
    feed(engine)
    with_variance = single.query_variance is True
    level = 0.95 if with_variance else None
    for aggregate in single.supported_aggregates():
        q = Query(aggregate=aggregate, ci=level)
        a = single.query(q)
        b = engine.query(q)
        if aggregate == "topk":
            assert a.estimate == b.estimate
        else:
            assert a.estimate == b.estimate
            assert a.variance == b.variance
            assert a.ci == b.ci


def test_sharded_engine_mirrors_capabilities():
    engine = ShardedSampler({"name": "kmv", "params": {"k": 16}}, n_shards=2)
    kmv_cls = repro.KMVSketch
    assert engine.supported_aggregates() == tuple(
        a for a in QUERY_AGGREGATES if kmv_cls.query_capabilities[a] is True
    )
    with pytest.raises(QueryCapabilityError, match="retains only hash values"):
        engine.query("sum")
