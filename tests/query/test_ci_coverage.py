"""Monte-Carlo coverage of the query layer's confidence intervals.

The unbiasedness harness (``tests/statistical``) proves the *point*
estimates converge to truth; this suite proves the *interval* story: the
nominal 95% normal-approximation CIs that ``Query(..., ci=0.95)`` returns
must cover the true subset sum at >= 90% empirically — for bottom_k,
poisson and weighted_distinct, on three workloads each (skewed Zipf,
uniform, and a heavy-tailed weight distribution).

Method: ``TRIALS`` seeded replications per case (fresh RNG stream / hash
salt per trial); each trial asks the sampler one subset-sum query with a
95% CI and records whether the interval covers ground truth.  Coverage is
asserted against a 90% floor minus binomial (CLT) slack, so the test
scales soundly with ``REPRO_STAT_TRIALS`` — more trials tighten the
check, fewer only widen the tolerance.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np
import pytest

from repro import Query, make_sampler
from repro.workloads.zipf import zipf_stream

pytestmark = pytest.mark.statistical

TRIALS = int(os.environ.get("REPRO_STAT_TRIALS", "80"))
#: Empirical coverage floor for nominal-95% intervals, per the PR's
#: acceptance bar; the binomial slack keeps false failures < ~1e-4 at any
#: trial count.
FLOOR = 0.90
Z = 4.0

N = 1200
UNIVERSE = 400


def _build_workload(kind: str) -> dict:
    rng = np.random.default_rng(42)
    if kind == "zipf":
        keys = np.asarray(zipf_stream(N, UNIVERSE, 1.5, rng=rng), dtype=np.int64)
        sigma = 0.6
    elif kind == "uniform":
        keys = rng.integers(0, UNIVERSE, N).astype(np.int64)
        sigma = 0.6
    else:  # heavy: uniform keys, much heavier-tailed weights
        keys = rng.integers(0, UNIVERSE, N).astype(np.int64)
        sigma = 1.2
    per_key = np.random.default_rng(43).lognormal(0.0, sigma, UNIVERSE)
    return {
        "keys": keys,
        "weights": per_key[keys],
        "per_key": per_key,
        "unique": np.unique(keys),
    }


WORKLOADS = {kind: _build_workload(kind) for kind in ("zipf", "uniform", "heavy")}


def _subset(key) -> bool:
    return int(key) % 3 == 0


def _truth_occurrence_sum(w) -> float:
    return float(w["weights"][(w["keys"] % 3) == 0].sum())


def _truth_per_key_sum(w) -> float:
    subset = [int(k) for k in w["unique"] if _subset(k)]
    return float(w["per_key"][subset].sum())


@dataclass
class CoverageCase:
    """One (sampler config, subset-sum query) CI-coverage check."""

    label: str
    build: Callable[[int], object]
    query: Query
    truth: Callable[[dict], float]


#: The same predicate/query objects are reused across trials on purpose —
#: per-trial samplers are fresh, so caching never applies, and identity
#: reuse keeps the fingerprints stable.
_OCCURRENCE_QUERY = Query("sum", where=_subset, ci=0.95)
_PER_KEY_QUERY = Query("sum", where=_subset, value="weight", ci=0.95)

CASES = [
    CoverageCase(
        "bottom_k",
        lambda t: make_sampler("bottom_k", k=128, rng=t),
        _OCCURRENCE_QUERY,
        _truth_occurrence_sum,
    ),
    CoverageCase(
        "poisson",
        lambda t: make_sampler("poisson", threshold=0.1, rng=t),
        _OCCURRENCE_QUERY,
        _truth_occurrence_sum,
    ),
    CoverageCase(
        # k stays well below the distinct-key count of every workload
        # (the skewed Zipf stream carries only ~112 distinct keys): a
        # saturated-with-room sketch degenerates to exact counting with
        # zero-width intervals, which tests float summation order, not
        # coverage.
        "weighted_distinct",
        lambda t: make_sampler("weighted_distinct", k=64, salt=t),
        _PER_KEY_QUERY,
        _truth_per_key_sum,
    ),
]


@pytest.mark.parametrize(
    "case,workload",
    [(c, wl) for c in CASES for wl in WORKLOADS],
    ids=[f"{c.label}-{wl}" for c in CASES for wl in WORKLOADS],
)
def test_nominal_95_intervals_cover_at_90(case, workload):
    w = WORKLOADS[workload]
    truth = case.truth(w)
    covered = 0
    for trial in range(TRIALS):
        sampler = case.build(trial)
        sampler.update_many(w["keys"], w["weights"])
        result = sampler.query(case.query)
        lo, hi = result.ci
        assert lo <= result.estimate <= hi
        if lo <= truth <= hi:
            covered += 1
    coverage = covered / TRIALS
    slack = Z * np.sqrt(FLOOR * (1.0 - FLOOR) / TRIALS)
    assert coverage >= FLOOR - slack, (
        f"{case.label} on {workload}: {covered}/{TRIALS} covered "
        f"({coverage:.3f} < {FLOOR} - {slack:.3f})"
    )
