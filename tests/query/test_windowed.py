"""Windowed & decayed queries as first-class Query dimensions.

The battery covers the whole path: spec validation, window-bound
resolution, the executors' time-filtered pass (against exact manual HT
over the masked rows), the planner's capability/retention gates, and the
result-cache regression — an explicit advancing ``now=`` must never
false-hit a stale decayed answer.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro
from repro.core import Sample, decay_factors, time_window_mask
from repro.core.priorities import InverseWeightPriority
from repro.query import Query, QueryCapabilityError
from repro.query.executors import resolve_window_bounds, run_aggregate


def _timed_sample(n=40, seed=0):
    """A hand-built sample with known probabilities and times."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(1.0, 5.0, n)
    weights = np.ones(n)
    times = np.sort(rng.uniform(0.0, 10.0, n))
    thresholds = np.full(n, 0.8)
    priorities = rng.uniform(0.0, 0.8, n)
    return Sample(
        keys=list(range(n)),
        values=values,
        weights=weights,
        priorities=priorities,
        thresholds=thresholds,
        family=InverseWeightPriority(),
        population_size=n * 3,
        times=times,
    )


# ----------------------------------------------------------------------
# Query spec: the new dimensions validate at construction
# ----------------------------------------------------------------------
class TestSpec:
    def test_window_and_last_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            Query("sum", window=(0.0, 1.0), last=1.0)

    def test_window_bounds_must_be_ordered(self):
        with pytest.raises(ValueError, match="window"):
            Query("sum", window=(2.0, 1.0))
        with pytest.raises(ValueError, match="window"):
            Query("sum", window=(1.0, 1.0))

    def test_window_coerces_to_float_tuple(self):
        q = Query("sum", window=[1, 3])  # JSON lists arrive over the wire
        assert q.window == (1.0, 3.0)
        assert isinstance(q.window, tuple)

    def test_last_must_be_positive(self):
        with pytest.raises(ValueError, match="last"):
            Query("sum", last=0.0)
        with pytest.raises(ValueError, match="last"):
            Query("sum", last=-1.0)

    def test_decay_must_be_positive(self):
        with pytest.raises(ValueError, match="decay"):
            Query("sum", decay=0.0)

    @pytest.mark.parametrize("aggregate", ["distinct", "quantile"])
    def test_decay_rejected_for_orderless_aggregates(self, aggregate):
        kw = {"q": 0.5} if aggregate == "quantile" else {}
        with pytest.raises(ValueError, match="decay= is not supported"):
            Query(aggregate, decay=0.5, **kw)

    def test_window_alone_fine_for_quantile(self):
        Query("quantile", q=0.5, window=(0.0, 1.0))

    def test_now_requires_a_time_scope(self):
        with pytest.raises(ValueError, match="now= is only meaningful"):
            Query("sum", now=5.0)

    def test_fingerprint_includes_time_dimensions(self):
        base = Query("sum").fingerprint()
        assert Query("sum", last=1.0).fingerprint() != base
        assert Query("sum", window=(0.0, 1.0)).fingerprint() != base
        assert Query("sum", decay=0.5).fingerprint() != base
        assert (
            Query("sum", decay=0.5, now=1.0).fingerprint()
            != Query("sum", decay=0.5, now=2.0).fingerprint()
        )

    def test_is_time_scoped(self):
        assert not Query("sum").is_time_scoped
        assert Query("sum", last=1.0).is_time_scoped
        assert Query("sum", window=(0.0, 1.0)).is_time_scoped
        assert Query("sum", decay=0.5).is_time_scoped


# ----------------------------------------------------------------------
# Window-bound resolution
# ----------------------------------------------------------------------
class TestResolveBounds:
    def test_window_passes_through(self):
        assert resolve_window_bounds(
            Query("sum", window=(1.0, 3.0)), None
        ) == (1.0, 3.0)

    def test_last_anchors_at_now(self):
        assert resolve_window_bounds(
            Query("sum", last=2.0), 10.0
        ) == (8.0, 10.0)

    def test_last_without_now_is_an_error(self):
        with pytest.raises(ValueError, match="cannot resolve now="):
            resolve_window_bounds(Query("sum", last=2.0), None)

    def test_decay_only_is_unbounded(self):
        assert resolve_window_bounds(
            Query("sum", decay=0.5), 10.0
        ) == (None, None)


# ----------------------------------------------------------------------
# Executors: the time pass against exact manual HT arithmetic
# ----------------------------------------------------------------------
class TestExecution:
    def test_windowed_sum_is_ht_over_masked_rows(self):
        sample = _timed_sample()
        lo, hi = 2.0, 7.0
        result = run_aggregate(sample, Query("sum", window=(lo, hi)), False)
        mask = time_window_mask(sample.times, lo, hi)
        probs = sample.probabilities
        expected = float(np.sum(sample.values[mask] / probs[mask]))
        assert result.estimate == pytest.approx(expected)
        assert result.sample_size == int(mask.sum())

    def test_windowed_count_is_ht_count_over_masked_rows(self):
        sample = _timed_sample()
        lo, hi = 2.0, 7.0
        result = run_aggregate(sample, Query("count", window=(lo, hi)), False)
        mask = time_window_mask(sample.times, lo, hi)
        expected = float(np.sum(1.0 / sample.probabilities[mask]))
        assert result.estimate == pytest.approx(expected)

    def test_window_is_half_open(self):
        """(lo, hi]: a row exactly at lo is out, exactly at hi is in."""
        sample = _timed_sample()
        t = sample.times
        lo, hi = float(t[3]), float(t[10])
        mask = time_window_mask(t, lo, hi)
        assert not mask[3] and mask[10]

    def test_decayed_sum_discounts_by_age(self):
        sample = _timed_sample()
        rate, now = 0.3, 10.0
        result = run_aggregate(
            sample, Query("sum", decay=rate, now=now), False
        )
        d = decay_factors(sample.times, rate, now)
        expected = float(np.sum(sample.values * d / sample.probabilities))
        assert result.estimate == pytest.approx(expected)

    def test_decayed_mean_is_ewma_ratio(self):
        sample = _timed_sample()
        rate, now = 0.3, 10.0
        result = run_aggregate(
            sample, Query("mean", decay=rate, now=now), False
        )
        d = decay_factors(sample.times, rate, now)
        p = sample.probabilities
        expected = float(
            np.sum(sample.values * d / p) / np.sum(d / p)
        )
        assert result.estimate == pytest.approx(expected)

    def test_decay_composes_with_window(self):
        sample = _timed_sample()
        rate, now = 0.3, 10.0
        lo, hi = 2.0, 10.0
        result = run_aggregate(
            sample, Query("sum", window=(lo, hi), decay=rate, now=now), False
        )
        mask = time_window_mask(sample.times, lo, hi)
        d = decay_factors(sample.times, rate, now)
        p = sample.probabilities
        expected = float(np.sum((sample.values * d / p)[mask]))
        assert result.estimate == pytest.approx(expected)

    def test_now_defaults_to_latest_sample_time(self):
        sample = _timed_sample()
        latest = float(np.nanmax(sample.times))
        explicit = run_aggregate(
            sample, Query("sum", decay=0.3, now=latest), False
        )
        implicit = run_aggregate(sample, Query("sum", decay=0.3), False)
        assert implicit.estimate == pytest.approx(explicit.estimate)

    def test_nan_times_are_excluded_from_windows(self):
        sample = _timed_sample(n=20)
        times = sample.times.copy()
        times[5] = np.nan
        sample = Sample(
            keys=sample.keys, values=sample.values, weights=sample.weights,
            priorities=sample.priorities, thresholds=sample.thresholds,
            family=sample.family, population_size=sample.population_size,
            times=times,
        )
        result = run_aggregate(
            sample, Query("count", window=(-np.inf, np.inf)), False
        )
        assert result.sample_size == 19

    def test_timeless_sample_refuses_time_scopes(self):
        sampler = repro.make_sampler("bottom_k", k=16, rng=0)
        sampler.update_many(np.arange(100))
        with pytest.raises(ValueError, match="no time column"):
            run_aggregate(sampler.sample(), Query("sum", last=1.0), False)

    def test_windowed_variance_and_ci_attach(self):
        sample = _timed_sample()
        result = run_aggregate(
            sample, Query("sum", window=(2.0, 7.0), ci=0.95), True
        )
        assert result.stderr is not None and result.stderr > 0
        assert result.ci is not None
        lo, hi = result.ci
        assert lo <= result.estimate <= hi

    def test_empty_window_yields_zero_sum_nan_mean(self):
        sample = _timed_sample()
        empty = (100.0, 101.0)
        total = run_aggregate(sample, Query("sum", window=empty), False)
        assert total.estimate == 0.0
        mean = run_aggregate(sample, Query("mean", window=empty), False)
        assert math.isnan(mean.estimate)

    def test_grouped_windowed_mean(self):
        """group_by composes with the time pass: per-group decayed means
        match the per-group manual ratio."""
        sample = _timed_sample()
        groups = np.array([k % 2 for k in range(len(sample.keys))])
        result = run_aggregate(
            sample,
            Query("mean", decay=0.3, now=10.0,
                  group_by=lambda k: k % 2),
            False,
        )
        d = decay_factors(sample.times, 0.3, 10.0)
        p = sample.probabilities
        for g in (0, 1):
            m = groups == g
            expected = float(
                np.sum((sample.values * d / p)[m]) / np.sum((d / p)[m])
            )
            assert result.groups[g].estimate == pytest.approx(expected)


# ----------------------------------------------------------------------
# Planner gates
# ----------------------------------------------------------------------
class TestPlannerGates:
    def test_windowless_sampler_is_refused(self):
        sampler = repro.make_sampler("theta", k=32)
        for i in range(50):
            sampler.update(i)
        with pytest.raises(QueryCapabilityError) as err:
            sampler.query("distinct", window=(0.0, 1.0))
        assert "time-scoped" in str(err.value)

    def test_expired_window_is_refused_not_underestimated(self):
        """sliding_window refuses a window reaching past its retention
        horizon — those rows are *gone*, and a silent small answer would
        be a lie, not an estimate."""
        sampler = repro.make_sampler(
            "sliding_window", k=32, window=1.0, rng=0
        )
        for i in range(200):
            sampler.update(i, time=i * 0.01)
        with pytest.raises(QueryCapabilityError, match="retains only"):
            sampler.query("count", window=(0.0, 1.5))

    def test_in_retention_window_is_answered(self):
        sampler = repro.make_sampler(
            "sliding_window", k=32, window=1.0, rng=0
        )
        for i in range(200):
            sampler.update(i, time=i * 0.01)
        result = sampler.query("count", last=0.5)
        assert result.estimate > 0

    def test_planner_anchors_now_at_sampler_last_time(self):
        sampler = repro.make_sampler("time_decay", k=32, decay_rate=0.5, rng=0)
        for i in range(100):
            sampler.update(i, time=i * 0.1)
        implicit = sampler.query("sum", decay=0.5).estimate
        explicit = sampler.query("sum", decay=0.5, now=9.9).estimate
        assert implicit == pytest.approx(explicit)


# ----------------------------------------------------------------------
# Result cache: time dimensions key the cache (the false-hit bugfix)
# ----------------------------------------------------------------------
class TestCacheRegression:
    def test_advancing_now_refreshes_decayed_answers(self):
        """Polling a decayed estimate with an advancing explicit ``now=``
        and **no new updates** must decay further each poll — the old
        (state_version, aggregate-only fingerprint) cache key returned
        the first answer forever."""
        sampler = repro.make_sampler("time_decay", k=32, decay_rate=1.0, rng=0)
        for i in range(100):
            sampler.update(i, time=i * 0.01)
        answers = [
            sampler.query("sum", decay=1.0, now=float(now)).estimate
            for now in (1.0, 2.0, 3.0)
        ]
        # Strictly decaying: each later poll sees strictly older rows.
        assert answers[0] > answers[1] > answers[2]
        # And the decay is the analytic factor, not a cache artifact.
        assert answers[1] == pytest.approx(answers[0] * math.exp(-1.0))

    def test_distinct_windows_cache_distinctly(self):
        sampler = repro.make_sampler(
            "sliding_window", k=64, window=4.0, rng=0
        )
        for i in range(400):
            sampler.update(i, time=i * 0.01)
        wide = sampler.query("count", last=3.0).estimate
        narrow = sampler.query("count", last=0.5).estimate
        assert wide > narrow
        # Re-polling returns the cached-but-correct per-window answers.
        assert sampler.query("count", last=3.0).estimate == wide
        assert sampler.query("count", last=0.5).estimate == narrow

    def test_same_query_still_caches(self):
        sampler = repro.make_sampler(
            "sliding_window", k=64, window=4.0, rng=0
        )
        for i in range(100):
            sampler.update(i, time=i * 0.01)
        first = sampler.query("count", last=1.0)
        again = sampler.query("count", last=1.0)
        assert again is first  # same object: a genuine cache hit
