"""Monte-Carlo verification of Theorems 7 and 8 (Section 2.7).

Theorem 7: a sequential thresholding rule — here the §2.7 "ever in the
bottom-k sketch" rule, which is only 1-substitutable — still yields an
unbiased pseudo-HT estimator for sums.

Theorem 8: any threshold that is a stopping time of the descending-priority
filtration is *fully* substitutable, so even higher-order estimators apply.
"""

import numpy as np
import pytest

from repro.core.priorities import Uniform01Priority
from repro.core.recalibration import is_substitutable
from repro.core.thresholds import DescendingStoppingRule, SequentialBottomK

from tests.helpers import assert_within_se


class TestTheorem7:
    def test_ht_total_unbiased_under_sequential_rule(self):
        """The 1-substitutable sequential rule keeps HT sums unbiased."""
        rng = np.random.default_rng(0)
        n, k = 40, 6
        values = rng.lognormal(0, 0.5, n)
        fam = Uniform01Priority()
        rule = SequentialBottomK(k)
        estimates = []
        for trial in range(4000):
            u = np.random.default_rng(trial + 1).random(n)
            t = rule.thresholds(u)
            mask = u < t
            probs = np.asarray(fam.pseudo_inclusion(t[mask], 1.0))
            estimates.append(float(np.sum(values[mask] / probs)))
        assert_within_se(estimates, float(values.sum()))

    def test_sample_larger_than_final_bottomk(self):
        # "Ever in the sketch" stores more than the final bottom-k — the
        # point of the example (aggregates over any prefix window).
        rng = np.random.default_rng(1)
        sizes = []
        for trial in range(50):
            u = rng.random(200)
            sizes.append(SequentialBottomK(5).sample(u).size)
        assert np.mean(sizes) > 10  # ~ k * H_n growth


class TestTheorem8:
    @pytest.mark.parametrize("seed", range(6))
    def test_stopping_time_rule_fully_substitutable(self, seed):
        # Stop once the inspected (descending) prefix has 5 priorities or
        # its smallest value drops under 0.6 — a stopping time of the
        # descending filtration.
        rule = DescendingStoppingRule(
            lambda prefix: prefix.size >= 5 or prefix[-1] < 0.6
        )
        pr = np.random.default_rng(seed).random(15)
        assert is_substitutable(rule, pr)

    def test_ht_total_unbiased_under_stopping_rule(self):
        rng = np.random.default_rng(2)
        n = 30
        values = rng.lognormal(0, 0.4, n)
        fam = Uniform01Priority()
        rule = DescendingStoppingRule(
            lambda prefix: prefix.size >= n // 3 or prefix[-1] < 0.5
        )
        estimates = []
        for trial in range(4000):
            u = np.random.default_rng(trial + 10_000).random(n)
            t = rule.thresholds(u)
            mask = u < t
            if not mask.any():
                estimates.append(0.0)
                continue
            probs = np.asarray(fam.pseudo_inclusion(t[mask], 1.0))
            estimates.append(float(np.sum(values[mask] / probs)))
        assert_within_se(estimates, float(values.sum()))

    def test_variance_estimator_unbiased_under_stopping_rule(self):
        """Full substitutability licenses second-order estimators too."""
        rng = np.random.default_rng(3)
        n = 25
        values = rng.lognormal(0, 0.4, n)
        truth = float(values.sum())
        fam = Uniform01Priority()
        rule = DescendingStoppingRule(
            lambda prefix: prefix.size >= 8 or prefix[-1] < 0.55
        )
        sq_errors, var_estimates = [], []
        for trial in range(4000):
            u = np.random.default_rng(trial + 20_000).random(n)
            t = rule.thresholds(u)
            mask = u < t
            probs = np.asarray(fam.pseudo_inclusion(t[mask], 1.0))
            est = float(np.sum(values[mask] / probs))
            sq_errors.append((est - truth) ** 2)
            var_estimates.append(
                float(np.sum(values[mask] ** 2 * (1 - probs) / probs**2))
            )
        # E[Vhat] must match the realized MSE (both noisy; compare means).
        assert np.mean(var_estimates) == pytest.approx(
            np.mean(sq_errors), rel=0.15
        )
