"""Tests for priority families and duality (repro.core.priorities)."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.core.priorities import (
    ExponentialPriority,
    InverseWeightPriority,
    TransformedPriority,
    Uniform01Priority,
    effective_threshold_for_decay,
    from_uniform,
    to_uniform,
)

FAMILIES = [Uniform01Priority(), InverseWeightPriority(), ExponentialPriority()]


class TestCdfInverseRoundtrip:
    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: type(f).__name__)
    @pytest.mark.parametrize("weight", [0.5, 1.0, 3.7])
    def test_roundtrip(self, family, weight):
        u = np.linspace(0.01, 0.99, 25)
        r = family.inverse_cdf(u, weight)
        np.testing.assert_allclose(family.cdf(r, weight), u, atol=1e-12)

    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: type(f).__name__)
    def test_scalar_in_scalar_out(self, family):
        assert isinstance(family.cdf(0.3, 2.0), float)
        assert isinstance(family.inverse_cdf(0.3, 2.0), float)


class TestUniform01:
    def test_cdf_clipped(self):
        fam = Uniform01Priority()
        assert fam.cdf(-0.5) == 0.0
        assert fam.cdf(2.0) == 1.0
        assert fam.cdf(0.25) == 0.25

    def test_weight_ignored(self):
        fam = Uniform01Priority()
        assert fam.cdf(0.3, weight=100.0) == 0.3


class TestInverseWeight:
    def test_cdf_formula(self):
        fam = InverseWeightPriority()
        assert fam.cdf(0.1, weight=5.0) == pytest.approx(0.5)
        assert fam.cdf(10.0, weight=5.0) == 1.0  # saturates at 1

    def test_heavy_item_always_included(self):
        # w * t >= 1 means inclusion probability 1 under threshold t.
        fam = InverseWeightPriority()
        assert fam.pseudo_inclusion(0.5, weight=2.0) == 1.0

    def test_draw_distribution(self, rng):
        fam = InverseWeightPriority()
        r = fam.draw(rng, weight=np.full(20_000, 4.0))
        # R = U/4 ~ Uniform(0, 0.25)
        stat = stats.kstest(r * 4.0, "uniform")
        assert stat.pvalue > 1e-4


class TestExponential:
    def test_cdf_formula(self):
        fam = ExponentialPriority()
        assert fam.cdf(1.0, weight=2.0) == pytest.approx(1 - math.exp(-2.0))

    def test_draw_distribution(self, rng):
        fam = ExponentialPriority()
        r = fam.draw(rng, weight=np.full(20_000, 3.0))
        stat = stats.kstest(r, "expon", args=(0, 1 / 3.0))
        assert stat.pvalue > 1e-4

    def test_bottom_one_is_pps(self, rng):
        # P(argmin of exponentials = i) = w_i / sum(w): the PPSWOR property.
        fam = ExponentialPriority()
        weights = np.array([1.0, 2.0, 3.0])
        wins = np.zeros(3)
        for _ in range(8000):
            r = fam.draw(rng, weights)
            wins[np.argmin(r)] += 1
        freq = wins / wins.sum()
        np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.02)


class TestPseudoInclusion:
    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: type(f).__name__)
    def test_infinite_threshold_is_one(self, family):
        assert family.pseudo_inclusion(np.inf, 2.0) == 1.0

    def test_vectorized_with_inf(self):
        fam = InverseWeightPriority()
        p = fam.pseudo_inclusion(np.array([np.inf, 0.1]), np.array([1.0, 5.0]))
        np.testing.assert_allclose(p, [1.0, 0.5])


class TestDuality:
    def test_uniform_of_priority(self):
        fam = InverseWeightPriority()
        u = np.array([0.2, 0.8])
        w = np.array([2.0, 0.5])
        r = from_uniform(u, w, fam)
        np.testing.assert_allclose(to_uniform(r, w, fam), u, atol=1e-12)

    def test_inclusion_events_agree(self, rng):
        # R < T  iff  U < F(T): the Section 2.9 duality.
        fam = ExponentialPriority()
        w, t = 2.5, 0.3
        u = rng.random(1000)
        r = fam.inverse_cdf(u, w)
        np.testing.assert_array_equal(r < t, u < fam.cdf(t, w))


class TestTransformedPriority:
    def test_monotone_transform_preserves_events(self, rng):
        base = ExponentialPriority()
        fam = TransformedPriority(base, rho=lambda r: np.asarray(r) ** 2,
                                  rho_inverse=lambda s: np.sqrt(np.asarray(s)))
        w, t = 1.5, 0.4
        u = rng.random(500)
        r_base = np.asarray(base.inverse_cdf(u, w))
        r_trans = np.asarray(fam.inverse_cdf(u, w))
        np.testing.assert_array_equal(r_base < t, r_trans < t**2)

    def test_cdf_consistency(self):
        base = ExponentialPriority()
        fam = TransformedPriority(base, rho=lambda r: 2 * np.asarray(r),
                                  rho_inverse=lambda s: np.asarray(s) / 2)
        assert fam.cdf(0.8, 1.0) == pytest.approx(base.cdf(0.4, 1.0))


class TestDecayHelper:
    def test_growth(self):
        assert effective_threshold_for_decay(0.1, 2.0, 0.5) == pytest.approx(
            0.1 * math.exp(1.0)
        )

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            effective_threshold_for_decay(0.1, -1.0, 0.5)
