"""Tests for the Sample container (repro.core.sample)."""

import numpy as np
import pytest

from repro.core.priorities import InverseWeightPriority, Uniform01Priority
from repro.core.sample import Sample, SampledItem


@pytest.fixture
def sample():
    return Sample(
        keys=["a", "b", "c"],
        values=np.array([2.0, 3.0, 5.0]),
        weights=np.array([2.0, 3.0, 5.0]),
        priorities=np.array([0.05, 0.1, 0.02]),
        thresholds=np.array([0.2, 0.2, 0.2]),
        family=InverseWeightPriority(),
        population_size=10,
    )


class TestContainer:
    def test_len(self, sample):
        assert len(sample) == 3

    def test_iteration_yields_items(self, sample):
        items = list(sample)
        assert all(isinstance(i, SampledItem) for i in items)
        assert items[0].key == "a"
        assert items[0].probability == pytest.approx(0.4)
        assert items[0].ht_weight == pytest.approx(2.5)

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Sample(
                keys=["a"],
                values=np.array([1.0, 2.0]),
                weights=np.array([1.0]),
                priorities=np.array([0.1]),
                thresholds=np.array([0.5]),
            )

    def test_probabilities(self, sample):
        np.testing.assert_allclose(sample.probabilities, [0.4, 0.6, 1.0])


class TestSelect:
    def test_by_predicate(self, sample):
        sub = sample.select(lambda k: k in {"a", "c"})
        assert sub.keys == ["a", "c"]
        assert len(sub) == 2

    def test_by_mask(self, sample):
        sub = sample.select(np.array([True, False, True]))
        assert sub.keys == ["a", "c"]

    def test_mask_length_checked(self, sample):
        with pytest.raises(ValueError):
            sample.select(np.array([True]))

    def test_select_preserves_metadata(self, sample):
        sub = sample.select(lambda k: True)
        assert sub.population_size == 10
        assert isinstance(sub.family, InverseWeightPriority)


class TestEstimates:
    def test_ht_total(self, sample):
        expected = 2.0 / 0.4 + 3.0 / 0.6 + 5.0 / 1.0
        assert sample.ht_total() == pytest.approx(expected)

    def test_ht_total_custom_values(self, sample):
        est = sample.ht_total(values=[1.0, 1.0, 1.0])
        assert est == pytest.approx(1 / 0.4 + 1 / 0.6 + 1.0)

    def test_subset_sum_via_select(self, sample):
        est = sample.select(lambda k: k == "a").ht_total()
        assert est == pytest.approx(5.0)

    def test_variance_and_stderr(self, sample):
        v = sample.ht_variance_estimate()
        assert sample.ht_stderr() == pytest.approx(np.sqrt(v))

    def test_confidence_interval_contains_estimate(self, sample):
        lo, hi = sample.ht_confidence_interval()
        assert lo <= sample.ht_total() <= hi

    def test_distinct_estimate(self, sample):
        assert sample.distinct_estimate() == pytest.approx(
            1 / 0.4 + 1 / 0.6 + 1.0
        )

    def test_hajek_mean(self, sample):
        probs = sample.probabilities
        expected = np.sum(sample.values / probs) / np.sum(1 / probs)
        assert sample.hajek_mean() == pytest.approx(expected)

    def test_summary_keys(self, sample):
        s = sample.summary()
        assert set(s) == {
            "size",
            "total_estimate",
            "stderr",
            "min_probability",
            "population_estimate",
        }
        assert s["size"] == 3

    def test_empty_sample_summary(self):
        empty = Sample(
            keys=[],
            values=np.array([]),
            weights=np.array([]),
            priorities=np.array([]),
            thresholds=np.array([]),
            family=Uniform01Priority(),
        )
        s = empty.summary()
        assert s["size"] == 0
        assert s["total_estimate"] == 0.0
        assert s["min_probability"] is None
