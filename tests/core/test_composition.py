"""Tests for threshold composition (repro.core.composition)."""

import numpy as np
import pytest

from repro.core.composition import ClampedRule, MaxComposition, MinComposition
from repro.core.thresholds import BottomK, FixedThreshold, StratifiedBottomK


class TestMinMaxValues:
    def test_min_is_pointwise_min(self, rng):
        pr = rng.random(15)
        rules = [BottomK(3), FixedThreshold(0.25)]
        combo = MinComposition(rules)
        expected = np.minimum(rules[0].thresholds(pr), rules[1].thresholds(pr))
        np.testing.assert_array_equal(combo.thresholds(pr), expected)

    def test_max_is_pointwise_max(self, rng):
        pr = rng.random(15)
        rules = [BottomK(3), FixedThreshold(0.25)]
        combo = MaxComposition(rules)
        expected = np.maximum(rules[0].thresholds(pr), rules[1].thresholds(pr))
        np.testing.assert_array_equal(combo.thresholds(pr), expected)

    def test_min_sample_is_intersection(self, rng):
        pr = rng.random(20)
        a, b = BottomK(5), BottomK(9)
        combo = MinComposition([a, b])
        expected = set(a.sample(pr)) & set(b.sample(pr))
        assert set(combo.sample(pr)) == expected

    def test_max_sample_is_union(self, rng):
        pr = rng.random(20)
        strata = np.array(["x", "y"] * 10)
        a = StratifiedBottomK(strata, k=3)
        b = BottomK(4)
        combo = MaxComposition([a, b])
        expected = set(a.sample(pr)) | set(b.sample(pr))
        assert set(combo.sample(pr)) == expected

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            MinComposition([])

    def test_monotone_flag_propagates(self):
        rule = BottomK(2)
        rule.monotone = False
        assert MinComposition([rule, BottomK(2)]).monotone is False
        assert MaxComposition([BottomK(2)]).monotone is True


class TestClamped:
    def test_clamps_both_sides(self, rng):
        pr = rng.random(10)
        rule = ClampedRule(BottomK(3), lo=0.1, hi=0.5)
        t = rule.thresholds(pr)
        assert np.all(t >= 0.1) and np.all(t <= 0.5)

    def test_infinite_thresholds_capped(self, rng):
        pr = rng.random(3)  # underfull bottom-k -> +inf
        rule = ClampedRule(BottomK(5), hi=1.0)
        assert np.all(rule.thresholds(pr) == 1.0)
