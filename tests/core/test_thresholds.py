"""Tests for the threshold rules (repro.core.thresholds)."""

import numpy as np
import pytest

from repro.core.thresholds import (
    BottomK,
    BudgetPrefix,
    DescendingStoppingRule,
    FixedThreshold,
    SequentialBottomK,
    StratifiedBottomK,
    VarianceTargetRule,
    sample_indices,
    sample_mask,
)


class TestSampleHelpers:
    def test_mask_strict_inequality(self):
        mask = sample_mask(np.array([0.2, 0.5, 0.5]), np.array([0.5, 0.5, 0.6]))
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_indices(self):
        idx = sample_indices(np.array([0.9, 0.1, 0.3]), np.full(3, 0.5))
        np.testing.assert_array_equal(idx, [1, 2])


class TestFixedThreshold:
    def test_broadcast_constant(self):
        rule = FixedThreshold(0.3)
        np.testing.assert_array_equal(rule.thresholds(np.zeros(4)), np.full(4, 0.3))

    def test_per_item_vector(self):
        rule = FixedThreshold(np.array([0.1, 0.2]))
        np.testing.assert_array_equal(rule.thresholds(np.zeros(2)), [0.1, 0.2])


class TestBottomK:
    def test_threshold_is_order_statistic(self, rng):
        pr = rng.random(50)
        rule = BottomK(7)
        t = rule.thresholds(pr)
        assert np.all(t == np.sort(pr)[7])

    def test_sample_size_is_k(self, rng):
        pr = rng.random(100)
        assert BottomK(10).sample(pr).size == 10

    def test_underfull_keeps_everything(self, rng):
        pr = rng.random(5)
        rule = BottomK(10)
        assert np.all(np.isinf(rule.thresholds(pr)))
        assert rule.sample(pr).size == 5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            BottomK(0)


class TestBudgetPrefix:
    def test_prefix_semantics(self):
        # priorities ascending order: sizes 3, 4, 5 with budget 8 keeps 2.
        pr = np.array([0.1, 0.2, 0.3])
        rule = BudgetPrefix(sizes=[3.0, 4.0, 5.0], budget=8.0)
        t = rule.thresholds(pr)
        assert np.all(t == 0.3)
        assert rule.sample(pr).size == 2

    def test_first_overflow_excludes_rest_even_if_it_fits(self):
        # sizes in priority order: 5, 9, 1 — the 9 overflows a budget of 10,
        # and the trailing 1 is excluded too despite fitting.
        pr = np.array([0.1, 0.2, 0.3])
        rule = BudgetPrefix(sizes=[5.0, 9.0, 1.0], budget=10.0)
        assert rule.sample(pr).size == 1

    def test_everything_fits(self):
        rule = BudgetPrefix(sizes=[1.0, 1.0], budget=10.0)
        assert np.all(np.isinf(rule.thresholds(np.array([0.5, 0.6]))))

    def test_oversized_item_blocks(self):
        pr = np.array([0.05, 0.5])
        rule = BudgetPrefix(sizes=[100.0, 1.0], budget=10.0)
        # The huge item is first by priority; everything is excluded.
        assert rule.sample(pr).size == 0

    def test_sample_always_fits_budget(self, rng):
        for trial in range(20):
            n = 30
            pr = rng.random(n)
            sizes = rng.integers(1, 20, n).astype(float)
            rule = BudgetPrefix(sizes, budget=50.0)
            idx = rule.sample(pr)
            assert sizes[idx].sum() <= 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetPrefix(sizes=[-1.0], budget=5.0)
        with pytest.raises(ValueError):
            BudgetPrefix(sizes=[1.0], budget=0.0)
        with pytest.raises(ValueError):
            BudgetPrefix(sizes=[1.0, 2.0], budget=5.0).thresholds(np.zeros(3))


class TestStratifiedBottomK:
    def test_per_stratum_thresholds(self, rng):
        strata = np.array(["a"] * 10 + ["b"] * 10)
        pr = rng.random(20)
        rule = StratifiedBottomK(strata, k=3)
        t = rule.thresholds(pr)
        assert np.all(t[:10] == np.sort(pr[:10])[3])
        assert np.all(t[10:] == np.sort(pr[10:])[3])

    def test_small_stratum_kept_whole(self, rng):
        strata = np.array(["a"] * 2 + ["b"] * 10)
        pr = rng.random(12)
        t = StratifiedBottomK(strata, k=5).thresholds(pr)
        assert np.all(np.isinf(t[:2]))

    def test_each_stratum_gets_k(self, rng):
        strata = np.repeat(["a", "b", "c"], 20)
        pr = rng.random(60)
        rule = StratifiedBottomK(strata, k=4)
        idx = rule.sample(pr)
        for s in "abc":
            assert np.sum(strata[idx] == s) == 4


class TestSequentialBottomK:
    def test_threshold_is_prefix_order_statistic(self, rng):
        pr = rng.random(30)
        rule = SequentialBottomK(5)
        t = rule.thresholds(pr)
        assert np.all(np.isinf(t[:5]))
        for i in range(5, 30):
            assert t[i] == np.sort(pr[:i])[4]

    def test_sample_contains_final_bottomk(self, rng):
        # "Ever in the sketch" is a superset of the final bottom-k sample.
        pr = rng.random(50)
        ever = set(SequentialBottomK(5).sample(pr).tolist())
        final = set(np.argsort(pr)[:5].tolist())
        assert final <= ever


class TestDescendingStoppingRule:
    def test_stop_after_m_items(self, rng):
        # Stopping after exactly 4 inspected priorities = bottom-(n-4) rule.
        pr = rng.random(12)
        rule = DescendingStoppingRule(lambda prefix: prefix.size == 4)
        t = rule.thresholds(pr)
        assert np.all(t == np.sort(pr)[::-1][3])
        assert rule.sample(pr).size == 8

    def test_never_stop_keeps_all(self, rng):
        pr = rng.random(6)
        rule = DescendingStoppingRule(lambda prefix: False)
        assert np.all(np.isinf(rule.thresholds(pr)))


class TestVarianceTargetRule:
    def test_threshold_meets_target(self, rng):
        n = 80
        weights = rng.lognormal(0, 0.5, n)
        values = weights.copy()
        pr = rng.random(n) / weights
        rule = VarianceTargetRule(values, weights, delta=values.sum() * 0.05)
        t = rule.thresholds(pr)[0]
        below = pr < t
        probs = np.minimum(1.0, weights[below] * t)
        vhat = np.sum(values[below] ** 2 * (1 - probs) / probs**2)
        assert vhat >= (values.sum() * 0.05) ** 2

    def test_larger_delta_smaller_threshold(self, rng):
        # Tolerating more error means sampling fewer items: the stopping
        # threshold decreases as delta grows.
        n = 60
        weights = rng.lognormal(0, 0.5, n)
        pr = rng.random(n) / weights
        t_tight = VarianceTargetRule(weights, weights, delta=1.0).thresholds(pr)[0]
        t_loose = VarianceTargetRule(weights, weights, delta=10.0).thresholds(pr)[0]
        assert t_loose <= t_tight

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            VarianceTargetRule([1.0], [1.0], delta=0.0)
