"""Mergeable windowed moments and the exponential histogram
(repro.core.windowed) plus the shared time helpers in
repro.core.estimators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    ExponentialHistogram,
    Moments,
    canonical_times,
    decay_factors,
    deleted_moments,
    merged_moments,
    time_window_mask,
)


# ----------------------------------------------------------------------
# Time helpers
# ----------------------------------------------------------------------
class TestTimeHelpers:
    def test_canonical_times_none_is_all_nan(self):
        t = canonical_times(None, 5)
        assert t.shape == (5,) and np.isnan(t).all()

    def test_canonical_times_validates_length(self):
        with pytest.raises(ValueError):
            canonical_times([1.0, 2.0], 3)

    def test_window_mask_half_open_and_nan_excluded(self):
        t = np.array([1.0, 2.0, 3.0, np.nan])
        mask = time_window_mask(t, 1.0, 3.0)
        assert mask.tolist() == [False, True, True, False]

    def test_window_mask_unbounded_sides(self):
        t = np.array([1.0, 2.0, np.nan])
        assert time_window_mask(t, None, None).tolist() == [True, True, False]
        assert time_window_mask(t, 1.5, None).tolist() == [False, True, False]
        assert time_window_mask(t, None, 1.5).tolist() == [True, False, False]

    def test_decay_factors_clip_future_ages_at_zero(self):
        d = decay_factors(np.array([1.0, 2.0, 5.0]), 0.5, 2.0)
        assert d[0] == pytest.approx(math.exp(-0.5))
        assert d[1] == pytest.approx(1.0)
        assert d[2] == pytest.approx(1.0)  # t > now: no up-weighting

    def test_decay_factors_reject_negative_rate(self):
        with pytest.raises(ValueError):
            decay_factors(np.array([1.0]), -0.5, 2.0)


# ----------------------------------------------------------------------
# Moments algebra
# ----------------------------------------------------------------------
class TestMoments:
    def test_of_matches_numpy(self):
        x = np.random.default_rng(0).normal(3.0, 2.0, 100)
        m = Moments.of(x)
        assert m.n == 100
        assert m.mean == pytest.approx(x.mean())
        assert m.variance == pytest.approx(x.var())
        assert m.total == pytest.approx(x.sum())

    def test_merge_equals_whole(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(0, 1, 57), rng.normal(5, 3, 43)
        merged = merged_moments(Moments.of(a), Moments.of(b))
        whole = Moments.of(np.concatenate([a, b]))
        assert merged.n == whole.n
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.m2 == pytest.approx(whole.m2)

    def test_merge_with_empty_is_identity(self):
        m = Moments.of(np.arange(10.0))
        assert merged_moments(m, Moments.empty()) == m
        assert merged_moments(Moments.empty(), m) == m

    def test_delete_inverts_merge(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(0, 1, 60), rng.normal(2, 2, 40)
        whole = Moments.of(np.concatenate([a, b]))
        recovered = deleted_moments(whole, Moments.of(b))
        expected = Moments.of(a)
        assert recovered.n == expected.n
        assert recovered.mean == pytest.approx(expected.mean)
        assert recovered.m2 == pytest.approx(expected.m2, abs=1e-8)

    def test_delete_more_than_whole_raises(self):
        with pytest.raises(ValueError):
            deleted_moments(Moments.of(np.arange(3.0)),
                            Moments.of(np.arange(5.0)))


# ----------------------------------------------------------------------
# Exponential histogram
# ----------------------------------------------------------------------
class TestExponentialHistogram:
    def _fill(self, n=500, eps=0.05, seed=3):
        rng = np.random.default_rng(seed)
        values = rng.normal(10.0, 4.0, n)
        times = np.sort(rng.uniform(0.0, 100.0, n))
        eh = ExponentialHistogram(eps=eps)
        for v, t in zip(values, times):
            eh.add(float(v), float(t))
        return eh, values, times

    def test_times_must_be_nondecreasing(self):
        eh = ExponentialHistogram()
        eh.add(1.0, 5.0)
        with pytest.raises(ValueError):
            eh.add(1.0, 4.0)

    def test_full_range_moments_are_exact(self):
        eh, values, _ = self._fill()
        m = eh.window_moments(-math.inf)
        assert m.n == len(values)
        assert m.total == pytest.approx(values.sum())
        assert m.variance == pytest.approx(values.var(), rel=1e-9)

    def test_windowed_count_within_eps(self):
        eh, values, times = self._fill()
        for lo in (10.0, 50.0, 90.0):
            true_n = int((times > lo).sum())
            approx = eh.window_moments(lo)
            # The boundary bucket may straddle lo: count error is
            # bounded by the eps fraction of the true suffix count.
            assert abs(approx.n - true_n) <= max(1, 2 * eh.eps * true_n + 1)

    def test_state_is_sublinear(self):
        eh, _, _ = self._fill(n=5000)
        assert len(eh) < 400  # O(log n / eps) buckets, not O(n)

    def test_expire_drops_old_buckets(self):
        eh, _, times = self._fill()
        before = len(eh)
        eh.expire(horizon=50.0)
        assert 0 < len(eh) < before
        after = eh.window_moments(60.0)
        assert after.n > 0
