"""Tests for reproducible RNG fan-out (repro.core.rng)."""

import numpy as np
import pytest

from repro.core.rng import RngFactory, as_generator, spawn_generators


class TestRngFactory:
    def test_same_tokens_same_stream(self):
        a = RngFactory(7).generator("x", 1).random(5)
        b = RngFactory(7).generator("x", 1).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_tokens_differ(self):
        a = RngFactory(7).generator("x").random(5)
        b = RngFactory(7).generator("y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(1).generator("x").random(5)
        b = RngFactory(2).generator("x").random(5)
        assert not np.array_equal(a, b)

    def test_string_tokens_stable_across_factories(self):
        # CRC-based token mapping must not depend on process hash salt.
        a = RngFactory(0).generator("workload").random()
        b = RngFactory(0).generator("workload").random()
        assert a == b

    def test_child_factory_disjoint(self):
        root = RngFactory(3)
        child = root.child("sub")
        a = root.generator("x").random(4)
        b = child.generator("x").random(4)
        assert not np.array_equal(a, b)

    def test_seed_property(self):
        assert RngFactory(9).seed == 9


class TestSpawn:
    def test_spawn_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_spawned_streams_distinct(self):
        gens = spawn_generators(0, 3)
        draws = [g.random(4).tolist() for g in gens]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_generators(1, 3)]
        b = [g.random() for g in spawn_generators(1, 3)]
        assert a == b


class TestAsGenerator:
    def test_int_seed(self):
        assert as_generator(5).random() == as_generator(5).random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_generator("seed")
