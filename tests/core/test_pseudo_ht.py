"""Tests for pseudo-HT estimators (Kendall's tau) — Section 2.6.2."""

import numpy as np
import pytest
from scipy import stats

from repro.core.priorities import Uniform01Priority
from repro.core.pseudo_ht import (
    kendall_tau_estimate,
    kendall_tau_population,
    kendall_tau_variance_estimate,
)
from repro.core.thresholds import BottomK

from tests.helpers import exact_expectation


@pytest.fixture
def xy():
    rng = np.random.default_rng(7)
    x = rng.normal(size=7)
    y = 0.5 * x + rng.normal(size=7)
    return x, y


class TestPopulationTau:
    def test_matches_scipy(self, xy):
        x, y = xy
        ours = kendall_tau_population(x, y)
        scipys = stats.kendalltau(x, y).statistic
        assert ours == pytest.approx(scipys, abs=1e-12)

    def test_perfect_concordance(self):
        x = np.arange(5.0)
        assert kendall_tau_population(x, 2 * x + 1) == 1.0
        assert kendall_tau_population(x, -x) == -1.0

    def test_needs_two_items(self):
        with pytest.raises(ValueError):
            kendall_tau_population(np.array([1.0]), np.array([1.0]))


class TestTauEstimate:
    def test_exactly_unbiased_under_poisson(self, xy):
        x, y = xy
        probs = np.array([0.5, 0.8, 0.6, 0.9, 0.7, 0.55, 0.85])
        truth = kendall_tau_population(x, y)
        expected = exact_expectation(
            probs,
            lambda mask: kendall_tau_estimate(
                x[mask], y[mask], probs[mask], x.size
            ),
        )
        assert expected == pytest.approx(truth, abs=1e-9)

    def test_unbiased_under_bottomk_monte_carlo(self, xy):
        # Bottom-k is 2-substitutable, so the tau estimator stays unbiased
        # when its adaptive threshold is treated as fixed (Section 2.6.2).
        x, y = xy
        n, k = x.size, 4
        rule = BottomK(k)
        fam = Uniform01Priority()
        truth = kendall_tau_population(x, y)
        rng = np.random.default_rng(3)
        estimates = []
        for _ in range(20_000):
            u = rng.random(n)
            t = rule.thresholds(u)[0]
            mask = u < t
            probs = np.asarray(fam.pseudo_inclusion(t, np.ones(mask.sum())))
            estimates.append(
                kendall_tau_estimate(x[mask], y[mask], probs, n)
            )
        arr = np.asarray(estimates)
        se = arr.std(ddof=1) / np.sqrt(arr.size)
        assert abs(arr.mean() - truth) < 4.5 * se

    def test_small_sample_returns_zero(self, xy):
        x, y = xy
        assert kendall_tau_estimate(x[:1], y[:1], np.array([0.5]), 7) == 0.0

    def test_full_sample_equals_population(self, xy):
        x, y = xy
        est = kendall_tau_estimate(x, y, np.ones(x.size), x.size)
        assert est == pytest.approx(kendall_tau_population(x, y))


class TestTauVariance:
    def test_exactly_unbiased_under_poisson(self, xy):
        """The degree-4 variance estimator of Section 2.6.2, enumerated."""
        x, y = xy
        n = x.size
        probs = np.array([0.6, 0.85, 0.7, 0.9, 0.75, 0.65, 0.8])
        truth = kendall_tau_population(x, y)
        true_variance = exact_expectation(
            probs,
            lambda mask: (
                kendall_tau_estimate(x[mask], y[mask], probs[mask], n) - truth
            )
            ** 2,
        )
        expected_estimate = exact_expectation(
            probs,
            lambda mask: kendall_tau_variance_estimate(
                x[mask], y[mask], probs[mask], n
            ),
        )
        assert expected_estimate == pytest.approx(true_variance, rel=1e-8)

    def test_zero_variance_when_certain(self, xy):
        x, y = xy
        v = kendall_tau_variance_estimate(x, y, np.ones(x.size), x.size)
        assert v == pytest.approx(0.0, abs=1e-12)

    def test_positive_on_typical_sample(self, xy):
        x, y = xy
        probs = np.full(x.size, 0.5)
        assert kendall_tau_variance_estimate(x, y, probs, x.size) > 0.0
