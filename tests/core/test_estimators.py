"""Tests for HT estimation (repro.core.estimators).

Fixed-threshold designs admit exact enumeration of all inclusion patterns,
so unbiasedness here is checked to numerical precision, not statistically.
"""

import numpy as np
import pytest

from repro.core.estimators import (
    hajek_mean,
    ht_confidence_interval,
    ht_stderr,
    ht_total,
    ht_variance_estimate,
    ht_variance_true,
    inclusion_probabilities,
)
from repro.core.priorities import InverseWeightPriority, Uniform01Priority

from tests.helpers import enumerate_poisson, exact_expectation


@pytest.fixture
def design():
    values = np.array([1.0, 4.0, 2.5, 7.0, 0.5])
    probs = np.array([0.2, 0.9, 0.5, 0.7, 0.35])
    return values, probs


class TestHTTotal:
    def test_exactly_unbiased(self, design):
        values, probs = design
        expected = exact_expectation(
            probs, lambda mask: ht_total(values[mask], probs[mask])
        )
        assert expected == pytest.approx(values.sum(), abs=1e-10)

    def test_empty_sample_is_zero(self):
        assert ht_total(np.array([]), np.array([])) == 0.0

    def test_rejects_invalid_probs(self):
        with pytest.raises(ValueError):
            ht_total([1.0], [0.0])
        with pytest.raises(ValueError):
            ht_total([1.0], [1.5])

    def test_probability_one_is_identity(self):
        assert ht_total([3.0, 4.0], [1.0, 1.0]) == 7.0


class TestHTVariance:
    def test_true_variance_matches_enumeration(self, design):
        values, probs = design
        total = values.sum()
        second_moment = exact_expectation(
            probs,
            lambda mask: (ht_total(values[mask], probs[mask]) - total) ** 2,
        )
        assert ht_variance_true(values, probs) == pytest.approx(
            second_moment, abs=1e-9
        )

    def test_variance_estimate_exactly_unbiased(self, design):
        values, probs = design
        expected = exact_expectation(
            probs, lambda mask: ht_variance_estimate(values[mask], probs[mask])
        )
        assert expected == pytest.approx(ht_variance_true(values, probs), abs=1e-9)

    def test_stderr_is_sqrt(self, design):
        values, probs = design
        assert ht_stderr(values, probs) == pytest.approx(
            np.sqrt(ht_variance_estimate(values, probs))
        )

    def test_certain_items_contribute_no_variance(self):
        assert ht_variance_estimate([5.0], [1.0]) == 0.0
        assert ht_variance_true([5.0], [1.0]) == 0.0


class TestConfidenceInterval:
    def test_interval_brackets_estimate(self, design):
        values, probs = design
        lo, hi = ht_confidence_interval(values, probs, level=0.95)
        assert lo < ht_total(values, probs) < hi

    def test_coverage_monte_carlo(self, rng):
        # Wald interval coverage should be near nominal for a moderate
        # Poisson design (CLT regime).
        n = 120
        values = rng.lognormal(0, 0.4, n)
        probs = np.clip(rng.random(n), 0.3, 0.95)
        truth = values.sum()
        hits = 0
        trials = 600
        for _ in range(trials):
            mask = rng.random(n) < probs
            lo, hi = ht_confidence_interval(values[mask], probs[mask], 0.9)
            hits += int(lo <= truth <= hi)
        assert 0.84 <= hits / trials <= 0.95

    def test_level_validation(self, design):
        values, probs = design
        with pytest.raises(ValueError):
            ht_confidence_interval(values, probs, level=1.5)


class TestHajek:
    def test_full_sample_is_plain_mean(self):
        values = np.array([2.0, 4.0, 9.0])
        assert hajek_mean(values, np.ones(3)) == pytest.approx(values.mean())

    def test_consistency_monte_carlo(self, rng):
        n = 4000
        values = rng.normal(10.0, 2.0, n)
        probs = np.full(n, 0.25)
        mask = rng.random(n) < probs
        est = hajek_mean(values[mask], probs[mask])
        assert est == pytest.approx(values.mean(), abs=0.2)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            hajek_mean(np.array([]), np.array([]))


class TestInclusionProbabilities:
    def test_weighted_family(self):
        fam = InverseWeightPriority()
        p = inclusion_probabilities(fam, np.array([0.1, np.inf]), np.array([5.0, 2.0]))
        np.testing.assert_allclose(p, [0.5, 1.0])

    def test_uniform_family(self):
        fam = Uniform01Priority()
        p = inclusion_probabilities(fam, np.array([0.3, 0.7]))
        np.testing.assert_allclose(p, [0.3, 0.7])


class TestEnumerationHelper:
    def test_probabilities_sum_to_one(self):
        probs = np.array([0.3, 0.6, 0.2])
        total = sum(p for _, p in enumerate_poisson(probs))
        assert total == pytest.approx(1.0, abs=1e-12)
