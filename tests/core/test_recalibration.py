"""Tests for recalibration and substitutability — the paper's Section 2.5/2.6.

These tests execute the paper's worked examples directly:

* bottom-k thresholds are fully substitutable (Section 2.5.1);
* the "ever in the sketch" sequential rule is 1- but not 2-substitutable
  (Section 2.7's example);
* the mean-threshold rule is not even 1-substitutable;
* Theorem 6's singleton condition agrees with full substitutability;
* Lemma 1's conditional inclusion probability matches brute force.
"""

import numpy as np
import pytest

from repro.core.pathology import ExcludeGroupRule, MeanThresholdRule
from repro.core.priorities import Uniform01Priority
from repro.core.recalibration import (
    conditional_inclusion_probability,
    is_substitutable,
    recalibrate,
    recalibrated_inclusion,
    substitutability_order,
    verify_singleton_condition,
)
from repro.core.thresholds import (
    BottomK,
    BudgetPrefix,
    FixedThreshold,
    SequentialBottomK,
    StratifiedBottomK,
)
from repro.core.composition import MaxComposition, MinComposition


class TestRecalibrate:
    def test_definition_flooring(self, rng):
        pr = rng.random(10)
        rule = BottomK(3)
        recal = recalibrate(rule, pr, subset=[0, 1])
        modified = pr.copy()
        modified[[0, 1]] = 0.0
        np.testing.assert_array_equal(recal, rule.thresholds(modified))

    def test_never_increases_threshold_for_monotone_rules(self, rng):
        # tau_tilde <= tau is the defining inequality of Section 2.5.
        for rule in (BottomK(4), SequentialBottomK(3), MeanThresholdRule()):
            pr = rng.random(12)
            original = rule.thresholds(pr)
            sampled = np.flatnonzero(pr < original)
            for i in sampled[:4]:
                recal = recalibrate(rule, pr, [int(i)])
                assert np.all(recal <= original + 1e-15)

    def test_empty_subset_is_identity(self, rng):
        pr = rng.random(8)
        rule = BottomK(3)
        np.testing.assert_array_equal(
            recalibrate(rule, pr, []), rule.thresholds(pr)
        )

    def test_requires_monotone_rule(self):
        rule = BottomK(2)
        rule.monotone = False
        with pytest.raises(ValueError):
            recalibrate(rule, np.array([0.1, 0.2, 0.3]), [0])

    def test_recalibrated_inclusion_indicators(self, rng):
        pr = rng.random(9)
        rule = BottomK(3)
        sampled = rule.sample(pr)
        ind = recalibrated_inclusion(rule, pr, sampled.tolist())
        assert np.all(ind)  # substitutable => indicators stay 1


class TestSubstitutability:
    @pytest.mark.parametrize("seed", range(5))
    def test_bottomk_fully_substitutable(self, seed):
        pr = np.random.default_rng(seed).random(12)
        assert is_substitutable(BottomK(4), pr)

    @pytest.mark.parametrize("seed", range(5))
    def test_fixed_threshold_substitutable(self, seed):
        pr = np.random.default_rng(seed).random(10)
        assert is_substitutable(FixedThreshold(0.4), pr)

    @pytest.mark.parametrize("seed", range(5))
    def test_budget_rule_substitutable(self, seed):
        rng = np.random.default_rng(seed)
        pr = rng.random(12)
        sizes = rng.integers(1, 6, 12).astype(float)
        assert is_substitutable(BudgetPrefix(sizes, budget=12.0), pr)

    @pytest.mark.parametrize("seed", range(5))
    def test_stratified_substitutable(self, seed):
        rng = np.random.default_rng(seed)
        pr = rng.random(12)
        strata = np.array(list("aabbbbccaabc"))
        assert is_substitutable(StratifiedBottomK(strata, k=2), pr)

    @pytest.mark.parametrize("seed", range(8))
    def test_sequential_rule_exactly_order_one(self, seed):
        # The paper's Section 2.7 example: 1-substitutable, not 2-.
        pr = np.random.default_rng(seed).random(14)
        order = substitutability_order(SequentialBottomK(3), pr)
        assert order >= 1
        sample_size = SequentialBottomK(3).sample(pr).size
        if sample_size >= 2 and order >= 2:
            # Most realizations break at pairs; allow benign draws but make
            # sure *some* seed exhibits the failure (checked below).
            pass

    def test_sequential_rule_not_2_substitutable_somewhere(self):
        # At least one realization must witness the 2-substitutability
        # failure the paper describes.
        found = False
        for seed in range(40):
            pr = np.random.default_rng(seed).random(14)
            if substitutability_order(SequentialBottomK(3), pr) == 1:
                found = True
                break
        assert found, "no realization exhibited the Section 2.7 failure"

    @pytest.mark.parametrize("seed", range(5))
    def test_mean_rule_not_even_singleton(self, seed):
        pr = np.random.default_rng(seed).random(10)
        assert substitutability_order(MeanThresholdRule(), pr) == 0

    def test_d_substitutable_check_matches_order(self, rng):
        pr = rng.random(12)
        rule = SequentialBottomK(3)
        order = substitutability_order(rule, pr)
        assert is_substitutable(rule, pr, d=order)
        if order < rule.sample(pr).size:
            assert not is_substitutable(rule, pr, d=order + 1)


class TestTheorem6:
    """The singleton condition implies full substitutability."""

    @pytest.mark.parametrize("seed", range(10))
    def test_singleton_iff_full_for_bundled_rules(self, seed):
        rng = np.random.default_rng(seed)
        pr = rng.random(10)
        sizes = rng.integers(1, 5, 10).astype(float)
        rules = [
            BottomK(3),
            BudgetPrefix(sizes, budget=10.0),
            StratifiedBottomK(np.array(list("ababababab")), k=2),
            MeanThresholdRule(),
        ]
        for rule in rules:
            singleton = verify_singleton_condition(rule, pr)
            full = is_substitutable(rule, pr)
            if singleton:
                assert full, f"{rule} passes singletons but fails Theorem 6"


class TestCompositionSubstitutability:
    """Theorem 9 closure, executed."""

    @pytest.mark.parametrize("seed", range(5))
    def test_min_of_substitutable_is_substitutable(self, seed):
        rng = np.random.default_rng(seed)
        pr = rng.random(12)
        rule = MinComposition([BottomK(4), FixedThreshold(0.6)])
        assert is_substitutable(rule, pr)

    @pytest.mark.parametrize("seed", range(8))
    def test_max_of_disjoint_stratified_is_1_substitutable(self, seed):
        """Section 3.7's composition is 1-substitutable, per Theorem 9.

        Reproduction note (recorded in DESIGN.md): the paper further claims
        full substitutability via Theorem 6, but the singleton condition
        can fail — flooring an item that lies *above* another stratum's
        threshold pulls that stratum's order statistic (and hence a
        co-member's threshold) down.  Our exhaustive checker exhibits
        realizations of order exactly 1, so only 1-substitutability (which
        is what unbiased HT subset sums need) is asserted; the stratified
        sampler's Monte-Carlo unbiasedness test covers the practical claim.
        """
        rng = np.random.default_rng(seed)
        pr = rng.random(12)
        dims = [
            StratifiedBottomK(np.array(list("aaaabbbbcccc")), k=2),
            StratifiedBottomK(np.array(list("xyxyxyxyxyxy")), k=2),
        ]
        assert substitutability_order(MaxComposition(dims), pr) >= 1

    def test_max_of_stratified_not_always_fully_substitutable(self):
        # The counterexample that contradicts the paper's Theorem 6 claim.
        found = False
        for seed in range(30):
            pr = np.random.default_rng(seed).random(12)
            dims = [
                StratifiedBottomK(np.array(list("aaaabbbbcccc")), k=2),
                StratifiedBottomK(np.array(list("xyxyxyxyxyxy")), k=2),
            ]
            rule = MaxComposition(dims)
            if substitutability_order(rule, pr) < rule.sample(pr).size:
                found = True
                break
        assert found

    @pytest.mark.parametrize("seed", range(5))
    def test_max_of_sequential_is_1_substitutable(self, seed):
        rng = np.random.default_rng(seed)
        pr = rng.random(12)
        rule = MaxComposition([SequentialBottomK(3), SequentialBottomK(5)])
        assert substitutability_order(rule, pr) >= 1


class TestLemma1:
    def test_conditional_inclusion_probability(self):
        """Brute-force check of Lemma 1 on bottom-k.

        Conditioning on the recalibrated threshold value, the inclusion of
        a sampled subset must occur with probability prod F(T_tilde).
        """
        rng = np.random.default_rng(0)
        n, k = 6, 2
        rule = BottomK(k)
        fam = Uniform01Priority()
        # Condition on everything except the subset's priorities: redraw
        # the subset and compare empirical inclusion to the lemma.
        base = rng.random(n)
        subset = rule.sample(base)[:2].tolist()
        lemma_p = conditional_inclusion_probability(rule, base, subset, fam)
        recal = recalibrate(rule, base, subset)
        hits = 0
        trials = 40_000
        draws = rng.random((trials, len(subset)))
        for row in draws:
            pr = base.copy()
            pr[subset] = row
            t = rule.thresholds(pr)
            # The recalibrated threshold is fixed by construction; count
            # inclusion of the whole subset under fresh priorities.
            if np.all(pr[subset] < recal[subset]):
                hits += 1
                np.testing.assert_allclose(t[subset], recal[subset], atol=1e-12)
        assert hits / trials == pytest.approx(lemma_p, abs=0.01)


class TestExcludeGroupPathology:
    def test_group_never_sampled(self, rng):
        groups = np.array(["F", "M"] * 10)
        rule = ExcludeGroupRule(groups, "F")
        pr = rng.random(20)
        idx = rule.sample(pr)
        assert np.all(groups[idx] == "M")

    def test_substitutable_but_zero_probability(self, rng):
        # The rule passes the substitutability check — the failure is the
        # positivity condition F_i(T_i) > 0, exactly as Section 2.3 warns.
        groups = np.array(["F", "M"] * 8)
        pr = rng.random(16)
        rule = ExcludeGroupRule(groups, "F")
        assert is_substitutable(rule, pr)
        t = rule.thresholds(pr)
        female_probs = np.minimum(t[groups == "F"], 1.0)
        # Every female's priority is >= the threshold: estimation impossible.
        assert np.all(pr[groups == "F"] >= t[groups == "F"])
        assert np.all(female_probs < 1.0)
