"""Tests for the distinct-sums engine (repro.core.distinct_sums).

The estimators' defining property — exact unbiasedness under Poisson
sampling — is verified by exhaustive enumeration for degrees 2-4.
"""

import itertools
import math

import numpy as np
import pytest

from repro.core.distinct_sums import (
    central_moment_unbiased,
    estimate_distinct_product,
    estimate_power_sum_product,
    kurtosis_estimate,
    set_partitions,
    skewness_estimate,
)

from tests.helpers import exact_expectation


def bell_number(n: int) -> int:
    """Bell numbers via the triangle recurrence (for the partition test)."""
    row = [1]
    for _ in range(n - 1):
        new = [row[-1]]
        for value in row:
            new.append(new[-1] + value)
        row = new
    return row[-1]


class TestSetPartitions:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 5), (4, 15)])
    def test_counts_are_bell_numbers(self, n, expected):
        parts = list(set_partitions(range(n)))
        assert len(parts) == expected == bell_number(n)

    def test_partitions_cover_all_items(self):
        for partition in set_partitions(range(4)):
            flat = sorted(i for block in partition for i in block)
            assert flat == [0, 1, 2, 3]

    def test_empty(self):
        assert list(set_partitions([])) == [[]]


@pytest.fixture
def population():
    values = np.array([1.0, -2.0, 3.5, 0.5])
    probs = np.array([0.4, 0.8, 0.55, 0.7])
    return values, probs


def distinct_sum_truth(values: np.ndarray, d: int) -> float:
    """Brute-force sum over distinct index tuples of prod values."""
    n = values.size
    total = 0.0
    for tup in itertools.permutations(range(n), d):
        total += math.prod(values[i] for i in tup)
    return total


class TestDistinctProduct:
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_exactly_unbiased(self, population, d):
        values, probs = population
        truth = distinct_sum_truth(values, d)
        expected = exact_expectation(
            probs,
            lambda mask: estimate_distinct_product([values[mask]] * d, probs[mask]),
        )
        assert expected == pytest.approx(truth, abs=1e-8)

    def test_mixed_vectors(self, population):
        values, probs = population
        other = values**2
        truth = sum(
            values[i] * other[j]
            for i in range(4)
            for j in range(4)
            if i != j
        )
        expected = exact_expectation(
            probs,
            lambda mask: estimate_distinct_product(
                [values[mask], other[mask]], probs[mask]
            ),
        )
        assert expected == pytest.approx(truth, abs=1e-8)

    def test_alignment_validation(self, population):
        values, probs = population
        with pytest.raises(ValueError):
            estimate_distinct_product([values[:2]], probs)

    def test_empty_degree(self, population):
        values, probs = population
        assert estimate_distinct_product([], probs) == 1.0


class TestPowerSumProducts:
    @pytest.mark.parametrize(
        "exponents",
        [(1,), (2,), (1, 1), (2, 1), (1, 1, 1), (2, 1, 1), (1, 1, 1, 1)],
    )
    def test_exactly_unbiased(self, population, exponents):
        values, probs = population
        truth = math.prod(float(np.sum(values**r)) for r in exponents)
        expected = exact_expectation(
            probs,
            lambda mask: estimate_power_sum_product(
                values[mask], probs[mask], exponents
            ),
        )
        assert expected == pytest.approx(truth, rel=1e-8)


class TestCentralMoments:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_exactly_unbiased(self, population, k):
        values, probs = population
        truth = float(np.mean((values - values.mean()) ** k))
        expected = exact_expectation(
            probs,
            lambda mask: central_moment_unbiased(
                values[mask], probs[mask], values.size, k
            ),
        )
        assert expected == pytest.approx(truth, abs=1e-8)

    def test_unsupported_degree(self, population):
        values, probs = population
        with pytest.raises(ValueError):
            central_moment_unbiased(values, probs, 4, 5)

    def test_requires_positive_n(self, population):
        values, probs = population
        with pytest.raises(ValueError):
            central_moment_unbiased(values, probs, 0, 2)


class TestSkewKurtosis:
    def test_consistency_on_large_sample(self, rng):
        # Skewness/kurtosis are plug-in ratios: consistent, so a large
        # lightly-sampled population should land near scipy's values.
        from scipy import stats

        n = 3000
        values = rng.gamma(3.0, 1.0, n)  # skewed population
        probs = np.full(n, 0.5)
        mask = rng.random(n) < probs
        skew = skewness_estimate(values[mask], probs[mask], n)
        kurt = kurtosis_estimate(values[mask], probs[mask], n)
        assert skew == pytest.approx(stats.skew(values), abs=0.25)
        assert kurt == pytest.approx(stats.kurtosis(values, fisher=False), abs=1.0)

    def test_degenerate_variance_rejected(self):
        values = np.array([0.0])
        probs = np.array([1.0])
        with pytest.raises(ValueError):
            skewness_estimate(values, probs, 1)
