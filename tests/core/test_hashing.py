"""Tests for stable hashing (repro.core.hashing)."""

import numpy as np
import pytest
from scipy import stats

from repro.core.hashing import (
    hash_array_to_unit,
    hash_key,
    hash_to_unit,
    splitmix64,
    splitmix64_array,
)


class TestSplitMix:
    def test_scalar_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_scalar_distinct_inputs(self):
        outputs = {splitmix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000  # no collisions on small ints

    def test_scalar_in_64bit_range(self):
        for i in (0, 1, 2**63, 2**64 - 1):
            h = splitmix64(i)
            assert 0 <= h < 2**64

    def test_array_matches_scalar(self):
        keys = np.arange(1000, dtype=np.uint64)
        arr = splitmix64_array(keys)
        for i in (0, 1, 17, 999):
            assert int(arr[i]) == splitmix64(i)

    def test_array_does_not_mutate_input(self):
        keys = np.arange(10, dtype=np.uint64)
        copy = keys.copy()
        splitmix64_array(keys)
        assert np.array_equal(keys, copy)


class TestHashKey:
    def test_int_and_numpy_int_agree(self):
        assert hash_key(7) == hash_key(np.int64(7))

    def test_salt_changes_hash(self):
        assert hash_key(7, salt=0) != hash_key(7, salt=1)

    def test_string_stable(self):
        assert hash_key("user-123") == hash_key("user-123")

    def test_bytes_and_str_routes(self):
        # bytes and the utf-8 string hash identically by construction
        assert hash_key(b"abc") == hash_key("abc")

    def test_tuple_keys_supported(self):
        assert hash_key(("group", 5)) == hash_key(("group", 5))
        assert hash_key(("group", 5)) != hash_key(("group", 6))


class TestHashToUnit:
    def test_open_interval(self):
        values = [hash_to_unit(i) for i in range(5000)]
        assert all(0.0 < v < 1.0 for v in values)

    def test_uniformity_kolmogorov_smirnov(self):
        values = np.array([hash_to_unit(i, salt=3) for i in range(20_000)])
        stat = stats.kstest(values, "uniform")
        assert stat.pvalue > 1e-4, f"hash output not uniform: p={stat.pvalue}"

    def test_salts_give_independent_streams(self):
        a = np.array([hash_to_unit(i, salt=1) for i in range(5000)])
        b = np.array([hash_to_unit(i, salt=2) for i in range(5000)])
        corr = np.corrcoef(a, b)[0, 1]
        assert abs(corr) < 0.05

    def test_vectorized_matches_scalar(self):
        keys = np.arange(256)
        vec = hash_array_to_unit(keys, salt=9)
        scalars = np.array([hash_to_unit(int(k), salt=9) for k in keys])
        np.testing.assert_allclose(vec, scalars, rtol=0, atol=0)

    def test_vectorized_rejects_floats(self):
        with pytest.raises(TypeError):
            hash_array_to_unit(np.array([0.5, 1.5]))

    def test_vectorized_uniformity(self):
        values = hash_array_to_unit(np.arange(50_000), salt=11)
        stat = stats.kstest(values, "uniform")
        assert stat.pvalue > 1e-4
