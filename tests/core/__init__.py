"""Test package (enables package-relative imports under pytest)."""
