"""Checkpoint fuzzing: snapshot/resume at random cuts is bit-exact.

For every mergeable sampler name — standalone and wrapped in a 4-shard
:class:`ShardedSampler` — the stream is interrupted at seeded-random
points, the sampler is serialized with ``to_state()`` (and shipped through
a real ``pickle`` round-trip, as a process pool would), revived with
``sampler_from_state``, and fed the remainder.  The final sample must be
bit-identical to the uninterrupted run, including RNG continuation for the
randomized samplers.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro
from repro import ShardedSampler, make_sampler, mergeable_samplers
from tests.helpers import sample_signature

N = 1200

#: (name, params, weighted) — every mergeable sampler class, with both the
#: randomized and the hash-coordinated variants where the class has both.
MERGEABLE_CONFIGS = [
    ("bottom_k", {"k": 32, "rng": 5}, True),
    ("bottom_k", {"k": 32, "coordinated": True, "salt": 3}, True),
    ("poisson", {"threshold": 0.2, "rng": 5}, True),
    ("poisson", {"threshold": 0.2, "coordinated": True, "salt": 3}, True),
    ("weighted_distinct", {"k": 32, "salt": 3}, True),
    ("adaptive_distinct", {"k": 32, "salt": 3}, False),
    ("kmv", {"k": 32, "salt": 3}, False),
    ("theta", {"k": 32, "salt": 3}, False),
]

IDS = [
    f"{name}-{'coord' if params.get('coordinated') else 'plain'}"
    for name, params, _ in MERGEABLE_CONFIGS
]


def _stream(n: int = N):
    rng = np.random.default_rng(13)
    keys = rng.integers(0, 400, n)
    per_key = np.random.default_rng(14).lognormal(0.0, 0.6, 400)
    return keys, per_key[keys]


def _feed(sampler, keys, weights, weighted: bool) -> None:
    if weighted:
        sampler.update_many(keys, weights)
    else:
        sampler.update_many(keys)


def _random_cuts(trial: int, n_cuts: int = 3) -> list[int]:
    rng = np.random.default_rng(1000 + trial)
    return sorted(int(c) for c in rng.integers(1, N, n_cuts))


def _run_with_checkpoints(build, cuts, keys, weights, weighted):
    """Ingest the stream, interrupting at each cut with a state round-trip."""
    sampler = build()
    start = 0
    for cut in [*cuts, N]:
        _feed(sampler, keys[start:cut], weights[start:cut], weighted)
        state = pickle.loads(pickle.dumps(sampler.to_state()))
        sampler = repro.sampler_from_state(state)
        start = cut
    return sampler


def test_fuzz_covers_every_mergeable_name():
    assert {name for name, _, _ in MERGEABLE_CONFIGS} == (
        set(mergeable_samplers()) - {"sharded"}
    )


@pytest.mark.parametrize("trial", range(3))
@pytest.mark.parametrize("name,params,weighted", MERGEABLE_CONFIGS, ids=IDS)
def test_standalone_checkpoint_resume_is_bit_exact(
    name, params, weighted, trial
):
    keys, weights = _stream()
    straight = make_sampler(name, **params)
    _feed(straight, keys, weights, weighted)
    resumed = _run_with_checkpoints(
        lambda: make_sampler(name, **params),
        _random_cuts(trial), keys, weights, weighted,
    )
    assert sample_signature(resumed) == sample_signature(straight)


@pytest.mark.parametrize("trial", range(2))
@pytest.mark.parametrize("name,params,weighted", MERGEABLE_CONFIGS, ids=IDS)
def test_sharded_checkpoint_resume_is_bit_exact(name, params, weighted, trial):
    """The engine checkpoint carries all shards (RNG streams included)."""
    params = {k: v for k, v in params.items() if k != "rng"}

    def build():
        return ShardedSampler(
            {"name": name, "params": params}, n_shards=4, seed=21
        )

    keys, weights = _stream()
    straight = build()
    _feed(straight, keys, weights, weighted)
    resumed = _run_with_checkpoints(
        build, _random_cuts(100 + trial), keys, weights, weighted
    )
    assert sample_signature(resumed) == sample_signature(straight)
    # The checkpoint revives polymorphically as a ShardedSampler.
    assert isinstance(resumed, ShardedSampler)
    population = resumed.sample().population_size
    if population is not None:  # the distinct sketches do not count items
        assert population == N
