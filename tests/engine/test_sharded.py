"""Behavioral tests for the sharded ingestion engine.

The StreamSampler contract (construction, batch equivalence, chunking,
checkpointing, merge algebra) is exercised by the registry-wide suite in
``tests/api/test_contract.py``; this module covers what is specific to the
engine: hash routing, parallel dispatch equivalence, merge-tree reduction
semantics, capability rejection, and composition (engine-of-engine,
engine-to-engine merges).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import ShardedSampler, make_sampler, mergeable_samplers
from repro.core.hashing import batch_shard_indices, shard_of

from tests.helpers import sample_signature

N = 6000


def _stream(seed: int = 0, n: int = N, universe: int = 2000):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, universe, n)
    per_key = np.random.default_rng(seed + 1).lognormal(0.0, 0.6, universe)
    return keys, per_key[keys]


def _engine(name="bottom_k", params=None, **kw):
    params = {"k": 48} if params is None else params
    kw.setdefault("n_shards", 4)
    kw.setdefault("seed", 3)
    return ShardedSampler({"name": name, "params": params}, **kw)


class TestRouting:
    def test_scalar_and_batch_routing_agree(self):
        keys, weights = _stream()
        via_batch = _engine()
        via_batch.update_many(keys, weights)
        via_scalar = _engine()
        for key, w in zip(keys.tolist(), weights):
            via_scalar.update(key, float(w))
        assert sample_signature(via_batch) == sample_signature(via_scalar)

    def test_every_occurrence_of_a_key_hits_one_shard(self):
        keys, weights = _stream(universe=50)  # heavy duplication
        engine = _engine(params={"k": 1000})
        engine.update_many(keys, weights)
        seen: dict[object, int] = {}
        for index, shard in enumerate(engine.shards):
            for key in shard.sample().keys:
                assert seen.setdefault(key, index) == index
        assert shard_of(7, 4, salt=0) == int(batch_shard_indices([7], 4)[0])

    def test_partition_respects_salt(self):
        keys = np.arange(512)
        assert not np.array_equal(
            batch_shard_indices(keys, 4, salt=0),
            batch_shard_indices(keys, 4, salt=1),
        )

    def test_string_keys_route_consistently(self):
        engine = _engine(name="kmv", params={"k": 32, "salt": 2})
        labels = [f"user-{i % 40}" for i in range(500)]
        engine.update_many(labels)
        single = make_sampler("kmv", k=32, salt=2)
        single.update_many(labels)
        assert engine.estimate("distinct") == single.estimate("distinct")

    def test_partition_batch_is_the_dispatch_split(self):
        """The public partition helper: key-disjoint, order-preserving
        within a shard, covering every row exactly once, and agreeing
        with the hash routing ``update_many`` dispatches."""
        keys, weights = _stream(universe=60)
        engine = _engine()
        work = engine.partition_batch(keys, weights=weights)
        assert {s for s, _ in work} <= set(range(engine.n_shards))
        routed = batch_shard_indices(keys, engine.n_shards, engine.salt)
        covered = 0
        for shard_index, cols in work:
            positions = np.flatnonzero(routed == shard_index)
            assert np.array_equal(cols["keys"], keys[positions])  # in order
            assert np.array_equal(cols["weights"], weights[positions])
            covered += len(cols["keys"])
        assert covered == len(keys)
        assert engine.partition_batch([]) == []
        with pytest.raises(ValueError, match="same length"):
            engine.partition_batch(keys, weights=weights[:-1])


class TestParallelDispatch:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_parallel_modes_are_bit_identical_to_serial(self, mode):
        keys, weights = _stream()
        serial = _engine()
        serial.update_many(keys, weights)
        parallel = _engine(parallel=mode)
        try:
            # Two calls so the pool path also covers mid-stream state.
            parallel.update_many(keys[: N // 2], weights[: N // 2])
            parallel.update_many(keys[N // 2:], weights[N // 2:])
        finally:
            parallel.close()
        # Per-shard equality, not just post-reduction equality: dispatch
        # must leave every shard exactly as serial ingestion would (heap
        # order inside the serialized state may differ, samples may not).
        for shard_p, shard_s in zip(parallel.shards, serial.shards):
            assert sample_signature(shard_p) == sample_signature(shard_s)
            assert shard_p.items_seen == shard_s.items_seen

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            _engine(parallel="fibers")

    def test_close_is_idempotent_and_pool_recovers(self):
        keys, weights = _stream()
        engine = _engine(parallel="thread")
        engine.update_many(keys[:100], weights[:100])
        engine.close()
        engine.close()
        engine.update_many(keys[100:200], weights[100:200])
        engine.close()
        reference = _engine()
        reference.update_many(keys[:200], weights[:200])
        assert sample_signature(engine) == sample_signature(reference)


class TestReduction:
    def test_reduction_is_pure_and_cached(self):
        keys, weights = _stream()
        engine = _engine()
        engine.update_many(keys, weights)
        before = [shard.to_state() for shard in engine.shards]
        first = engine.reduced()
        assert engine.reduced() is first, "reduction should be cached"
        assert [shard.to_state() for shard in engine.shards] == before, (
            "merge tree must not mutate shard state"
        )
        engine.update(999_999, 1.0)
        assert engine.reduced() is not first, "updates must invalidate cache"

    def test_single_shard_reduces_to_a_copy(self):
        engine = _engine(n_shards=1)
        keys, weights = _stream(n=500)
        engine.update_many(keys, weights)
        reduced = engine.reduced()
        assert reduced is not engine.shards[0]
        assert sample_signature(reduced) == sample_signature(engine.shards[0])

    @pytest.mark.parametrize("n_shards", [2, 3, 4, 7])
    def test_population_size_survives_reduction(self, n_shards):
        keys, weights = _stream()
        engine = _engine(n_shards=n_shards)
        engine.update_many(keys, weights)
        assert engine.sample().population_size == N

    @pytest.mark.parametrize("name,params", [
        ("kmv", {"k": 64, "salt": 5}),
        ("theta", {"k": 64, "salt": 5}),
        ("weighted_distinct", {"k": 64, "salt": 5}),
        ("bottom_k", {"k": 64, "coordinated": True, "salt": 5}),
    ])
    def test_shard_then_merge_equals_single_instance_for_coordinated(
        self, name, params
    ):
        """For hash-coordinated sketches the merge tree reproduces the
        single-instance sketch *exactly* (same keys, priorities, and
        thresholds) — the strongest form of the paper's mergeability."""
        keys, weights = _stream(seed=4)
        single = make_sampler(name, **params)
        engine = _engine(name=name, params=params, n_shards=5)
        if name == "weighted_distinct":
            single.update_many(keys, weights)
            engine.update_many(keys, weights)
        else:
            single.update_many(keys)
            engine.update_many(keys)
        assert sample_signature(engine) == sample_signature(single)

    def test_adaptive_distinct_merge_retains_single_instance_keys(self):
        """The §3.5 per-entry-max merge keeps *more* than the plain union:
        every key the single-instance sketch retains must survive."""
        keys, _ = _stream(seed=4)
        single = make_sampler("adaptive_distinct", k=64, salt=5)
        engine = _engine(
            name="adaptive_distinct", params={"k": 64, "salt": 5}
        )
        single.update_many(keys)
        engine.update_many(keys)
        single_keys = {repr(key) for key in single.sample().keys}
        engine_keys = {repr(key) for key in engine.sample().keys}
        assert single_keys <= engine_keys


class TestCapabilities:
    def test_rejects_every_non_mergeable_registered_name(self):
        mergeable = set(mergeable_samplers())
        assert mergeable == {
            "adaptive_distinct", "bottom_k", "kmv", "poisson", "sharded",
            "theta", "weighted_distinct",
        }
        for name in repro.available_samplers():
            if name in mergeable:
                continue
            with pytest.raises(ValueError, match="not mergeable"):
                ShardedSampler(name, n_shards=2)

    def test_bad_spec_and_shard_count(self):
        with pytest.raises(TypeError, match="spec"):
            ShardedSampler(42, n_shards=2)
        with pytest.raises(ValueError, match="n_shards"):
            _engine(n_shards=0)
        with pytest.raises(ValueError, match="unknown sampler"):
            ShardedSampler("no_such_sampler", n_shards=2)


class TestComposition:
    def test_engines_merge_shard_wise(self):
        keys, weights = _stream()
        half = N // 2
        whole = _engine()
        whole.update_many(keys, weights)
        left, right = _engine(), _engine(seed=9)
        left.update_many(keys[:half], weights[:half])
        right.update_many(keys[half:], weights[half:])
        union = left | right
        assert isinstance(union, ShardedSampler)
        assert union.sample().population_size == N
        # Coordinated specs make the shard-wise merge exactly reproducible.
        coord = {"k": 48, "coordinated": True, "salt": 1}
        whole_c = _engine(params=coord)
        whole_c.update_many(keys, weights)
        left_c, right_c = _engine(params=coord), _engine(params=coord)
        left_c.update_many(keys[:half], weights[:half])
        right_c.update_many(keys[half:], weights[half:])
        assert sample_signature(left_c | right_c) == sample_signature(whole_c)

    def test_merge_rejects_incompatible_engines(self):
        base = _engine()
        with pytest.raises(TypeError):
            base.merge(make_sampler("bottom_k", k=48))
        with pytest.raises(ValueError, match="n_shards"):
            base.merge(_engine(n_shards=2))
        with pytest.raises(ValueError, match="spec"):
            base.merge(_engine(params={"k": 32}))
        with pytest.raises(ValueError, match="salt"):
            base.merge(_engine(salt=5))

    def test_engine_of_engines(self):
        """The engine registers as mergeable, so it composes with itself.

        Inner engines must use a different partition salt, otherwise the
        outer partition leaves them with degenerate key slices.
        """
        inner = {
            "name": "sharded",
            "params": {
                "spec": {"name": "kmv", "params": {"k": 32, "salt": 7}},
                "n_shards": 2, "salt": 1,
            },
        }
        outer = ShardedSampler(inner, n_shards=2, salt=0)
        keys, _ = _stream(n=2000)
        outer.update_many(keys)
        single = make_sampler("kmv", k=32, salt=7)
        single.update_many(keys)
        assert outer.estimate("distinct") == pytest.approx(
            single.estimate("distinct")
        )
        revived = repro.sampler_from_state(outer.to_state())
        assert sample_signature(revived) == sample_signature(outer)


class TestFacade:
    def test_estimate_kinds_follow_the_shard_class(self):
        engine = _engine(name="weighted_distinct", params={"k": 32, "salt": 1})
        assert engine.estimate_kinds() == ("distinct", "subset_sum")
        assert engine.default_estimate_kind == "distinct"
        keys, weights = _stream(n=1000)
        engine.update_many(keys, weights)
        assert engine.estimate() > 0
        assert engine.estimate(
            "subset_sum", predicate=lambda key: key % 2 == 0
        ) >= 0
        with pytest.raises(ValueError, match="no estimator kind"):
            engine.estimate("window_count")

    def test_len_and_update_verdict(self):
        engine = _engine(params={"k": 8})
        assert len(engine) == 0
        assert engine.update(1, 1.0) is True
        assert len(engine) == 1

    def test_per_shard_rng_streams_differ_but_are_reproducible(self):
        first = _engine()
        rngs = [shard.rng.random() for shard in first.shards]
        assert len(set(rngs)) == len(rngs), "shard RNG streams must differ"
        again = _engine()
        assert [shard.rng.random() for shard in again.shards] == rngs


class TestInputValidation:
    def test_column_length_mismatch_is_a_clear_error(self):
        engine = _engine()
        with pytest.raises(ValueError, match="same length as keys"):
            engine.update_many(list(range(10)), weights=[1.0] * 5)
        with pytest.raises(ValueError, match="same length as keys"):
            engine.update_many(list(range(10)), weights=[1.0] * 20)

    def test_bool_keys_route_identically_scalar_and_batch(self):
        assert batch_shard_indices(np.array([True, False]), 4).tolist() == [
            shard_of(True, 4), shard_of(False, 4)
        ]

    def test_class_level_introspection_stays_sane(self):
        """Instance attributes mirror the shard class; the ShardedSampler
        class itself must still expose the protocol defaults (plain
        values, not property objects or unbound methods)."""
        assert ShardedSampler.default_estimate_kind == "total"
        assert ShardedSampler.legacy_estimate_param is None
        assert ShardedSampler.estimate_kinds() == ()
        engine = _engine(name="kmv", params={"k": 16, "salt": 0})
        assert engine.default_estimate_kind == "distinct"
        assert engine.estimate_kinds() == ("distinct",)

    def test_nested_engines_get_independent_leaf_rng_streams(self):
        """Regression: inner engines used to fall back to seed=0 in every
        outer shard, duplicating leaf RNG streams across shards."""
        inner = {
            "name": "sharded",
            "params": {
                "spec": {"name": "bottom_k", "params": {"k": 8}},
                "n_shards": 2, "salt": 1,
            },
        }
        outer = ShardedSampler(inner, n_shards=2, seed=99)
        draws = [
            leaf.rng.random()
            for inner_engine in outer.shards
            for leaf in inner_engine.shards
        ]
        assert len(set(draws)) == len(draws)
        again = ShardedSampler(inner, n_shards=2, seed=99)
        assert [
            leaf.rng.random()
            for inner_engine in again.shards
            for leaf in inner_engine.shards
        ] == draws
