"""Tests for early-stopping AQP (repro.samplers.aqp, §3.10)."""

import numpy as np
import pytest

from repro.samplers.aqp import MultiObjectiveLayout, PriorityLayoutTable


@pytest.fixture
def table(rng):
    values = rng.lognormal(0, 0.6, 3000)
    return PriorityLayoutTable(values, salt=1), values


class TestLayout:
    def test_rows_sorted_by_priority(self, table):
        t, _ = table
        assert np.all(np.diff(t.priorities) >= 0)

    def test_row_ids_permutation(self, table):
        t, values = table
        assert sorted(t.row_ids.tolist()) == list(range(values.size))
        np.testing.assert_allclose(np.sort(t.values), np.sort(values))

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            PriorityLayoutTable(np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            PriorityLayoutTable(np.array([1.0, 2.0]), weights=np.array([1.0, -1.0]))


class TestQueries:
    def test_meets_stderr_target(self, table):
        t, values = table
        target = 0.05 * values.sum()
        result = t.query_total(target)
        assert result.stderr <= target + 1e-9
        assert result.rows_read < len(t)

    def test_estimate_accuracy(self, table):
        t, values = table
        target = 0.03 * values.sum()
        result = t.query_total(target)
        assert result.estimate == pytest.approx(values.sum(), rel=0.15)

    def test_tighter_target_reads_more(self, table):
        t, values = table
        loose = t.query_total(0.10 * values.sum())
        tight = t.query_total(0.01 * values.sum())
        assert tight.rows_read > loose.rows_read
        assert 0 < loose.fraction_read < 1

    def test_subset_query(self, table):
        t, values = table
        mask = np.arange(values.size) % 3 == 0
        truth = values[mask].sum()
        result = t.query_total(0.05 * truth, mask=mask)
        assert result.estimate == pytest.approx(truth, rel=0.25)

    def test_max_rows_respected(self, table):
        t, values = table
        result = t.query_total(1e-12 * values.sum(), max_rows=100)
        assert result.rows_read == 100

    def test_impossible_target_reads_everything(self, table):
        t, values = table
        result = t.query_total(1e-9)
        assert result.rows_read == len(t)
        assert result.estimate == pytest.approx(values.sum())

    def test_target_validation(self, table):
        t, _ = table
        with pytest.raises(ValueError):
            t.query_total(0.0)


class TestMultiObjectiveLayout:
    @pytest.fixture
    def layout(self, rng):
        n = 1200
        metrics = {
            "revenue": rng.lognormal(0, 0.5, n),
            "quantity": rng.lognormal(0, 0.5, n),
        }
        return MultiObjectiveLayout(metrics, k=50, salt=3), metrics

    def test_blocks_partition_rows(self, layout):
        lo, metrics = layout
        n = metrics["revenue"].size
        all_rows = np.concatenate([rows for _, rows, _ in lo.blocks])
        assert sorted(all_rows.tolist()) == list(range(n))

    def test_blocks_alternate_metrics(self, layout):
        lo, _ = layout
        names = [name for name, _, _ in lo.blocks[:4]]
        assert names == ["revenue", "quantity", "revenue", "quantity"]

    def test_sample_for_is_valid_threshold_sample(self, layout):
        """Every row below the returned threshold must be in the sample."""
        lo, metrics = layout
        rows, threshold = lo.sample_for("revenue", n_blocks=2)
        pr = lo.priorities["revenue"]
        expected = np.flatnonzero(pr < threshold)
        assert set(rows.tolist()) == set(expected.tolist())
        assert rows.size >= 2 * lo.k

    def test_sample_supports_ht_estimation(self, layout):
        lo, metrics = layout
        rows, threshold = lo.sample_for("revenue", n_blocks=3)
        w = metrics["revenue"]
        probs = np.minimum(1.0, w[rows] * threshold)
        est = float(np.sum(w[rows] / probs))
        assert est == pytest.approx(w.sum(), rel=0.3)

    def test_reading_all_blocks_returns_everything(self, layout):
        lo, metrics = layout
        rows, threshold = lo.sample_for("revenue", n_blocks=10**6)
        assert rows.size == metrics["revenue"].size
        assert np.isinf(threshold)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiObjectiveLayout({}, k=5)
        with pytest.raises(ValueError):
            MultiObjectiveLayout({"m": np.ones(3)}, k=0)
