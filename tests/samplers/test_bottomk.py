"""Tests for the streaming bottom-k sampler (repro.samplers.bottomk)."""

import numpy as np
import pytest

from repro.core.priorities import (
    ExponentialPriority,
    InverseWeightPriority,
    Uniform01Priority,
)
from repro.core.thresholds import BottomK
from repro.samplers.bottomk import BottomKSampler

from tests.helpers import assert_within_se


class TestStreamingMechanics:
    def test_sample_size_capped_at_k(self, rng):
        s = BottomKSampler(5, rng=rng)
        for i in range(100):
            s.update(i)
        assert len(s) == 5
        assert len(s.sample()) == 5

    def test_underfull_keeps_everything(self, rng):
        s = BottomKSampler(10, rng=rng)
        for i in range(4):
            s.update(i)
        assert len(s.sample()) == 4
        assert s.threshold == np.inf

    def test_threshold_matches_offline_rule(self):
        # Feed known priorities through the coordinated path and compare
        # with the offline (k+1)-st order statistic.
        k, n = 4, 40
        s = BottomKSampler(k, family=Uniform01Priority(), coordinated=True, salt=5)
        from repro.core.hashing import hash_to_unit

        priorities = np.array([hash_to_unit(i, 5) for i in range(n)])
        for i in range(n):
            s.update(i)
        offline = BottomK(k).thresholds(priorities)[0]
        assert s.threshold == pytest.approx(offline)
        expected_keys = set(np.flatnonzero(priorities < offline).tolist())
        assert set(s.sample().keys) == expected_keys

    def test_items_seen_tracked(self, rng):
        s = BottomKSampler(3, rng=rng)
        s.update_many(range(17))
        assert s.items_seen == 17
        assert s.sample().population_size == 17

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            BottomKSampler(0)


class TestEstimation:
    def test_ht_total_unbiased_weighted(self):
        weights = np.random.default_rng(0).lognormal(0, 0.7, 60)
        truth = weights.sum()
        estimates = []
        for trial in range(600):
            s = BottomKSampler(12, rng=np.random.default_rng(trial + 1))
            for i, w in enumerate(weights):
                s.update(i, weight=float(w))
            estimates.append(s.estimate_total())
        assert_within_se(estimates, truth)

    def test_subset_sum_unbiased(self):
        weights = np.random.default_rng(1).lognormal(0, 0.5, 50)
        subset = set(range(0, 50, 3))
        truth = sum(w for i, w in enumerate(weights) if i in subset)
        estimates = []
        for trial in range(600):
            s = BottomKSampler(10, rng=np.random.default_rng(trial + 1))
            for i, w in enumerate(weights):
                s.update(i, weight=float(w))
            estimates.append(s.estimate_total(lambda key: key in subset))
        assert_within_se(estimates, truth)

    def test_distinct_estimate_unbiased_uniform(self):
        # k / R_(k+1) is the classic unbiased KMV-style estimator.
        n, k = 300, 20
        estimates = []
        for trial in range(400):
            s = BottomKSampler(k, family=Uniform01Priority(),
                               rng=np.random.default_rng(trial))
            for i in range(n):
                s.update(i)
            estimates.append(s.estimate_distinct())
        assert_within_se(estimates, float(n))

    def test_variance_estimate_tracks_mse(self):
        weights = np.random.default_rng(2).lognormal(0, 0.6, 80)
        truth = weights.sum()
        sq_errors, var_estimates = [], []
        for trial in range(500):
            s = BottomKSampler(15, rng=np.random.default_rng(trial))
            for i, w in enumerate(weights):
                s.update(i, weight=float(w))
            sample = s.sample()
            sq_errors.append((sample.ht_total() - truth) ** 2)
            var_estimates.append(sample.ht_variance_estimate())
        mse = np.mean(sq_errors)
        mean_vhat = np.mean(var_estimates)
        assert mean_vhat == pytest.approx(mse, rel=0.25)

    def test_pps_heavy_item_always_sampled(self, rng):
        # An item with weight * threshold >= 1 must always be retained.
        s = BottomKSampler(5, rng=rng)
        s.update("whale", weight=10_000.0)
        for i in range(200):
            s.update(i, weight=1.0)
        assert "whale" in s.sample().keys

    def test_exponential_family_supported(self, rng):
        s = BottomKSampler(8, family=ExponentialPriority(), rng=rng)
        weights = np.random.default_rng(4).lognormal(0, 0.5, 100)
        for i, w in enumerate(weights):
            s.update(i, weight=float(w))
        sample = s.sample()
        assert len(sample) == 8
        # PPSWOR estimates should land near the truth for a single draw.
        assert sample.ht_total() == pytest.approx(weights.sum(), rel=0.8)


class TestMerge:
    def test_merge_equals_concatenated_stream(self):
        # Coordinated priorities make the merged sketch reproducible.
        k, salt = 6, 11
        a = BottomKSampler(k, coordinated=True, salt=salt)
        b = BottomKSampler(k, coordinated=True, salt=salt)
        c = BottomKSampler(k, coordinated=True, salt=salt)
        for i in range(50):
            a.update(("a", i))
            c.update(("a", i))
        for i in range(70):
            b.update(("b", i))
            c.update(("b", i))
        merged = a.merge(b)
        assert merged.threshold == pytest.approx(c.threshold)
        assert set(merged.sample().keys) == set(c.sample().keys)
        assert merged.items_seen == c.items_seen

    def test_merge_validates_k(self):
        with pytest.raises(ValueError):
            BottomKSampler(3).merge(BottomKSampler(4))

    def test_merge_validates_family(self):
        a = BottomKSampler(3, family=InverseWeightPriority())
        b = BottomKSampler(3, family=ExponentialPriority())
        with pytest.raises(ValueError):
            a.merge(b)
