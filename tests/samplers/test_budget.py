"""Tests for the memory-budget sampler (repro.samplers.budget, Section 3.1)."""

import numpy as np
import pytest

from repro.core.priorities import Uniform01Priority
from repro.core.thresholds import BudgetPrefix
from repro.samplers.budget import BudgetSampler
from repro.workloads.sizes import SURVEY_MAX_SIZE, survey_sizes

from tests.helpers import assert_within_se


class TestBudgetInvariant:
    @pytest.mark.parametrize("seed", range(5))
    def test_never_exceeds_budget(self, seed):
        rng = np.random.default_rng(seed)
        s = BudgetSampler(100.0, rng=rng)
        for i in range(300):
            s.update(i, size=float(rng.integers(1, 30)))
            assert s.used <= 100.0

    def test_oversized_item_never_retained(self, rng):
        s = BudgetSampler(10.0, rng=rng)
        s.update("huge", size=50.0)
        for i in range(50):
            s.update(i, size=1.0)
        assert "huge" not in s.sample().keys
        assert s.used <= 10.0

    def test_negative_size_rejected(self, rng):
        s = BudgetSampler(10.0, rng=rng)
        with pytest.raises(ValueError):
            s.update("x", size=-1.0)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            BudgetSampler(0.0)


class TestOfflineEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_streaming_matches_offline_rule(self, seed):
        """The streaming eviction must land exactly on the prefix rule."""
        rng = np.random.default_rng(seed)
        n = 60
        sizes = rng.integers(1, 12, n).astype(float)
        s = BudgetSampler(40.0, family=Uniform01Priority(), coordinated=True, salt=seed)
        from repro.core.hashing import hash_to_unit

        priorities = np.array([hash_to_unit(i, seed) for i in range(n)])
        for i in range(n):
            s.update(i, size=float(sizes[i]))
        offline = BudgetPrefix(sizes, budget=40.0)
        expected_t = offline.thresholds(priorities)[0]
        expected_keys = set(np.flatnonzero(priorities < expected_t).tolist())
        assert s.threshold == pytest.approx(expected_t)
        assert set(s.sample().keys) == expected_keys

    def test_threshold_monotone_decreasing(self, rng):
        s = BudgetSampler(50.0, rng=rng)
        last = float("inf")
        for i in range(400):
            s.update(i, size=float(rng.integers(1, 10)))
            assert s.threshold <= last
            last = s.threshold


class TestEstimation:
    def test_count_estimate_unbiased(self):
        n = 150
        sizes = np.random.default_rng(0).integers(1, 8, n).astype(float)
        estimates = []
        for trial in range(500):
            s = BudgetSampler(80.0, rng=np.random.default_rng(trial))
            for i in range(n):
                s.update(i, size=float(sizes[i]))
            estimates.append(s.sample().distinct_estimate())
        assert_within_se(estimates, float(n))

    def test_subset_sum_unbiased(self):
        n = 100
        rng0 = np.random.default_rng(3)
        sizes = rng0.integers(1, 6, n).astype(float)
        values = rng0.lognormal(0, 0.4, n)
        subset = set(range(0, n, 4))
        truth = sum(values[i] for i in subset)
        estimates = []
        for trial in range(500):
            s = BudgetSampler(70.0, rng=np.random.default_rng(trial))
            for i in range(n):
                s.update(i, size=float(sizes[i]), weight=1.0, value=float(values[i]))
            estimates.append(s.estimate_total(lambda key: key in subset))
        assert_within_se(estimates, truth)


class TestSurveyScenario:
    def test_conservative_k_formula(self):
        assert BudgetSampler.conservative_bottomk_size(10_000, 100) == 100
        with pytest.raises(ValueError):
            BudgetSampler.conservative_bottomk_size(100.0, 0.0)

    def test_utilization_ratio_near_four(self):
        """The paper's §3.1 headline on survey-like sizes."""
        rng = np.random.default_rng(1)
        sizes = survey_sizes(3000, rng)
        budget = 40 * sizes.mean()
        k_cons = BudgetSampler.conservative_bottomk_size(budget, SURVEY_MAX_SIZE)
        adaptive = []
        for trial in range(10):
            s = BudgetSampler(budget, rng=np.random.default_rng(trial))
            for i, size in enumerate(sizes):
                s.update(i, size=float(size))
            adaptive.append(len(s))
        ratio = np.mean(adaptive) / k_cons
        assert 2.5 < ratio < 6.0  # paper: ~4.04
