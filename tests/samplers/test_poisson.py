"""Tests for fixed-threshold Poisson sampling (repro.samplers.poisson)."""

import numpy as np
import pytest

from repro.core.priorities import Uniform01Priority
from repro.samplers.poisson import PoissonSampler

from tests.helpers import assert_within_se


class TestInclusion:
    def test_inclusion_rate_matches_probability(self):
        counts = []
        for trial in range(50):
            s = PoissonSampler.with_inclusion_probability(0.3, rng=trial)
            for i in range(200):
                s.update(i)
            counts.append(len(s))
        assert_within_se(counts, 0.3 * 200)

    def test_weighted_inclusion(self):
        # weight w against threshold t: P = min(1, w t).
        hits = 0
        trials = 4000
        s = PoissonSampler(0.1, rng=0)
        for i in range(trials):
            hits += int(s.update(i, weight=4.0))
        assert hits / trials == pytest.approx(0.4, abs=0.03)

    def test_heavy_item_certain(self, rng):
        s = PoissonSampler(0.5, rng=rng)
        assert s.update("whale", weight=10.0)

    def test_callable_threshold(self, rng):
        s = PoissonSampler(
            lambda key, w: 1.0 if key == "vip" else 0.0,
            family=Uniform01Priority(),
            rng=rng,
        )
        assert s.update("vip")
        assert not s.update("pleb")
        assert s.threshold_for("vip", 1.0) == 1.0

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            PoissonSampler.with_inclusion_probability(0.0)

    def test_coordinated_reproducible(self):
        a = PoissonSampler.with_inclusion_probability(0.5, coordinated=True, salt=3)
        b = PoissonSampler.with_inclusion_probability(0.5, coordinated=True, salt=3)
        for i in range(100):
            a.update(i)
            b.update(i)
        assert a.sample().keys == b.sample().keys


class TestEstimation:
    def test_ht_total_unbiased(self):
        weights = np.random.default_rng(0).lognormal(0, 0.5, 100)
        truth = weights.sum()
        estimates = []
        for trial in range(400):
            s = PoissonSampler(0.15, rng=np.random.default_rng(trial))
            for i, w in enumerate(weights):
                s.update(i, weight=float(w))
            estimates.append(s.sample().ht_total())
        assert_within_se(estimates, truth)

    def test_extend_bulk(self, rng):
        s = PoissonSampler.with_inclusion_probability(1.0, rng=rng)
        s.update_many(list(range(10)), values=np.arange(10, dtype=float))
        assert s.items_seen == 10
        assert s.sample().ht_total() == pytest.approx(45.0)
