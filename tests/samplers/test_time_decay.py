"""Tests for time-decayed sampling (repro.samplers.time_decay, §2.9)."""

import math

import numpy as np
import pytest

from repro.samplers.time_decay import ExponentialDecaySampler

from tests.helpers import assert_within_se


class TestMechanics:
    def test_sample_size_bounded(self, rng):
        s = ExponentialDecaySampler(k=10, decay_rate=0.5, rng=rng)
        for i in range(500):
            s.update(i, time=i * 0.01)
        assert len(s) == 10

    def test_times_must_be_nondecreasing(self, rng):
        s = ExponentialDecaySampler(k=3, decay_rate=0.5, rng=rng)
        s.update("a", time=1.0)
        with pytest.raises(ValueError):
            s.update("b", time=0.5)

    def test_weight_validation(self, rng):
        s = ExponentialDecaySampler(k=3, decay_rate=0.5, rng=rng)
        with pytest.raises(ValueError):
            s.update("a", weight=0.0, time=0.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ExponentialDecaySampler(k=0, decay_rate=0.5)
        with pytest.raises(ValueError):
            ExponentialDecaySampler(k=5, decay_rate=-1.0)

    def test_recency_bias(self):
        """Later arrivals must be retained more often under decay."""
        old_hits = new_hits = 0
        for seed in range(300):
            s = ExponentialDecaySampler(k=20, decay_rate=1.0,
                                        rng=np.random.default_rng(seed))
            for i in range(200):
                s.update(i, time=i * 0.05)
            kept = set(s.keys())
            old_hits += sum(1 for i in range(50) if i in kept)
            new_hits += sum(1 for i in range(150, 200) if i in kept)
        assert new_hits > 2 * old_hits

    def test_zero_decay_is_plain_weighted_sample(self):
        # With decay 0 arrival times are irrelevant.
        inclusion = np.zeros(100)
        for seed in range(400):
            s = ExponentialDecaySampler(k=10, decay_rate=0.0,
                                        rng=np.random.default_rng(seed))
            for i in range(100):
                s.update(i, time=float(i))
            for key in s.keys():
                inclusion[key] += 1
        # Uniform weights + zero decay: every position equally likely.
        rates = inclusion / 400
        assert rates.std() < 0.08
        assert rates.mean() == pytest.approx(0.1, abs=0.02)


class TestEstimation:
    def test_decayed_total_unbiased(self):
        lam = 0.8
        times = np.linspace(0, 5, 150)
        weights = np.random.default_rng(0).lognormal(0, 0.4, 150)
        now = 5.0
        truth = float(np.sum(weights * np.exp(-lam * (now - times))))
        estimates = []
        for seed in range(500):
            s = ExponentialDecaySampler(k=25, decay_rate=lam,
                                        rng=np.random.default_rng(seed))
            for i, t in enumerate(times):
                s.update(i, weight=float(weights[i]), time=float(t))
            estimates.append(s.estimate_decayed_total(now))
        assert_within_se(estimates, truth)

    def test_subset_decayed_total(self, rng):
        lam = 0.5
        s = ExponentialDecaySampler(k=50, decay_rate=lam, rng=rng)
        times = np.linspace(0, 3, 120)
        for i, t in enumerate(times):
            s.update(i, time=float(t))
        est = s.estimate_decayed_total(3.0, predicate=lambda key: key >= 60)
        truth = float(np.sum(np.exp(-lam * (3.0 - times[60:]))))
        assert est == pytest.approx(truth, rel=0.6)

    def test_inclusion_probability_formula(self, rng):
        s = ExponentialDecaySampler(k=5, decay_rate=0.3, rng=rng)
        for i in range(50):
            s.update(i, weight=2.0, time=float(i) * 0.1)
        log_t = s.log_threshold
        for entry in s._retained():
            expected = math.exp(
                min(0.0, log_t + math.log(entry.weight) + 0.3 * entry.time)
            )
            assert s.inclusion_probability(entry) == pytest.approx(expected)

    def test_long_stream_no_overflow(self, rng):
        # Log-domain priorities must survive large time values.
        s = ExponentialDecaySampler(k=5, decay_rate=1.0, rng=rng)
        for i in range(1000):
            s.update(i, time=float(i * 10))
        est = s.estimate_decayed_total(10_000.0)
        assert np.isfinite(est)
