"""Tests for the adaptive top-k sampler (repro.samplers.topk, §3.3)."""

import numpy as np
import pytest

from repro.samplers.topk import AdaptiveTopKSampler
from repro.workloads.pitman_yor import pitman_yor_stream, true_top_k
from repro.workloads.zipf import zipf_stream


class TestMechanics:
    def test_tracked_items_count_exactly_after_entry(self, rng):
        s = AdaptiveTopKSampler(3, rng=rng)
        for _ in range(10):
            s.update("hot")
        assert s.estimate_count("hot") == pytest.approx(1.0 / 1.0 + 9)

    def test_untracked_key_estimates_zero(self, rng):
        s = AdaptiveTopKSampler(3, rng=rng)
        assert s.estimate_count("never-seen") == 0.0

    def test_threshold_monotone_decreasing(self, rng):
        s = AdaptiveTopKSampler(5, rng=rng)
        stream = zipf_stream(20_000, 500, 1.3, rng=3)
        last = 1.0
        for i, key in enumerate(stream.tolist()):
            s.update(key)
            assert s.threshold <= last + 1e-15
            last = s.threshold
        assert s.threshold < 1.0  # must have adapted on this stream

    def test_table_smaller_than_distinct_keys(self, rng):
        s = AdaptiveTopKSampler(10, rng=rng)
        stream = zipf_stream(30_000, 2000, 1.2, rng=5)
        s.update_many(stream.tolist())
        assert len(s) < len(np.unique(stream))
        assert s.max_table_size < len(np.unique(stream))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            AdaptiveTopKSampler(0)

    def test_frequent_keys_at_least_k(self, rng):
        s = AdaptiveTopKSampler(5, rng=rng)
        s.update_many(zipf_stream(20_000, 300, 1.5, rng=7).tolist())
        assert len(s.frequent_keys()) >= 5


class TestAccuracy:
    def test_topk_identified_on_zipf(self, rng):
        stream = zipf_stream(50_000, 1000, 1.4, rng=11)
        s = AdaptiveTopKSampler(10, rng=rng)
        s.update_many(stream.tolist())
        returned = {key for key, _ in s.top(10)}
        truth = set(true_top_k(stream, 10))
        assert len(returned & truth) >= 8

    def test_heavy_hitter_counts_accurate(self, rng):
        stream = zipf_stream(40_000, 500, 1.5, rng=13)
        s = AdaptiveTopKSampler(10, rng=rng)
        s.update_many(stream.tolist())
        ids, counts = np.unique(stream, return_counts=True)
        top = ids[np.argsort(counts)[::-1][:5]]
        for key in top:
            truth = counts[ids == key][0]
            est = s.estimate_count(int(key))
            assert est == pytest.approx(truth, rel=0.1)

    def test_total_count_estimate_roughly_unbiased(self):
        # Sum of estimates over tracked + discarded mass should track the
        # stream length within a modest tolerance (the re-anchoring rule
        # discards some exactly-counted tail occurrences).
        estimates = []
        n = 20_000
        for seed in range(10):
            stream = zipf_stream(n, 400, 1.3, rng=seed)
            s = AdaptiveTopKSampler(10, rng=np.random.default_rng(seed + 1))
            s.update_many(stream.tolist())
            estimates.append(s.estimate_subset_sum(lambda key: True))
        mean = np.mean(estimates)
        assert mean == pytest.approx(n, rel=0.35)

    def test_subset_sum_heavy_subset(self, rng):
        stream = zipf_stream(40_000, 500, 1.5, rng=17)
        s = AdaptiveTopKSampler(10, rng=rng)
        s.update_many(stream.tolist())
        truth = int(np.sum(stream < 5))
        est = s.estimate_subset_sum(lambda key: key < 5)
        assert est == pytest.approx(truth, rel=0.15)


class TestAdaptivity:
    def test_size_grows_with_tail_weight(self):
        """Figure 3's right panel: heavier tails need larger samples."""
        sizes = {}
        for beta in (0.25, 0.9):
            acc = []
            for seed in range(3):
                stream = pitman_yor_stream(15_000, beta, np.random.default_rng(seed))
                s = AdaptiveTopKSampler(10, rng=np.random.default_rng(seed + 50))
                s.update_many(stream.tolist())
                acc.append(len(s))
            sizes[beta] = np.mean(acc)
        assert sizes[0.9] > 1.5 * sizes[0.25]

    def test_well_separated_head_kept(self):
        stream = pitman_yor_stream(15_000, 0.25, np.random.default_rng(2))
        truth = true_top_k(stream, 10)
        s = AdaptiveTopKSampler(10, rng=np.random.default_rng(3))
        s.update_many(stream.tolist())
        returned = {key for key, _ in s.top(10)}
        assert len(returned & set(truth)) >= 7


class TestHTReanchoring:
    def test_reanchored_tail_counts_stay_unbiased(self):
        """Regression for the re-anchoring rule: zeroing the exact counts
        of surviving infrequent entries (the old behavior) biased subset
        sums ~20% low on churn-heavy near-uniform streams; the HT rescale
        (v <- v * T_i / T) must keep the total within a few percent."""
        n, universe = 1200, 400
        keys = np.random.default_rng(23).integers(0, universe, n)
        estimates = []
        for seed in range(60):
            s = AdaptiveTopKSampler(48, rng=np.random.default_rng(seed))
            s.update_many(keys.tolist())
            estimates.append(s.estimate_subset_sum(lambda key: True))
        assert np.mean(estimates) == pytest.approx(n, rel=0.05)

    def test_pre_carry_checkpoints_still_load(self):
        """4-tuple table rows (checkpoints from before the carry field)
        must revive with carry defaulting to zero."""
        s = AdaptiveTopKSampler(8, rng=np.random.default_rng(0))
        s.update_many(list(range(200)) * 2)
        state = s.to_state()
        state["state"]["table"] = [
            row[:4] for row in state["state"]["table"]
        ]
        revived = AdaptiveTopKSampler.from_state(state)
        assert all(e.carry == 0.0 for e in revived.table.values())
        assert set(revived.table) == set(s.table)
