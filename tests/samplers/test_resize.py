"""Online resize (``StreamSampler.resize``) battery.

The adaptive control plane retunes the sample budget ``k`` mid-stream,
so every resizable sampler must honour two contracts:

- **shrink-with-fold** — shrinking to ``k'`` leaves the sketch in the
  state a fresh ``k'`` run of the same stream would reach (bottom-k /
  KMV / theta keep the smallest priorities; the adaptive sketch folds
  through its ``trim``, which is threshold-equivalent rather than
  state-equivalent — its unbiasedness is covered by the Monte-Carlo
  suite in ``tests/statistical``);
- **grow-with-cap** — growing freezes the pre-resize threshold as an
  admission cap (1-substitutability, paper §3.5), so the estimator
  stays unbiased while the enlarged sketch refills.

Plus the mechanical edges: no-op resizes, invalid budgets, cap
serialization, version bumps, sharded delegation, and chunking
invariance *across* a mid-stream resize.
"""

import numpy as np
import pytest

import repro
from repro import ShardedSampler, make_sampler

# (name, params, weighted, fresh_equal) — every sampler advertising
# ``resizable``; ``fresh_equal`` marks the ones whose shrink is bit-level
# fold-equivalent to a fresh smaller run (heap order aside).
RESIZABLE_CONFIGS = [
    ("bottom_k", {"k": 16, "rng": 7}, True, True),
    ("bottom_k", {"k": 16, "coordinated": True, "salt": 3}, True, True),
    ("weighted_distinct", {"k": 16, "salt": 3}, True, True),
    ("adaptive_distinct", {"k": 16, "salt": 3}, False, False),
    ("kmv", {"k": 16, "salt": 3}, False, True),
    ("theta", {"k": 16, "salt": 3}, False, True),
]

CONFIG_IDS = [
    f"{name}-{'coord' if params.get('coordinated') else 'plain'}"
    for name, params, _, _ in RESIZABLE_CONFIGS
]

#: Hash-deterministic configs (no per-trial RNG stream), used by the
#: chunking-invariance-across-resize check where feeding order inside a
#: chunk must not matter.
HASHED_CONFIGS = [cfg for cfg in RESIZABLE_CONFIGS if "salt" in cfg[1]]
HASHED_IDS = [
    f"{name}-{'coord' if params.get('coordinated') else 'plain'}"
    for name, params, _, _ in HASHED_CONFIGS
]


def _stream(n=600, universe=200):
    rng = np.random.default_rng(13)
    keys = rng.integers(0, universe, n)
    per_key = np.random.default_rng(14).lognormal(0.0, 0.6, universe)
    return keys, per_key[keys]


KEYS, WEIGHTS = _stream()
MID = len(KEYS) // 2


def _feed(sampler, weighted, keys, weights):
    if weighted:
        sampler.update_many(keys, weights)
    else:
        sampler.update_many(keys)


def _canonical(state: dict) -> dict:
    """State with order-insensitive containers sorted (heap layouts are
    an implementation detail a fold need not reproduce)."""
    out = dict(state)
    inner = dict(out.get("state", {}))
    for key, value in inner.items():
        if isinstance(value, list):
            inner[key] = sorted(value, key=repr)
    out["state"] = inner
    return out


def _threshold(sampler) -> float:
    return float(getattr(sampler, "threshold", getattr(sampler, "theta", 0)))


class TestShrink:
    @pytest.mark.parametrize(
        "name,params,weighted,fresh_equal", RESIZABLE_CONFIGS, ids=CONFIG_IDS
    )
    def test_midstream_shrink_matches_fresh_run(
        self, name, params, weighted, fresh_equal
    ):
        s = make_sampler(name, **params)
        _feed(s, weighted, KEYS[:MID], WEIGHTS[:MID])
        assert s.resize(8) is s
        assert s.k == 8
        _feed(s, weighted, KEYS[MID:], WEIGHTS[MID:])

        fresh = make_sampler(name, **{**params, "k": 8})
        _feed(fresh, weighted, KEYS, WEIGHTS)
        if fresh_equal:
            assert _canonical(s.to_state()) == _canonical(fresh.to_state())
            assert float(s.estimate()) == pytest.approx(
                float(fresh.estimate())
            )
        else:
            # The adaptive sketch folds through trim: not state-equal to
            # a fresh run, but the budget must hold and the estimate
            # stays in the same statistical regime (unbiasedness is the
            # Monte-Carlo suite's job).
            assert len(s) <= 8 + 1
            assert float(s.estimate()) > 0

    @pytest.mark.parametrize(
        "name,params,weighted,fresh_equal", RESIZABLE_CONFIGS, ids=CONFIG_IDS
    )
    def test_shrink_respects_budget(self, name, params, weighted, fresh_equal):
        s = make_sampler(name, **params)
        _feed(s, weighted, KEYS, WEIGHTS)
        s.resize(4)
        # bottom-k style sketches may carry the (k+1)-th witness entry
        assert len(s) <= 4 + 1
        assert len(s.sample()) <= 4 + 1


class TestGrow:
    @pytest.mark.parametrize(
        "name,params,weighted,fresh_equal", RESIZABLE_CONFIGS, ids=CONFIG_IDS
    )
    def test_grow_caps_threshold(self, name, params, weighted, fresh_equal):
        s = make_sampler(name, **params)
        _feed(s, weighted, KEYS, WEIGHTS)
        before = _threshold(s)
        est_before = float(s.estimate())
        s.resize(64)
        assert s.k == 64
        # 1-substitutability: the saturated threshold is frozen as the
        # admission cap, so growing never loosens the threshold ...
        assert _threshold(s) <= before + 1e-12
        # ... and the estimate is untouched at the resize boundary.
        assert float(s.estimate()) == pytest.approx(est_before)
        # The enlarged sketch keeps admitting below the cap.
        extra_keys = np.arange(1000, 1400)
        _feed(s, weighted, extra_keys, np.ones(extra_keys.size))
        assert _threshold(s) <= before + 1e-12
        assert float(s.estimate()) > est_before

    @pytest.mark.parametrize(
        "name,params,weighted,fresh_equal", RESIZABLE_CONFIGS, ids=CONFIG_IDS
    )
    def test_grow_while_underfull_is_plain(
        self, name, params, weighted, fresh_equal
    ):
        s = make_sampler(name, **params)
        _feed(s, weighted, KEYS[:5], WEIGHTS[:5])
        s.resize(64)
        fresh = make_sampler(name, **{**params, "k": 64})
        _feed(fresh, weighted, KEYS[:5], WEIGHTS[:5])
        assert _canonical(s.to_state()) == _canonical(fresh.to_state())


class TestMechanics:
    @pytest.mark.parametrize(
        "name,params,weighted,fresh_equal", RESIZABLE_CONFIGS, ids=CONFIG_IDS
    )
    def test_noop_resize_is_identity(self, name, params, weighted, fresh_equal):
        s = make_sampler(name, **params)
        _feed(s, weighted, KEYS, WEIGHTS)
        state = s.to_state()
        assert s.resize(s.k) is s
        assert s.to_state() == state

    @pytest.mark.parametrize(
        "name,params,weighted,fresh_equal", RESIZABLE_CONFIGS, ids=CONFIG_IDS
    )
    def test_invalid_k_raises(self, name, params, weighted, fresh_equal):
        s = make_sampler(name, **params)
        with pytest.raises(ValueError):
            s.resize(0)
        with pytest.raises(ValueError):
            s.resize(-3)

    @pytest.mark.parametrize(
        "name,params,weighted,fresh_equal", RESIZABLE_CONFIGS, ids=CONFIG_IDS
    )
    def test_resize_bumps_state_version(
        self, name, params, weighted, fresh_equal
    ):
        s = make_sampler(name, **params)
        _feed(s, weighted, KEYS[:MID], WEIGHTS[:MID])
        version = s.state_version
        s.resize(8)
        assert s.state_version > version

    @pytest.mark.parametrize(
        "name,params,weighted,fresh_equal", RESIZABLE_CONFIGS, ids=CONFIG_IDS
    )
    def test_cap_survives_state_roundtrip(
        self, name, params, weighted, fresh_equal
    ):
        # Grow leaves an admission cap behind; a serialize/revive cycle
        # must keep enforcing it bit-exactly on further ingestion.
        s = make_sampler(name, **params)
        _feed(s, weighted, KEYS[:MID], WEIGHTS[:MID])
        s.resize(64)
        revived = repro.sampler_from_state(s.to_state())
        extra = np.arange(2000, 2300)
        _feed(s, weighted, extra, np.ones(extra.size))
        _feed(revived, weighted, extra, np.ones(extra.size))
        assert revived.to_state() == s.to_state()

    def test_resizable_flag_advertised(self):
        for name, params, _, _ in RESIZABLE_CONFIGS:
            assert make_sampler(name, **params).resizable is True

    def test_non_resizable_sampler_raises(self):
        s = make_sampler("varopt", k=8, rng=1)
        assert s.resizable is False
        with pytest.raises(NotImplementedError, match="VarOpt"):
            s.resize(16)


class TestSharded:
    def test_sharded_mirrors_resizable_and_delegates(self):
        outer = ShardedSampler(
            {"name": "weighted_distinct", "params": {"k": 16, "salt": 3}},
            n_shards=4,
        )
        assert outer.resizable is True
        outer.update_many(KEYS, WEIGHTS)
        version = outer.state_version
        assert outer.resize(8) is outer
        assert outer.state_version > version
        assert outer.spec.params["k"] == 8
        for shard in outer.shards:
            assert shard.k == 8
            assert len(shard) <= 8 + 1
        # revive from state: the resized spec round-trips
        revived = repro.sampler_from_state(outer.to_state())
        assert revived.spec.params["k"] == 8
        assert revived.to_state() == outer.to_state()

    def test_sharded_non_resizable_raises(self):
        outer = ShardedSampler(
            {"name": "poisson", "params": {"threshold": 0.2, "rng": 1}},
            n_shards=2,
        )
        assert outer.resizable is False
        with pytest.raises(NotImplementedError):
            outer.resize(16)


class TestChunkingInvarianceAcrossResize:
    @pytest.mark.parametrize(
        "name,params,weighted,fresh_equal", HASHED_CONFIGS, ids=HASHED_IDS
    )
    @pytest.mark.parametrize("chunk", [1, 7, 1000])
    def test_chunked_feed_with_midstream_resize(
        self, chunk, name, params, weighted, fresh_equal
    ):
        # Same stream, same resize point, different chunking: the final
        # state must be identical (the serving runtime batches
        # arbitrarily and retunes at flush boundaries).
        def run(c):
            s = make_sampler(name, **params)
            for segment, seg_w, k in (
                (KEYS[:MID], WEIGHTS[:MID], None),
                (KEYS[MID:], WEIGHTS[MID:], 8),
            ):
                if k is not None:
                    s.resize(k)
                for i in range(0, len(segment), c):
                    _feed(s, weighted, segment[i:i + c], seg_w[i:i + c])
            return s.to_state()

        assert run(chunk) == run(len(KEYS))
