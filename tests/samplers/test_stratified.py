"""Tests for multi-stratified sampling (repro.samplers.stratified, §3.7)."""

import numpy as np
import pytest

from repro.samplers.stratified import MultiStratifiedSampler

from tests.helpers import assert_within_se


def feed_population(sampler, n=400, seed=0, n_countries=4, n_ages=5):
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        country = f"c{rng.integers(n_countries)}"
        age = f"a{rng.integers(n_ages)}"
        value = float(rng.lognormal(0, 0.4))
        sampler.update(i, strata=(country, age), value=value)
        rows.append((i, country, age, value))
    return rows


class TestMechanics:
    def test_every_stratum_represented(self):
        s = MultiStratifiedSampler(n_dims=2, k=5, salt=1)
        rows = feed_population(s)
        sample = s.sample()
        counts = s.stratum_counts(sample)
        seen = {(0, c) for _, c, _, _ in rows} | {(1, a) for _, _, a, _ in rows}
        for stratum in seen:
            assert counts.get(stratum, 0) >= 1

    def test_per_stratum_at_least_k_without_budget(self):
        s = MultiStratifiedSampler(n_dims=2, k=5, salt=2)
        feed_population(s, n=600)
        counts = s.stratum_counts(s.sample())
        assert all(v >= 5 for v in counts.values())

    def test_budget_respected(self):
        s = MultiStratifiedSampler(n_dims=2, k=10, salt=3)
        feed_population(s, n=600)
        sample = s.sample(budget=40)
        assert len(sample) <= 40

    def test_budget_monotone(self):
        s = MultiStratifiedSampler(n_dims=2, k=10, salt=4)
        feed_population(s, n=600)
        large = len(s.sample(budget=80))
        small = len(s.sample(budget=30))
        assert small <= 30 and large <= 80
        assert small <= large

    def test_dims_validated(self):
        s = MultiStratifiedSampler(n_dims=2, k=3)
        with pytest.raises(ValueError):
            s.update(0, strata=("only-one",))
        with pytest.raises(ValueError):
            MultiStratifiedSampler(n_dims=0, k=3)
        with pytest.raises(ValueError):
            s.sample(budget=0)

    def test_duplicate_keys_idempotent(self):
        s = MultiStratifiedSampler(n_dims=1, k=5, salt=5)
        for _ in range(3):
            s.update("x", strata=("c0",))
        assert len(s.sample()) == 1


class TestEstimation:
    def test_subset_sum_unbiased(self):
        """HT sums stay unbiased under the max-composition threshold
        (1-substitutability is enough — see the recalibration tests)."""
        n = 200
        rng = np.random.default_rng(7)
        countries = [f"c{rng.integers(3)}" for _ in range(n)]
        ages = [f"a{rng.integers(3)}" for _ in range(n)]
        values = rng.lognormal(0, 0.4, n)
        target = {i for i in range(n) if countries[i] == "c0"}
        truth = float(sum(values[i] for i in target))
        estimates = []
        for salt in range(300):
            s = MultiStratifiedSampler(n_dims=2, k=6, salt=salt)
            for i in range(n):
                s.update(i, strata=(countries[i], ages[i]), value=float(values[i]))
            sample = s.sample()
            estimates.append(sample.select(lambda key: key in target).ht_total())
        assert_within_se(estimates, truth)

    def test_population_count_unbiased(self):
        n = 250
        rng = np.random.default_rng(9)
        strata = [(f"c{rng.integers(4)}", f"a{rng.integers(4)}") for _ in range(n)]
        estimates = []
        for salt in range(300):
            s = MultiStratifiedSampler(n_dims=2, k=5, salt=salt)
            for i in range(n):
                s.update(i, strata=strata[i])
            estimates.append(s.sample().distinct_estimate())
        assert_within_se(estimates, float(n))
