"""Property-based tests for the sliding-window sampler invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.samplers.sliding_window import SlidingWindowSampler

arrival_batches = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    min_size=1,
    max_size=300,
)


class TestWindowInvariants:
    @given(arrival_batches, st.integers(min_value=2, max_value=20), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_memory_and_threshold_ranges(self, times, k, seed):
        times = sorted(times)
        sampler = SlidingWindowSampler(k=k, window=1.0,
                                       rng=np.random.default_rng(seed))
        for i, t in enumerate(times):
            sampler.update(i, time=float(t))
            assert len(sampler._cur_sorted) <= k
        now = times[-1]
        snap = sampler.snapshot(now)
        assert 0.0 < snap.improved_threshold <= 1.0
        assert 0.0 < snap.gl_threshold <= 1.0
        # Dominance (improved >= G&L) is a *saturated-regime* property: in
        # sparse windows a rejected arrival's clamp update can pull per-item
        # thresholds below the underfull G&L order statistic (a hypothesis-
        # discovered counterexample).  Assert it only when the last window
        # saw plenty of traffic relative to k AND the expired pool is
        # saturated — with few expired candidates the G&L statistic
        # degenerates to the largest current priority (another hypothesis-
        # discovered counterexample: a burst, a silent window, a burst).
        recent = sum(1 for t in times if t > now - 1.0)
        if recent >= 3 * k and snap.stored_expired >= k:
            assert snap.improved_threshold >= snap.gl_threshold - 1e-12

    @given(arrival_batches, st.integers(min_value=2, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_samples_subset_of_window(self, times, k):
        times = sorted(times)
        sampler = SlidingWindowSampler(k=k, window=1.0,
                                       rng=np.random.default_rng(1))
        for i, t in enumerate(times):
            sampler.update(i, time=float(t))
        now = times[-1] + 0.5
        improved = sampler.improved_sample(now)
        gl = sampler.gl_sample(now)
        for sample in (improved, gl):
            for item in sample:
                assert times[item.key] > now - 1.0
        # Improved-sample keys are current candidates below the threshold,
        # which are also below the (smaller) GL threshold's candidate pool.
        assert set(gl.keys) <= set(
            rec.key for rec in sampler._current_records()
        )

    @given(st.integers(min_value=2, max_value=15), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_underfull_window_keeps_everything(self, k, seed):
        rng = np.random.default_rng(seed)
        times = np.sort(rng.uniform(5.0, 6.0, k - 1))
        sampler = SlidingWindowSampler(k=k, window=1.0, rng=rng)
        for i, t in enumerate(times):
            sampler.update(i, time=float(t))
        sample = sampler.improved_sample(float(times[-1]))
        assert len(sample) == k - 1  # threshold 1: exhaustive sample
        assert sampler.improved_threshold(float(times[-1])) == 1.0


class TestWeightedDistinctValues:
    def test_subset_sum_with_values_mapping(self):
        from repro.samplers.distinct import WeightedDistinctSketch

        s = WeightedDistinctSketch(100, salt=3)
        values = {}
        for i in range(50):
            s.update(i, weight=1.0 + i % 3)
            values[i] = float(i)
        est = s.estimate_subset_sum(lambda key: key < 10, values=values)
        assert est == pytest.approx(sum(range(10)))  # underfull: exact
