"""Tests for frequent-group distinct counting (repro.samplers.grouped_distinct, §3.6)."""

import numpy as np
import pytest

from repro.samplers.grouped_distinct import GroupedDistinctSketch


def feed_groups(sketch, group_sizes: dict, salt_offset: int = 0):
    """Insert `group -> size` distinct items per group, interleaved."""
    items = [
        (group, f"item-{group}-{i}")
        for group, size in group_sizes.items()
        for i in range(size)
    ]
    rng = np.random.default_rng(42 + salt_offset)
    rng.shuffle(items)
    for group, key in items:
        sketch.update(key, group=group)


class TestMechanics:
    def test_small_group_counts_exact_when_dedicated(self):
        s = GroupedDistinctSketch(m=4, k=20, salt=0)
        feed_groups(s, {"a": 5, "b": 12, "c": 3})
        assert s.estimate_distinct("a") == pytest.approx(5.0)
        assert s.estimate_distinct("b") == pytest.approx(12.0)
        assert s.estimate_distinct("c") == pytest.approx(3.0)

    def test_unknown_group_is_zero(self):
        s = GroupedDistinctSketch(m=2, k=5)
        assert s.estimate_distinct("nope") == 0.0

    def test_promotion_of_heavy_pooled_group(self):
        # Fill all dedicated slots with big groups, then pour a heavy group
        # through the pool: it must eventually get promoted.
        s = GroupedDistinctSketch(m=2, k=10, salt=1)
        feed_groups(s, {"big1": 300, "big2": 300})
        feed_groups(s, {"late-heavy": 400}, salt_offset=1)
        assert "late-heavy" in s.dedicated

    def test_pool_respects_t_max(self):
        s = GroupedDistinctSketch(m=2, k=10, salt=2)
        feed_groups(s, {"big1": 500, "big2": 500, "small": 30})
        t = s.t_max
        for bucket in s.pool.values():
            assert all(h < t for h in bucket.values())

    def test_memory_stays_bounded(self):
        # Many tiny groups: the pool keeps only hash < t_max entries, so
        # the footprint stays near m * k rather than growing per group.
        s = GroupedDistinctSketch(m=5, k=20, salt=3)
        sizes = {"heavy1": 2000, "heavy2": 2000, "heavy3": 1500,
                 "heavy4": 1500, "heavy5": 1500}
        sizes.update({f"tiny{i}": 3 for i in range(500)})
        feed_groups(s, sizes)
        # naive: 505 sketches; ours: 5 dedicated + a thin pool.
        assert s.memory_entries() < 5 * (20 + 2) + 300

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupedDistinctSketch(m=0, k=5)


class TestAccuracy:
    def test_heavy_group_estimates(self):
        sizes = {"h1": 3000, "h2": 2000, "h3": 1000}
        sizes.update({f"t{i}": 5 for i in range(100)})
        rel_errors = {g: [] for g in ("h1", "h2", "h3")}
        for salt in range(30):
            s = GroupedDistinctSketch(m=3, k=50, salt=salt)
            feed_groups(s, sizes, salt_offset=salt)
            for g in rel_errors:
                rel_errors[g].append(s.estimate_distinct(g) / sizes[g] - 1.0)
        for g, errs in rel_errors.items():
            assert abs(np.mean(errs)) < 0.12
            assert np.std(errs) < 0.35

    def test_small_group_estimates_under_pool(self):
        # Pooled groups are estimated at the heavy-hitter rate: unbiased,
        # with error scaled to the heavy groups (the §3.6 trade-off).
        sizes = {"h1": 4000, "h2": 4000, "h3": 4000}
        small = {f"s{i}": 40 for i in range(50)}
        sizes.update(small)
        total_errors = []
        for salt in range(30):
            s = GroupedDistinctSketch(m=3, k=40, salt=salt)
            feed_groups(s, sizes, salt_offset=salt)
            est = sum(s.estimate_distinct(g) for g in small)
            total_errors.append(est / (40 * 50) - 1.0)
        assert abs(np.mean(total_errors)) < 0.15

    def test_groups_listing(self):
        s = GroupedDistinctSketch(m=2, k=5, salt=4)
        feed_groups(s, {"a": 50, "b": 50, "c": 50})
        assert {"a", "b"} <= s.groups() or len(s.groups()) >= 2
