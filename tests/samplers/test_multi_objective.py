"""Tests for multi-objective sampling (repro.samplers.multi_objective, §3.8)."""

import numpy as np
import pytest

from repro.samplers.multi_objective import MultiObjectiveSampler
from repro.workloads.weights import correlated_weight_pair

from tests.helpers import assert_within_se


def feed(sampler, profit, revenue):
    for i in range(profit.size):
        sampler.update(i, weights={"profit": float(profit[i]), "revenue": float(revenue[i])})


class TestCoordination:
    def test_proportional_weights_collapse_to_k(self):
        # Scalar multiples of the same weights give identical priority
        # orders: the union is exactly one sketch (paper's §3.8 endpoint).
        n, k = 800, 50
        w = np.random.default_rng(0).lognormal(0, 1.0, n)
        s = MultiObjectiveSampler(k, ("profit", "revenue"), salt=1)
        feed(s, w, 3.0 * w)
        assert s.union_size() == k
        assert s.footprint_ratio() == pytest.approx(0.5)

    def test_independent_weights_much_larger_than_k(self):
        # Even "independent" weights share the coordinating uniform u, so
        # the union lands around 1.5k rather than the full 2k; the claim
        # under test is that it clearly exceeds the proportional case's k.
        n, k = 3000, 50
        p, r = correlated_weight_pair(n, 0.0, rng=np.random.default_rng(1))
        s = MultiObjectiveSampler(k, ("profit", "revenue"), salt=2)
        feed(s, p, r)
        assert s.union_size() > 1.35 * k

    def test_union_monotone_in_correlation(self):
        n, k = 3000, 50
        sizes = []
        for corr in (0.0, 0.9, 1.0):
            acc = []
            for salt in range(5):
                p, r = correlated_weight_pair(
                    n, corr, rng=np.random.default_rng(salt)
                )
                s = MultiObjectiveSampler(k, ("profit", "revenue"), salt=salt)
                feed(s, p, r)
                acc.append(s.union_size())
            sizes.append(np.mean(acc))
        assert sizes[0] > sizes[1] > sizes[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiObjectiveSampler(5, ())
        s = MultiObjectiveSampler(5, ("a",))
        with pytest.raises(ValueError):
            s.update(0, weights={"a": 0.0})


class TestEstimation:
    def test_per_objective_totals_unbiased(self):
        n, k = 400, 40
        p, r = correlated_weight_pair(n, 0.5, rng=np.random.default_rng(3))
        p_est, r_est = [], []
        for salt in range(250):
            s = MultiObjectiveSampler(k, ("profit", "revenue"), salt=salt)
            feed(s, p, r)
            p_est.append(s.estimate_total("profit"))
            r_est.append(s.estimate_total("revenue"))
        assert_within_se(p_est, float(p.sum()))
        assert_within_se(r_est, float(r.sum()))

    def test_subset_totals(self):
        n, k = 300, 30
        p, r = correlated_weight_pair(n, 0.2, rng=np.random.default_rng(4))
        truth = float(p[: n // 2].sum())
        estimates = []
        for salt in range(250):
            s = MultiObjectiveSampler(k, ("profit", "revenue"), salt=salt)
            feed(s, p, r)
            estimates.append(
                s.estimate_total("profit", predicate=lambda key: key < n // 2)
            )
        assert_within_se(estimates, truth)

    def test_sketch_accessor(self):
        s = MultiObjectiveSampler(5, ("profit", "revenue"))
        assert s.sketch("profit") is not s.sketch("revenue")
        with pytest.raises(KeyError):
            s.sketch("unknown")
