"""Tests for sliding-window sampling (repro.samplers.sliding_window, §3.2)."""

import numpy as np
import pytest

from repro.samplers.sliding_window import SlidingWindowSampler
from repro.workloads.arrivals import homogeneous_arrivals


def feed(sampler: SlidingWindowSampler, times: np.ndarray) -> None:
    for i, t in enumerate(times):
        sampler.update(i, time=float(t))


class TestBookkeeping:
    def test_current_bounded_by_k(self, rng):
        s = SlidingWindowSampler(k=10, window=1.0, rng=rng)
        times = np.sort(rng.uniform(0, 5, 2000))
        for i, t in enumerate(times):
            s.update(i, time=float(t))
            assert len(s._cur_sorted) <= 10
        assert s.max_current <= 10

    def test_expiry_moves_and_drops(self, rng):
        s = SlidingWindowSampler(k=5, window=1.0, rng=rng)
        feed(s, np.linspace(0.1, 0.5, 20))
        s.advance(1.0)  # window (0, 1]: everything still current
        assert len(s._cur_sorted) == 5
        s.advance(2.0)  # all items older than one window: expired
        assert len(s._cur_sorted) == 0
        assert len(s._expired) == 5
        s.advance(10.0)  # older than two windows: gone entirely
        assert len(s._expired) == 0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowSampler(k=1, window=1.0)
        with pytest.raises(ValueError):
            SlidingWindowSampler(k=5, window=0.0)

    def test_thresholds_default_to_one_when_empty(self, rng):
        s = SlidingWindowSampler(k=5, window=1.0, rng=rng)
        assert s.gl_threshold(0.0) == 1.0
        assert s.improved_threshold(0.0) == 1.0


class TestSamples:
    def test_samples_contain_only_window_items(self, rng):
        s = SlidingWindowSampler(k=20, window=1.0, rng=rng)
        times = np.sort(rng.uniform(0, 4, 3000))
        feed(s, times)
        now = 4.0
        for sample in (s.gl_sample(now), s.improved_sample(now)):
            for item in sample:
                assert times[item.key] > now - 1.0

    def test_improved_dominates_gl(self):
        # Structural claim of §3.2: the G&L final threshold is conservative.
        for seed in range(3):
            rng = np.random.default_rng(seed)
            s = SlidingWindowSampler(k=25, window=1.0, rng=rng)
            times = np.sort(rng.uniform(0, 6, 4000))
            cursor = 0
            for g in np.arange(2.0, 6.0, 0.5):
                while cursor < times.size and times[cursor] <= g:
                    s.update(cursor, time=float(times[cursor]))
                    cursor += 1
                snap = s.snapshot(float(g))
                assert snap.improved_threshold >= snap.gl_threshold
                assert snap.improved_sample_size >= snap.gl_sample_size - 1

    def test_sample_size_ratio_near_two(self, rng):
        s = SlidingWindowSampler(k=40, window=1.0, rng=rng)
        times = np.sort(rng.uniform(0, 8, 8 * 600))
        cursor = 0
        ratios = []
        for g in np.arange(3.0, 8.0, 0.5):
            while cursor < times.size and times[cursor] <= g:
                s.update(cursor, time=float(times[cursor]))
                cursor += 1
            snap = s.snapshot(float(g))
            if snap.gl_sample_size:
                ratios.append(snap.improved_sample_size / snap.gl_sample_size)
        assert 1.4 < np.mean(ratios) < 2.8  # paper: ~2x

    def test_uniformity_of_improved_sample(self):
        """Every window item must be included with prob = the threshold.

        Aggregated over many runs, the inclusion frequency of a fixed
        arrival position should match the mean improved threshold.
        """
        window, k = 1.0, 15
        include = 0
        thresholds = []
        trials = 400
        for seed in range(trials):
            rng = np.random.default_rng(seed)
            times = homogeneous_arrivals(120.0, 0.0, 3.0, rng)
            s = SlidingWindowSampler(k=k, window=window, rng=rng)
            probe = None
            for i, t in enumerate(times):
                s.update(i, time=float(t))
                # Choose the first item inside the final window as a probe.
                if probe is None and t > 2.0:
                    probe = i
            sample_keys = set(s.improved_sample(3.0).keys)
            thresholds.append(s.improved_threshold(3.0))
            if probe is not None:
                include += int(probe in sample_keys)
        rate = include / trials
        assert rate == pytest.approx(np.mean(thresholds), abs=0.05)

    def test_window_count_estimate(self, rng):
        # HT count of window arrivals should land near the truth.
        s = SlidingWindowSampler(k=50, window=1.0, rng=rng)
        times = np.sort(rng.uniform(0, 5, 5 * 500))
        feed(s, times)
        truth = np.sum(times > 4.0)
        est = s.estimate_window_count(5.0)
        assert est == pytest.approx(truth, rel=0.5)

    def test_estimates_unbiased_over_trials(self):
        counts, truths = [], []
        for seed in range(300):
            rng = np.random.default_rng(seed)
            times = np.sort(rng.uniform(0.0, 3.0, 600))
            s = SlidingWindowSampler(k=20, window=1.0, rng=rng)
            feed(s, times)
            counts.append(s.estimate_window_count(3.0))
            truths.append(float(np.sum(times > 2.0)))
        bias = np.mean(counts) - np.mean(truths)
        se = np.std(counts, ddof=1) / np.sqrt(len(counts))
        assert abs(bias) < 5.0 * se
