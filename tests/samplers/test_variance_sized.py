"""Tests for variance-sized sampling (repro.samplers.variance_sized, §3.9/§6)."""

import numpy as np
import pytest

from repro.core.priorities import InverseWeightPriority
from repro.samplers.variance_sized import (
    VarianceTargetSampler,
    solve_first_crossing,
    solve_stopping_threshold,
)


def vhat_at(values, weights, priorities, t):
    fam = InverseWeightPriority()
    mask = priorities < t
    probs = np.asarray(fam.pseudo_inclusion(t, weights[mask]), dtype=float)
    return float(
        np.sum(
            np.where(probs < 1.0, values[mask] ** 2 * (1 - probs) / probs**2, 0.0)
        )
    )


@pytest.fixture
def population(rng):
    n = 120
    weights = rng.lognormal(0, 0.6, n)
    return weights.copy(), weights, rng.random(n) / weights


class TestSolvers:
    def test_crossings_hit_target_exactly(self, population):
        values, weights, priorities = population
        delta = 0.08 * values.sum()
        for solver in (solve_stopping_threshold, solve_first_crossing):
            t = solver(values, weights, priorities, delta)
            assert np.isfinite(t)
            assert vhat_at(values, weights, priorities, t) == pytest.approx(
                delta**2, rel=1e-6
            )

    def test_first_crossing_not_above_largest(self, population):
        values, weights, priorities = population
        delta = 0.08 * values.sum()
        first = solve_first_crossing(values, weights, priorities, delta)
        largest = solve_stopping_threshold(values, weights, priorities, delta)
        assert first <= largest + 1e-12

    def test_unreachable_target_returns_inf(self, population):
        values, weights, priorities = population
        # Absurdly loose target: no downsampling needed.
        t = solve_stopping_threshold(values, weights, priorities, 1e9)
        assert np.isinf(t)

    def test_delta_validation(self, population):
        values, weights, priorities = population
        with pytest.raises(ValueError):
            solve_stopping_threshold(values, weights, priorities, 0.0)

    def test_empty_population(self):
        t = solve_stopping_threshold(
            np.array([]), np.array([]), np.array([]), 1.0
        )
        assert np.isinf(t)

    def test_expected_vhat_equals_target(self):
        """The §3.9 claim E[Vhat(S_T)] = delta^2 (holds by construction
        whenever the crossing is interior, which it is a.s.)."""
        rng = np.random.default_rng(0)
        n = 150
        weights = rng.lognormal(0, 0.5, n)
        values = weights.copy()
        delta = 0.06 * values.sum()
        measured = []
        for _ in range(50):
            priorities = rng.random(n) / weights
            t = solve_stopping_threshold(values, weights, priorities, delta)
            measured.append(vhat_at(values, weights, priorities, t))
        assert np.mean(measured) == pytest.approx(delta**2, rel=1e-6)

    def test_realized_mse_tracks_target(self):
        rng = np.random.default_rng(1)
        n = 400
        weights = rng.lognormal(0, 0.5, n)
        values = weights.copy()
        truth = values.sum()
        delta = 0.05 * truth
        fam = InverseWeightPriority()
        sq = []
        for _ in range(400):
            priorities = rng.random(n) / weights
            t = solve_stopping_threshold(values, weights, priorities, delta)
            mask = priorities < t
            probs = np.asarray(fam.pseudo_inclusion(t, weights[mask]))
            sq.append((float(np.sum(values[mask] / probs)) - truth) ** 2)
        assert np.mean(sq) == pytest.approx(delta**2, rel=0.35)


class TestStreamingSampler:
    def test_no_horizon_retains_and_is_sound(self, rng):
        weights = rng.lognormal(0, 0.5, 200)
        s = VarianceTargetSampler(delta=weights.sum() * 0.1, rng=rng)
        for i, w in enumerate(weights):
            s.update(i, weight=float(w))
        sample, sound = s.finalize()
        assert sound
        assert len(s._priorities) == 200  # nothing evicted

    def test_horizon_bounds_memory(self, rng):
        n = 2000
        weights = rng.lognormal(0, 0.5, n)
        s = VarianceTargetSampler(
            delta=weights.sum() * 0.05, horizon=n, oversample=2.0, rng=rng
        )
        for i, w in enumerate(weights):
            s.update(i, weight=float(w))
        assert len(s._priorities) < n / 2  # retention cap engaged
        sample, sound = s.finalize()
        if sound:
            # A sound run must agree with the offline first-crossing rule.
            assert float(sample.thresholds[0]) == pytest.approx(
                s.provisional_threshold()
            )

    def test_horizon_runs_usually_sound_and_accurate(self):
        n = 1500
        rng0 = np.random.default_rng(5)
        weights = rng0.lognormal(0, 0.5, n)
        truth = weights.sum()
        delta = 0.05 * truth
        sound_count = 0
        errors = []
        trials = 40
        for seed in range(trials):
            s = VarianceTargetSampler(
                delta, horizon=n, oversample=2.0, rng=np.random.default_rng(seed)
            )
            for i, w in enumerate(weights):
                s.update(i, weight=float(w))
            sample, sound = s.finalize()
            sound_count += int(sound)
            errors.append(abs(sample.ht_total() - truth) / truth)
        assert sound_count >= 0.9 * trials
        assert np.median(errors) < 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            VarianceTargetSampler(delta=0.0)
        with pytest.raises(ValueError):
            VarianceTargetSampler(delta=1.0, oversample=0.5)
        with pytest.raises(ValueError):
            VarianceTargetSampler(delta=1.0, horizon=0)
