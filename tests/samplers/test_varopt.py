"""Tests for the VarOpt_k baseline (repro.samplers.varopt)."""

import numpy as np
import pytest

from repro.samplers.varopt import VarOptSampler

from tests.helpers import assert_within_se


class TestMechanics:
    def test_exactly_k_retained(self, rng):
        s = VarOptSampler(10, rng=rng)
        for i in range(200):
            s.update(i, float(1 + i % 7))
        assert len(s) == 10

    def test_underfull_exact(self, rng):
        s = VarOptSampler(10, rng=rng)
        for i in range(5):
            s.update(i, 2.0)
        assert s.estimate_total() == pytest.approx(10.0)

    def test_tau_equation(self):
        # sum min(1, w / tau) over the k+1 candidates must equal k.
        weights = np.array([1.0, 2.0, 3.0, 10.0, 0.5])
        tau = VarOptSampler._solve_tau(weights, k=4)
        assert np.sum(np.minimum(1.0, weights / tau)) == pytest.approx(4.0)

    def test_tau_equation_heavy_tail(self):
        weights = np.array([100.0, 1.0, 1.0, 1.0])
        tau = VarOptSampler._solve_tau(weights, k=3)
        assert np.sum(np.minimum(1.0, weights / tau)) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VarOptSampler(0)
        with pytest.raises(ValueError):
            VarOptSampler(3).update("x", 0.0)

    def test_large_items_kept_exactly(self, rng):
        s = VarOptSampler(5, rng=rng)
        s.update("whale", 1000.0)
        for i in range(100):
            s.update(i, 1.0)
        items = dict(s.items())
        assert items.get("whale") == pytest.approx(1000.0)


class TestEstimation:
    def test_total_unbiased(self):
        weights = np.random.default_rng(0).lognormal(0, 0.8, 80)
        truth = weights.sum()
        estimates = []
        for seed in range(500):
            s = VarOptSampler(12, rng=np.random.default_rng(seed))
            for i, w in enumerate(weights):
                s.update(i, float(w))
            estimates.append(s.estimate_total())
        assert_within_se(estimates, truth)

    def test_subset_sum_unbiased(self):
        weights = np.random.default_rng(1).lognormal(0, 0.6, 60)
        subset = set(range(0, 60, 3))
        truth = float(sum(w for i, w in enumerate(weights) if i in subset))
        estimates = []
        for seed in range(500):
            s = VarOptSampler(12, rng=np.random.default_rng(seed))
            for i, w in enumerate(weights):
                s.update(i, float(w))
            estimates.append(s.estimate_total(lambda key: key in subset))
        assert_within_se(estimates, truth)

    def test_total_variance_below_priority_sampling(self):
        """VarOpt is variance-optimal: its total estimate beats priority
        sampling's at the same k (the A1 ablation's expected ordering)."""
        from repro.samplers.bottomk import BottomKSampler

        weights = np.random.default_rng(2).lognormal(0, 1.0, 100)
        varopt_est, priority_est = [], []
        for seed in range(300):
            vo = VarOptSampler(15, rng=np.random.default_rng(seed))
            bk = BottomKSampler(15, rng=np.random.default_rng(seed + 1000))
            for i, w in enumerate(weights):
                vo.update(i, float(w))
                bk.update(i, weight=float(w))
            varopt_est.append(vo.estimate_total())
            priority_est.append(bk.estimate_total())
        assert np.var(varopt_est) < np.var(priority_est)
