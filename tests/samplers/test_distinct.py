"""Tests for distinct counting & merges (repro.samplers.distinct, §3.4–3.5)."""

import numpy as np
import pytest

from repro.core.hashing import hash_array_to_unit
from repro.samplers.distinct import (
    AdaptiveDistinctSketch,
    WeightedDistinctSketch,
    lcs_union,
)

from tests.helpers import assert_within_se


class TestWeightedDistinctSketch:
    def test_duplicates_idempotent(self):
        s = WeightedDistinctSketch(10, salt=0)
        for _ in range(5):
            s.update("a", weight=2.0)
        assert len(s) == 1
        assert s.estimate_distinct() == pytest.approx(1.0)

    def test_exact_while_underfull(self):
        s = WeightedDistinctSketch(50, salt=0)
        for i in range(20):
            s.update(i, weight=1.0 + i % 3)
        assert s.estimate_distinct() == pytest.approx(20.0)

    def test_distinct_estimate_unbiased(self):
        n, k = 500, 40
        estimates = []
        for salt in range(300):
            s = WeightedDistinctSketch(k, salt=salt)
            for i in range(n):
                s.update(i, weight=1.0 + (i % 5))
            estimates.append(s.estimate_distinct())
        assert_within_se(estimates, float(n))

    def test_subset_sum_unbiased(self):
        n, k = 400, 40
        weights = {i: 1.0 + (i % 7) for i in range(n)}
        truth = sum(w for i, w in weights.items() if i % 2 == 0)
        estimates = []
        for salt in range(300):
            s = WeightedDistinctSketch(k, salt=salt)
            for i in range(n):
                s.update(i, weight=weights[i])
            estimates.append(s.estimate_subset_sum(lambda key: key % 2 == 0))
        assert_within_se(estimates, truth)

    def test_heavy_key_always_kept(self):
        s = WeightedDistinctSketch(5, salt=1)
        s.update("whale", weight=1e9)
        for i in range(500):
            s.update(i)
        assert s.estimate_subset_sum(lambda key: key == "whale") > 0

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            WeightedDistinctSketch(5).update("x", weight=0.0)


class TestAdaptiveDistinctSketch:
    def test_exact_while_underfull(self):
        s = AdaptiveDistinctSketch(100, salt=0)
        s.update_many(range(30))
        assert s.estimate_distinct() == pytest.approx(30.0)
        assert len(s) == 30

    def test_estimate_unbiased(self):
        n, k = 1000, 50
        estimates = []
        for salt in range(300):
            s = AdaptiveDistinctSketch(k, salt=salt)
            s.update_many(range(n))
            estimates.append(s.estimate_distinct())
        assert_within_se(estimates, float(n))

    def test_from_hashes_matches_streaming(self):
        n, k, salt = 400, 30, 9
        streamed = AdaptiveDistinctSketch(k, salt=salt)
        streamed.update_many(range(n))
        hashed = AdaptiveDistinctSketch.from_hashes(
            hash_array_to_unit(np.arange(n), salt), k, salt
        )
        assert hashed.estimate_distinct() == pytest.approx(
            streamed.estimate_distinct()
        )
        assert hashed.stream_threshold == pytest.approx(streamed.stream_threshold)

    def test_merge_unbiased_on_overlap(self):
        size_a, size_b, overlap, k = 600, 800, 300, 60
        keys_a = np.arange(size_a)
        keys_b = np.arange(size_a - overlap, size_a - overlap + size_b)
        truth = float(np.union1d(keys_a, keys_b).size)
        estimates = []
        for salt in range(200):
            a = AdaptiveDistinctSketch.from_hashes(hash_array_to_unit(keys_a, salt), k, salt)
            b = AdaptiveDistinctSketch.from_hashes(hash_array_to_unit(keys_b, salt), k, salt)
            estimates.append(a.merge(b).estimate_distinct())
        assert_within_se(estimates, truth)

    def test_or_operator_is_pure(self):
        a = AdaptiveDistinctSketch(10, salt=0)
        a.update_many(range(100))
        before = a.estimate_distinct()
        b = AdaptiveDistinctSketch(10, salt=0)
        b.update_many(range(50, 150))
        union = a | b
        assert a.estimate_distinct() == pytest.approx(before)
        assert union.estimate_distinct() != pytest.approx(before)

    def test_merge_in_place_equals_pure(self):
        a1 = AdaptiveDistinctSketch(10, salt=0)
        a1.update_many(range(100))
        a2 = AdaptiveDistinctSketch(10, salt=0)
        a2.update_many(range(100))
        b = AdaptiveDistinctSketch(10, salt=0)
        b.update_many(range(50, 180))
        pure = (a1 | b).estimate_distinct()
        result = a2.merge(b)
        assert result is a2  # in-place merge returns self
        assert a2.estimate_distinct() == pytest.approx(pure)

    def test_merge_commutative(self):
        a = AdaptiveDistinctSketch(20, salt=3)
        a.update_many(range(300))
        b = AdaptiveDistinctSketch(20, salt=3)
        b.update_many(range(200, 600))
        assert (a | b).estimate_distinct() == pytest.approx(
            (b | a).estimate_distinct()
        )

    def test_merge_mixed_k_keeps_small_sketch_taus(self):
        # Regression: enlarging k before folding the live stream entries
        # used to lift the folded taus to the admission cap, collapsing
        # the estimate of the smaller sketch's stream.
        x = AdaptiveDistinctSketch(4, salt=0)
        x.update_many(range(200))
        alone = x.estimate_distinct()
        y = AdaptiveDistinctSketch(64, salt=0)
        y.update_many(range(10_000, 10_003))
        x.merge(y)
        assert x.estimate_distinct() == pytest.approx(alone + 3.0, rel=0.05)

    def test_merge_salt_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveDistinctSketch(5, salt=0).merge(AdaptiveDistinctSketch(5, salt=1))

    def test_update_after_merge_respects_cap(self):
        a = AdaptiveDistinctSketch(20, salt=0)
        a.update_many(range(500))
        b = AdaptiveDistinctSketch(20, salt=0)
        b.update_many(range(500, 1000))
        merged = a.merge(b)
        cap = merged.stream_threshold
        merged.update_many(range(1000, 1500))
        # New entries must all sit below the admission cap.
        for key, (h, tau) in merged.entries().items():
            assert h < max(tau, cap) + 1e-12

    def test_trim_bounds_entries_and_stays_sane(self):
        a = AdaptiveDistinctSketch(50, salt=0)
        a.update_many(range(2000))
        b = AdaptiveDistinctSketch(50, salt=0)
        b.update_many(range(1500, 3500))
        merged = a.merge(b)
        merged.trim(40)
        assert len(merged) <= 40
        est = merged.estimate_distinct()
        assert est == pytest.approx(3500.0, rel=0.6)


class TestLCSUnionAdvantage:
    def test_lcs_beats_single_sketch_variance(self):
        """§3.5's point: the per-item merge uses ~2k samples, not k."""
        n, k = 2000, 40
        keys_a = np.arange(n)
        keys_b = np.arange(n, 2 * n)
        lcs_err, theta_like_err = [], []
        truth = 2.0 * n
        for salt in range(250):
            ha = hash_array_to_unit(keys_a, salt)
            hb = hash_array_to_unit(keys_b, salt)
            a = AdaptiveDistinctSketch.from_hashes(ha, k, salt)
            b = AdaptiveDistinctSketch.from_hashes(hb, k, salt)
            lcs_err.append(lcs_union(a, b) - truth)
            # Baseline: re-sketch the union down to k entries (trim).
            merged = a.merge(b)
            merged.trim(k)
            theta_like_err.append(merged.estimate_distinct() - truth)
        assert np.std(lcs_err) < 0.85 * np.std(theta_like_err)
