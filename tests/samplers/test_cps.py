"""Tests for exact Conditional Poisson Sampling (repro.samplers.cps)."""

import itertools
import math

import numpy as np
import pytest

from repro.samplers.cps import ConditionalPoissonSampler


def brute_force_design(p: np.ndarray, k: int) -> dict[tuple[int, ...], float]:
    """Exact CPS sample probabilities by conditioning the Poisson design."""
    n = p.size
    design = {}
    total = 0.0
    for subset in itertools.combinations(range(n), k):
        prob = math.prod(p[i] if i in subset else 1 - p[i] for i in range(n))
        design[subset] = prob
        total += prob
    return {s: v / total for s, v in design.items()}


class TestExactness:
    def test_inclusion_probabilities_match_brute_force(self):
        p = np.array([0.2, 0.5, 0.7, 0.4, 0.6])
        k = 2
        cps = ConditionalPoissonSampler(p, k)
        design = brute_force_design(p, k)
        truth = np.zeros(p.size)
        for subset, prob in design.items():
            for i in subset:
                truth[i] += prob
        np.testing.assert_allclose(cps.inclusion_probabilities(), truth, atol=1e-12)

    def test_inclusion_probabilities_sum_to_k(self):
        p = np.array([0.3, 0.1, 0.8, 0.5, 0.25, 0.66])
        for k in (1, 2, 3, 5):
            cps = ConditionalPoissonSampler(p, k)
            assert cps.inclusion_probabilities().sum() == pytest.approx(k)

    def test_sample_distribution_matches_design(self):
        p = np.array([0.3, 0.6, 0.5, 0.2])
        k = 2
        cps = ConditionalPoissonSampler(p, k)
        design = brute_force_design(p, k)
        counts = {s: 0 for s in design}
        rng = np.random.default_rng(0)
        trials = 40_000
        for _ in range(trials):
            counts[tuple(cps.sample(rng).tolist())] += 1
        for subset, prob in design.items():
            assert counts[subset] / trials == pytest.approx(prob, abs=0.012)

    def test_sample_size_always_k(self):
        p = np.full(10, 0.35)
        cps = ConditionalPoissonSampler(p, 4)
        rng = np.random.default_rng(1)
        for _ in range(200):
            assert cps.sample(rng).size == 4


class TestEstimation:
    def test_ht_total_unbiased(self):
        p = np.array([0.3, 0.6, 0.5, 0.2, 0.45])
        values = np.array([1.0, 5.0, 2.0, 8.0, 3.0])
        cps = ConditionalPoissonSampler(p, 2)
        design = brute_force_design(p, 2)
        expected = sum(
            prob * cps.ht_total(values, np.asarray(subset))
            for subset, prob in design.items()
        )
        assert expected == pytest.approx(values.sum(), abs=1e-9)


class TestValidation:
    def test_probabilities_strictly_inside(self):
        with pytest.raises(ValueError):
            ConditionalPoissonSampler(np.array([0.0, 0.5]), 1)
        with pytest.raises(ValueError):
            ConditionalPoissonSampler(np.array([1.0, 0.5]), 1)

    def test_k_range(self):
        with pytest.raises(ValueError):
            ConditionalPoissonSampler(np.array([0.5, 0.5]), 3)
        with pytest.raises(ValueError):
            ConditionalPoissonSampler(np.array([0.5, 0.5]), 0)
