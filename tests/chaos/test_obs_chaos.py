"""Observability under chaos: scrapes during outages, alert latency
bounded by the supervisor cadence, and clean post-recovery expositions.

The worker-down alert battery drives an *operator-declared* outage
(``mark_service_down``) — the one outage shape the supervisor honors
without auto-repair — so fire/resolve latency is deterministic.  The
kill battery injects a real WAL fault under supervision and then demands
the usual strongest outcome (bit-exact state, zero loss past the durable
frontier) *plus* an exposition with no phantom volatile gauges from the
dead incarnation.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import AlertEngine, cluster_registry, parse_exposition
from repro.serve.chaos import ChaosInjector, Fault
from repro.serve.cluster import Cluster, Supervisor
from tests.chaos.common import (
    FAST_SUPERVISION,
    control_signature,
    run_async,
    settle,
    sig_of,
    tenant_spec,
    tenant_stream,
    wait_for,
)

pytestmark = [pytest.mark.obs, pytest.mark.timeout(120)]


def _gauge_by_service(parsed: dict, name: str) -> dict:
    return {
        labels["service"]: value
        for _, labels, value in parsed[name]["samples"]
    }


class TestScrapeDuringOutage:
    def test_scrape_of_killed_worker_is_degraded_and_synchronous(
        self, tmp_path
    ):
        async def body():
            async with Cluster(services=2, dir=tmp_path, batch_size=32,
                               max_latency=0.001) as cluster:
                streams = {}
                for i in range(4):
                    tenant = f"tenant-{i}"
                    await cluster.create_tenant(tenant, tenant_spec(i))
                    streams[tenant] = tenant_stream(i, 300)
                await settle(cluster, streams)

                victim = cluster.registry.get("tenant-0").service
                await cluster._workers[victim].abort()  # hard kill
                cluster.mark_service_down(victim, "crashed")

                # The collector never awaits, so a scrape mid-outage is
                # an ordinary synchronous call — it cannot hang on the
                # dead worker.
                loop = asyncio.get_running_loop()
                start = loop.time()
                text = cluster_registry(cluster).render()
                assert loop.time() - start < 5.0
                parsed = parse_exposition(text)

                assert parsed["repro_cluster_workers_down"]["samples"] \
                    == [("", {}, 1.0)]
                up = _gauge_by_service(parsed, "repro_cluster_service_up")
                assert up[victim] == 0.0

                # Tenants on the victim still serve sampler gauges —
                # from the durable snapshot, labeled degraded.
                degraded_tenants = {
                    labels["tenant"]
                    for _, labels, _ in
                    parsed["repro_sampler_fill"]["samples"]
                    if labels["degraded"] == "true"
                }
                victims = {
                    tenant for tenant in streams
                    if cluster.registry.get(tenant).service == victim
                }
                assert victims and degraded_tenants == victims
        run_async(body())


class TestWorkerDownAlert:
    def test_fires_within_a_cadence_and_resolves_after_restore(
        self, tmp_path
    ):
        async def body():
            engine = AlertEngine()
            async with Cluster(services=2, dir=tmp_path, batch_size=32,
                               max_latency=0.001) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                keys = tenant_stream(0, 300)
                async with Supervisor(cluster, alerts=engine,
                                      **FAST_SUPERVISION):
                    await settle(cluster, {"acme": keys})
                    await wait_for(lambda: engine.evaluations > 0)
                    assert engine.firing() == {}

                    victim = cluster.registry.get("acme").service
                    cluster.mark_service_down(victim, "maintenance")
                    # Alert latency is bounded by one supervisor cadence
                    # (interval 0.02s here); 2s of slack is two orders
                    # of magnitude, not a tuned race.
                    await wait_for(
                        lambda: "worker-down" in engine.firing(),
                        deadline=2.0,
                    )
                    fired = engine.firing()["worker-down"]
                    assert fired["severity"] == "critical"
                    assert fired["value"] == 1.0

                    await cluster.restart_service(victim)
                    await wait_for(
                        lambda: "worker-down" not in engine.firing(),
                        deadline=2.0,
                    )
                    kinds = [(e.rule, e.kind) for e in engine.events
                             if e.rule == "worker-down"]
                    assert kinds == [("worker-down", "firing"),
                                     ("worker-down", "resolved")]

                    # The repaired stream still settles to full length.
                    await settle(cluster, {"acme": keys})
                    assert sig_of(await cluster.sample("acme")) == \
                        control_signature(0, keys)
        run_async(body())


class TestPostRecoveryExposition:
    def test_kill_failover_scrape_has_no_phantom_gauges(self, tmp_path):
        async def body():
            engine = AlertEngine()
            chaos = ChaosInjector(Fault("*:wal.append.mid", at=4))
            async with Cluster(services=2, dir=tmp_path, fault_hook=chaos,
                               batch_size=32,
                               max_latency=0.001) as cluster:
                await cluster.create_tenant("acme", tenant_spec(3))
                keys = tenant_stream(3, 600)
                async with Supervisor(cluster, alerts=engine,
                                      **FAST_SUPERVISION):
                    await settle(cluster, {"acme": keys})
                    assert chaos.count("*:wal.append.mid") == 1, (
                        "the injected WAL fault never fired"
                    )
                    # Zero loss past the durable frontier: bit-exact
                    # against a fault-free control.
                    assert sig_of(await cluster.sample("acme")) == \
                        control_signature(3, keys)

                    text = cluster_registry(cluster).render()
                    parsed = parse_exposition(text)

                    # Fully recovered: nothing down, everything up.
                    assert parsed["repro_cluster_workers_down"]["samples"] \
                        == [("", {}, 0.0)]
                    up = _gauge_by_service(
                        parsed, "repro_cluster_service_up"
                    )
                    assert set(up.values()) == {1.0}

                    # The failover is visible as a restart delta...
                    restarts = _gauge_by_service(
                        parsed, "repro_service_restarts_total"
                    )
                    assert sum(restarts.values()) >= 1.0

                    # ...but leaves no phantom volatile gauges from the
                    # dead incarnation: the settled cluster's queues are
                    # empty and every sampler row is live again.
                    depth = _gauge_by_service(
                        parsed, "repro_service_queue_depth"
                    )
                    assert set(depth.values()) == {0.0}
                    degraded = {
                        labels["degraded"]
                        for _, labels, _ in
                        parsed["repro_sampler_fill"]["samples"]
                    }
                    assert degraded == {"false"}

                    # The repaired outage never lingered into a firing
                    # alert — by the end of the run the board is green.
                    assert engine.evaluations > 0
                    assert engine.firing() == {}
        run_async(body())
