"""Wire-level chaos: the hardened frontend and retry client under
worker failover.

The worker battery (:mod:`tests.chaos.test_worker_chaos`) proves the
cluster heals; this one proves a *remote caller* never notices: the
retry client rides out the degraded window on retryable ``Unavailable``
replies, frontier-guided resend closes the at-least-once loop over the
wire, and the idempotency table turns a retry-after-lost-reply into a
dedupe hit instead of a double count.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import struct

import pytest

from repro.serve.cluster import (
    Cluster,
    ClusterClient,
    ClusterFrontend,
    FrameError,
    RetryPolicy,
    Supervisor,
)
from tests.chaos.common import (
    FAST_SUPERVISION,
    control_signature,
    run_async,
    sig_of,
    tenant_spec,
    tenant_stream,
    wait_for,
)

#: Generous budget: one failover window (detect + restart) must fit
#: inside a single call's retry schedule.
FAST_RETRY = RetryPolicy(max_attempts=10, base_delay=0.02, max_delay=0.1,
                         jitter=0.0, request_timeout=5.0)


@contextlib.asynccontextmanager
async def served(tmp_path, n_services=2, n_tenants=1, stream_len=400):
    """A durable, fast-batching cluster behind a frontend, pre-loaded
    with ``n_tenants`` tenants, plus their control streams."""
    async with Cluster(services=n_services, dir=tmp_path, batch_size=32,
                       max_latency=0.001) as cluster:
        streams = {}
        for i in range(n_tenants):
            tenant = f"tenant-{i}"
            await cluster.create_tenant(tenant, tenant_spec(i))
            streams[tenant] = tenant_stream(i, stream_len)
        async with ClusterFrontend(cluster) as frontend:
            yield cluster, frontend, streams


async def wire_reliable_stream(client, tenant, keys, chunk=40,
                               deadline=15.0):
    """Drive ``keys`` to *durable* completion over the wire.

    The tenant's admission frontier (from ``admin metrics``) is the
    source of truth: every iteration resumes from it, and every send is
    conditional on it (``expect_frontier``), so events a failover
    rolled back are re-sent and a retried batch can never land at the
    wrong position.  Termination is settle-like — admission into a
    dead-but-undetected worker succeeds and is then lost, so "all
    admitted" means nothing; only "all durably applied with no worker
    down" does.  Returns how many calls failed (shed past the retry
    budget, stale frontier, dead connection) before settling.
    """
    loop = asyncio.get_running_loop()
    end = loop.time() + deadline
    n = len(keys)
    failures = 0
    while True:
        metrics = (await client.admin("metrics"))["metrics"]
        row = metrics["tenants"][tenant]
        frontier = row["events_enqueued"]
        if (frontier >= n and row["events_applied"] >= n
                and not metrics["services_down"]):
            return failures
        if loop.time() > end:
            raise AssertionError(f"{tenant} never settled over the wire")
        if frontier >= n:
            # Everything admitted, not everything durable: flush and
            # re-check.  A crash surfacing here marks the worker down,
            # rolls the frontier back, and the branch below re-sends.
            try:
                await client.admin("flush")
            except (RuntimeError, FrameError):
                failures += 1
            await asyncio.sleep(0.02)
            continue
        batch = [int(k) for k in keys[frontier:frontier + chunk]]
        try:
            await client.ingest_many(tenant, batch, block=True,
                                     expect_frontier=frontier)
        except (RuntimeError, FrameError):
            # StaleFrontier (a failover moved the frontier under a
            # retry), retry budget exhausted mid-outage, or a dead
            # connection: resync from the frontier and keep going.
            failures += 1
            await asyncio.sleep(0.02)


def _frame(payload: dict) -> bytes:
    body = json.dumps(payload).encode()
    return struct.pack(">I", len(body)) + body


class TestFailoverOverTheWire:
    def test_retry_client_rides_out_worker_kill(self, tmp_path):
        async def body():
            async with served(tmp_path, n_tenants=2, stream_len=800) as (
                    cluster, frontend, streams):
                host, port = frontend.address
                client = await ClusterClient.connect(
                    host, port, retry=FAST_RETRY)
                async with Supervisor(cluster, **FAST_SUPERVISION) as sup:
                    pumps = [
                        asyncio.ensure_future(
                            wire_reliable_stream(client2, tenant, keys)
                        )
                        for (tenant, keys), client2 in zip(
                            streams.items(),
                            [await ClusterClient.connect(
                                host, port, retry=FAST_RETRY)
                             for _ in streams],
                        )
                    ]
                    # Kill the holder of tenant-0 while the wire
                    # producers are mid-stream.
                    await wait_for(lambda: cluster.registry.get(
                        "tenant-0").events_enqueued > 0)
                    victim = cluster.registry.get("tenant-0").service
                    cluster._workers[victim]._task.cancel()
                    await wait_for(lambda: any(
                        e.restored_at is not None for e in sup.events
                    ))
                    await asyncio.gather(*pumps)
                    await client.admin("flush")
                    # No caller ever saw ServiceCrashed (gather would
                    # have raised), and the state is bit-exact.
                    for i, (tenant, keys) in enumerate(streams.items()):
                        assert sig_of(await cluster.sample(tenant)) == \
                            control_signature(i, keys), tenant
                await client.aclose()

        run_async(body())

    def test_degraded_window_is_visible_but_retryable(self, tmp_path):
        async def body():
            async with served(tmp_path, n_tenants=1) as (
                    cluster, frontend, streams):
                host, port = frontend.address
                client = await ClusterClient.connect(
                    host, port, retry=FAST_RETRY)
                keys = streams["tenant-0"]
                await wire_reliable_stream(client, "tenant-0", keys)
                await client.admin("flush")
                durable = await client.query("tenant-0", "sum")
                holder = cluster.registry.get("tenant-0").service
                cluster.mark_service_down(holder, "chaos")
                # Reads over the wire carry the degraded flag and the
                # pinned snapshot.
                pinned = await client.query("tenant-0", "sum")
                assert pinned["degraded"] is True
                assert pinned["estimate"] == durable["estimate"]
                assert pinned["state_version"] == durable["state_version"]
                # A blocking ingest during the outage sheds with a
                # retryable Unavailable reply; the client's budget is
                # exhausted (nobody restores) and the last error
                # surfaces as the server's Unavailable.
                with pytest.raises(RuntimeError, match="Unavailable"):
                    await client.ingest_many(
                        "tenant-0", [1, 2, 3], block=True)
                await cluster.restart_service(holder, reason="chaos")
                fresh = await client.query("tenant-0", "sum")
                assert "degraded" not in fresh
                assert sig_of(await cluster.sample("tenant-0")) == \
                    control_signature(0, keys)
                await client.aclose()

        run_async(body())


class TestIdempotentRetryAfterLostReply:
    def test_abandoned_request_is_not_double_counted(self, tmp_path):
        async def body():
            async with served(tmp_path) as (cluster, frontend, streams):
                host, port = frontend.address
                keys = [int(k) for k in streams["tenant-0"][:50]]
                request = {
                    "verb": "ingest_many", "tenant": "tenant-0",
                    "keys": keys, "block": True,
                    "request_id": "lost-reply-1",
                }
                # Send the request and slam the connection shut without
                # reading the reply — the client-visible outcome of a
                # reply lost in flight.
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(_frame(request))
                await writer.drain()
                await wait_for(lambda: cluster.registry.get(
                    "tenant-0").events_enqueued == 50)
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
                # The retry: same request_id on a fresh connection.
                client = await ClusterClient.connect(host, port)
                reply = await client.ingest_many(
                    "tenant-0", keys, block=True,
                    request_id="lost-reply-1")
                assert reply["deduped"] is True
                assert reply["admitted"] is True
                assert frontend.metrics.replies_deduped == 1
                # Exactly one admission: no double count.
                assert cluster.registry.get(
                    "tenant-0").events_enqueued == 50
                await cluster.flush()
                assert sig_of(await cluster.sample("tenant-0")) == \
                    control_signature(0, streams["tenant-0"][:50])
                await client.aclose()

        run_async(body())


@pytest.mark.soak
class TestWireSoak:
    def test_failover_cycles_over_the_wire_stay_bit_exact(self, tmp_path):
        async def body():
            async with served(tmp_path, n_services=3, n_tenants=4,
                              stream_len=2000) as (
                    cluster, frontend, streams):
                host, port = frontend.address
                clients = [
                    await ClusterClient.connect(host, port,
                                                retry=FAST_RETRY)
                    for _ in streams
                ]
                async with Supervisor(cluster, **FAST_SUPERVISION) as sup:

                    def restored_count():
                        return sum(1 for e in sup.events
                                   if e.restored_at is not None)

                    pumps = [
                        asyncio.ensure_future(
                            wire_reliable_stream(c, tenant, keys,
                                                 chunk=60)
                        )
                        for c, (tenant, keys) in zip(clients,
                                                     streams.items())
                    ]
                    for cycle in range(3):
                        await asyncio.sleep(0.05)
                        if all(p.done() for p in pumps):
                            break
                        holder = cluster.registry.get(
                            f"tenant-{cycle % 4}").service
                        worker = cluster._workers[holder]
                        if not worker.consumer_alive:
                            continue
                        worker._task.cancel()
                        target = restored_count() + 1
                        await wait_for(
                            lambda: restored_count() >= target)
                    await asyncio.gather(*pumps)
                    await clients[0].admin("flush")
                    for i, (tenant, keys) in enumerate(streams.items()):
                        assert sig_of(await cluster.sample(tenant)) == \
                            control_signature(i, keys), tenant
                for client in clients:
                    await client.aclose()

        run_async(body())
