"""Worker-level chaos: kills, wedges, and WAL faults under supervision.

Every test injects a real infrastructure fault mid-stream and then
demands the strongest possible outcome: the supervisor restores service
*without operator intervention*, nothing durable is lost, and — with the
at-least-once producer re-sending past the durable frontier — the final
state is **bit-identical** to a fault-free control fed the same stream.
A test also asserts its fault actually fired: a chaos test whose fault
never bit proves nothing.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.chaos import ChaosError, ChaosInjector, Fault
from repro.serve.cluster import Cluster, Supervisor
from repro.serve.service import _cancel_requests
from tests.chaos.common import (
    FAST_SUPERVISION,
    control_signature,
    reliable_stream,
    run_async,
    settle,
    sig_of,
    tenant_spec,
    tenant_stream,
    wait_for,
)


class TestWalFaults:
    def test_wal_write_fault_autorestores_bit_exact(self, tmp_path):
        async def body():
            chaos = ChaosInjector(Fault("*:wal.append.mid", at=4))
            async with Cluster(services=2, dir=tmp_path, fault_hook=chaos,
                               batch_size=32,
                               max_latency=0.001) as cluster:
                await cluster.create_tenant("acme", tenant_spec(0))
                keys = tenant_stream(0, 600)
                async with Supervisor(cluster, **FAST_SUPERVISION) as sup:
                    await settle(cluster, {"acme": keys})
                    assert chaos.count("*:wal.append.mid") == 1, (
                        "the injected WAL fault never fired"
                    )
                    assert any(e.restored_at is not None
                               for e in sup.events)
                    assert sig_of(await cluster.sample("acme")) == \
                        control_signature(0, keys)
                    restarted = [
                        m for m in cluster.metrics().services.values()
                        if m.restarts > 0
                    ]
                    assert restarted, "no worker recorded a restart"

        run_async(body())

    def test_repeated_wal_faults_across_restarts(self, tmp_path):
        async def body():
            # The fault re-bites the *recovered* worker too: two
            # separate appends fail, two separate failovers restore.
            chaos = ChaosInjector(
                Fault("*:wal.append.mid", at=3),
                Fault("*:wal.append.mid", at=9),
            )
            async with Cluster(services=2, dir=tmp_path, fault_hook=chaos,
                               batch_size=32,
                               max_latency=0.001) as cluster:
                await cluster.create_tenant("acme", tenant_spec(1))
                keys = tenant_stream(1, 800)
                async with Supervisor(cluster, **FAST_SUPERVISION) as sup:
                    await settle(cluster, {"acme": keys}, chunk=30)
                    assert chaos.count("*:wal.append.mid") == 2
                    restored = [e for e in sup.events
                                if e.restored_at is not None]
                    assert len(restored) >= 2
                    assert sig_of(await cluster.sample("acme")) == \
                        control_signature(1, keys)

        run_async(body())


class TestConsumerStall:
    def test_wedged_consumer_is_detected_and_restarted(self, tmp_path):
        async def body():
            # The consumer wedges for 60s mid-flush — far longer than
            # the stall timeout.  Detection must come from the liveness
            # probe (stale heartbeat + backlog), not from a crash.
            chaos = ChaosInjector(
                Fault("*:flush.before", action="stall", delay=60.0, at=3)
            )
            async with Cluster(services=2, dir=tmp_path, fault_hook=chaos,
                               batch_size=32,
                               max_latency=0.001) as cluster:
                await cluster.create_tenant("acme", tenant_spec(2))
                keys = tenant_stream(2, 500)
                async with Supervisor(cluster, **FAST_SUPERVISION) as sup:
                    await settle(cluster, {"acme": keys})
                    assert chaos.count("*:flush.before") == 1
                    assert any(e.reason == "stalled" for e in sup.events)
                    assert sig_of(await cluster.sample("acme")) == \
                        control_signature(2, keys)

        run_async(body())


class TestKillAndRehome:
    def test_killed_worker_rehomes_tenants_bit_exact(self, tmp_path):
        async def body():
            async with Cluster(services=3, dir=tmp_path, batch_size=32,
                               max_latency=0.001) as cluster:
                streams = {}
                for i in range(6):
                    tenant = f"tenant-{i}"
                    await cluster.create_tenant(tenant, tenant_spec(i))
                    streams[tenant] = tenant_stream(i, 400)
                async with Supervisor(cluster, policy="rehome",
                                      **FAST_SUPERVISION) as sup:
                    pumps = [
                        asyncio.ensure_future(
                            reliable_stream(cluster, tenant, keys)
                        )
                        for tenant, keys in streams.items()
                    ]
                    # Let the pumps make some progress, then kill one
                    # worker's consumer outright.
                    await asyncio.sleep(0.1)
                    victim = cluster.registry.get("tenant-0").service
                    cluster._workers[victim]._task.cancel()
                    # Detection is asynchronous — the probe loop needs
                    # ``max_missed`` ticks before it trips and evacuates.
                    await wait_for(lambda: victim not in cluster.services)
                    await asyncio.gather(*pumps)
                    await settle(cluster, streams)
                    assert victim not in cluster.services
                    event = next(e for e in sup.events
                                 if e.restored_at is not None)
                    assert event.action == "rehome" and event.moved
                    for i in range(6):
                        tenant = f"tenant-{i}"
                        assert sig_of(await cluster.sample(tenant)) == \
                            control_signature(i, streams[tenant]), tenant

        run_async(body())

    def test_killed_worker_restarts_under_concurrent_load(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path, batch_size=32,
                               max_latency=0.001) as cluster:
                streams = {}
                for i in range(4):
                    tenant = f"tenant-{i}"
                    await cluster.create_tenant(tenant, tenant_spec(i))
                    streams[tenant] = tenant_stream(i, 400)
                async with Supervisor(cluster, **FAST_SUPERVISION) as sup:
                    pumps = [
                        asyncio.ensure_future(
                            reliable_stream(cluster, tenant, keys)
                        )
                        for tenant, keys in streams.items()
                    ]
                    await asyncio.sleep(0.08)
                    victim = cluster.registry.get("tenant-0").service
                    cluster._workers[victim]._task.cancel()
                    await wait_for(lambda: any(e.restored_at is not None
                                               for e in sup.events))
                    await asyncio.gather(*pumps)
                    await settle(cluster, streams)
                    assert any(e.restored_at is not None
                               for e in sup.events)
                    for i in range(4):
                        tenant = f"tenant-{i}"
                        assert sig_of(await cluster.sample(tenant)) == \
                            control_signature(i, streams[tenant]), tenant

        run_async(body())


class TestDegradedWindow:
    def test_outage_window_pins_reads_and_counts_sheds(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path, batch_size=32,
                               max_latency=0.001) as cluster:
                await cluster.create_tenant("acme", tenant_spec(3))
                keys = tenant_stream(3, 300)
                await cluster.ingest_many("acme", keys)
                await cluster.flush()
                durable = await cluster.query("acme", "sum")
                holder = cluster.registry.get("acme").service
                cluster.mark_service_down(holder, "chaos")
                # Reads stay pinned to the durable snapshot for the
                # whole outage; every shed ingest is counted, none is
                # silently dropped into the void as admitted.
                frontier = cluster.registry.get("acme").events_enqueued
                for step in range(3):
                    result = await cluster.query("acme", "sum")
                    assert result.degraded
                    assert result.estimate == durable.estimate
                    assert result.state_version == durable.state_version
                    admitted = await cluster.ingest_many(
                        "acme", tenant_stream(3, 20)
                    )
                    assert admitted is False
                record = cluster.registry.get("acme")
                assert record.events_enqueued == frontier
                assert record.rejected["unavailable"] == 60
                outage = cluster.down_services()[holder]
                assert outage["shed_events"] == 60
                assert outage["degraded_reads"] == 3
                # Recovery: back to live serving, state bit-exact.
                await cluster.restart_service(holder, reason="chaos")
                fresh = await cluster.query("acme", "sum")
                assert not fresh.degraded
                assert sig_of(await cluster.sample("acme")) == \
                    control_signature(3, keys)

        run_async(body())


@pytest.mark.soak
class TestChaosSoak:
    def test_kill_restore_cycles_stay_bit_exact(self, tmp_path):
        async def body():
            async with Cluster(services=2, dir=tmp_path, batch_size=32,
                               max_latency=0.001) as cluster:
                await cluster.create_tenant("acme", tenant_spec(7))
                keys = tenant_stream(7, 4000)
                async with Supervisor(cluster, **FAST_SUPERVISION) as sup:

                    def restored_count():
                        return sum(1 for e in sup.events
                                   if e.restored_at is not None)

                    # Deterministic kill/restore cycles: admit one
                    # segment, kill the holder (losing whatever of the
                    # segment was admitted but not yet durable), wait
                    # for the supervisor to restore, repeat.  The
                    # producer's frontier-rewind re-sends the lost
                    # tail on the next cycle.
                    seg = len(keys) // 5
                    for cycle in range(5):
                        upto = keys[:(cycle + 1) * seg]
                        await reliable_stream(cluster, "acme", upto,
                                              chunk=80, pause=0.01)
                        holder = cluster.registry.get("acme").service
                        worker = cluster._workers[holder]
                        if worker.consumer_alive:
                            worker._task.cancel()
                            target = restored_count() + 1
                            await wait_for(
                                lambda: restored_count() >= target
                            )
                    await settle(cluster, {"acme": keys}, chunk=80)
                    # The last kill may still be *in delivery* (cancel
                    # is scheduled, the task dies a tick later): wait
                    # until every worker is alive with no pending
                    # cancel, i.e. the supervisor restored the fleet.
                    await wait_for(lambda: all(
                        w.consumer_alive and _cancel_requests(w._task) == 0
                        for w in cluster._workers.values()
                    ))
                    assert sig_of(await cluster.sample("acme")) == \
                        control_signature(7, keys)
                    restored = [e for e in sup.events
                                if e.restored_at is not None]
                    assert restored, "no failover ever completed"

        run_async(body())

    def test_sustained_wal_faults_many_tenants(self, tmp_path):
        async def body():
            chaos = ChaosInjector(
                *(Fault("*:wal.append.mid", at=at) for at in (5, 15, 25))
            )
            async with Cluster(services=3, dir=tmp_path, fault_hook=chaos,
                               batch_size=32,
                               max_latency=0.001) as cluster:
                streams = {}
                for i in range(9):
                    tenant = f"tenant-{i}"
                    await cluster.create_tenant(tenant, tenant_spec(i))
                    streams[tenant] = tenant_stream(i, 1500)
                async with Supervisor(cluster, **FAST_SUPERVISION):
                    pumps = [
                        asyncio.ensure_future(
                            reliable_stream(cluster, tenant, keys,
                                            chunk=60, pause=0.01)
                        )
                        for tenant, keys in streams.items()
                    ]
                    await asyncio.gather(*pumps)
                    await settle(cluster, streams, chunk=60,
                                 deadline=60.0)
                    assert chaos.count("*:wal.append.mid") == 3
                    for i in range(9):
                        tenant = f"tenant-{i}"
                        assert sig_of(await cluster.sample(tenant)) == \
                            control_signature(i, streams[tenant]), tenant

        run_async(body())
