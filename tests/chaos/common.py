"""Shared machinery for the chaos battery.

The central piece is :func:`reliable_stream` — the at-least-once
producer protocol the serving stack's failure contract assumes: a
producer tracks the tenant's admission frontier and re-sends everything
past it after a failover (events admitted but never durably logged are
the producer's to re-send, exactly as on a single service).  Chaos tests
drive a cluster through injected faults with this producer and then
assert the surviving state is *bit-exact* against a fault-free control
fed the same stream.
"""

from __future__ import annotations

import asyncio

from repro.serve.cluster import StaleFrontier
from tests.cluster.common import (  # noqa: F401
    control_signature,
    run_async,
    sig_of,
    tenant_spec,
    tenant_stream,
)

#: Supervisor settings tuned for test-speed failure detection.
FAST_SUPERVISION = dict(interval=0.02, stall_timeout=0.2, max_missed=2)


async def wait_for(predicate, deadline: float = 15.0):
    """Poll ``predicate`` until true (failover is asynchronous)."""
    loop = asyncio.get_running_loop()
    end = loop.time() + deadline
    while not predicate():
        if loop.time() > end:
            raise AssertionError("condition not reached before deadline")
        await asyncio.sleep(0.01)


async def reliable_stream(cluster, tenant: str, keys, chunk: int = 40,
                          pause: float = 0.02) -> int:
    """Feed ``keys`` with at-least-once delivery across failovers.

    Sends in order, chunk by chunk.  A shed chunk (worker down) is
    retried after ``pause``.  After a failover resets the tenant's
    admission frontier to its durable count, the producer rewinds and
    re-sends from there — so the admitted stream is always exactly
    ``keys[:frontier]``.  Returns the number of send attempts that were
    shed (for asserting the fault actually bit).
    """
    sheds = 0
    n = len(keys)
    while True:
        frontier = cluster.registry.get(tenant).events_enqueued
        if frontier >= n:
            return sheds
        batch = keys[frontier:frontier + chunk]
        try:
            admitted = await cluster.ingest_many(
                tenant, batch, expect_frontier=frontier)
        except StaleFrontier:
            continue  # a failover moved the frontier mid-send; resync
        if not admitted:
            sheds += 1
            await asyncio.sleep(pause)


async def settle(cluster, tenants_keys: dict, deadline: float = 15.0,
                 chunk: int = 40) -> None:
    """Drive every tenant's stream to *durably applied* completion.

    A fault can bite after the last admission (nothing sheds, nothing
    re-sends) — so completion is not "all sent" but "all applied":
    flush, re-send anything a failover rolled back, and repeat until
    every tenant's applied frontier equals its stream length with no
    worker down.
    """
    loop = asyncio.get_running_loop()
    end = loop.time() + deadline
    while True:
        for tenant, keys in tenants_keys.items():
            await reliable_stream(cluster, tenant, keys, chunk=chunk)
        await cluster.flush()
        if not cluster.down_services():
            table = cluster.metrics().tenants
            if all(
                table[tenant]["events_applied"] == len(keys)
                and cluster.registry.get(tenant).events_enqueued
                == len(keys)
                for tenant, keys in tenants_keys.items()
            ):
                return
        if loop.time() > end:
            raise AssertionError("streams never settled before deadline")
        await asyncio.sleep(0.02)
