"""Property-based merge-algebra tests (Hypothesis).

The chunking-invariance contract in ``test_contract.py`` pins fixed chunk
splits; here Hypothesis searches the space of key sets, weights, split
points, and shard counts for violations of the algebra the engine's merge
tree relies on:

* ``|`` is commutative and associative on disjoint streams for every
  mergeable sampler (bit-exact sample signatures);
* the coordinated sketches are also commutative under *overlapping*
  streams (duplicate keys hash identically, so unions are idempotent);
* shard-then-merge reproduces the single-instance sketch exactly for the
  hash-coordinated classes, and retains at least the single-instance keys
  for the §3.5 per-entry-threshold merge (``adaptive_distinct``);
* the engine's batch partition is invariant under arbitrary chunk splits.

Weights are derived per key from a salted hash so that any two stream
fragments agree on every key's weight (the distinct-sketch contract).
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro import ShardedSampler, make_sampler, merged  # noqa: E402
from repro.core.hashing import batch_shard_indices, hash_array_to_unit  # noqa: E402
from tests.helpers import sample_signature  # noqa: E402

#: (name, params) for every mergeable sampler class; rng-based variants get
#: per-part seeds in the tests (disjoint streams, independent samplers).
DISJOINT_CONFIGS = [
    ("bottom_k", {"k": 16}),
    ("bottom_k", {"k": 16, "coordinated": True, "salt": 3}),
    ("poisson", {"threshold": 0.35}),
    ("weighted_distinct", {"k": 16, "salt": 3}),
    ("adaptive_distinct", {"k": 16, "salt": 3}),
    ("kmv", {"k": 16, "salt": 3}),
    ("theta", {"k": 16, "salt": 3}),
]

#: Idempotent, key-coordinated sketches: merging *overlapping* streams is
#: well-defined, so commutativity must hold without disjointness.
OVERLAP_CONFIGS = [c for c in DISJOINT_CONFIGS if c[0] not in ("bottom_k", "poisson")]

#: Sketches for which shard-then-merge is bit-exact vs a single instance.
EXACT_SHARD_CONFIGS = [
    ("bottom_k", {"k": 16, "coordinated": True, "salt": 3}),
    ("weighted_distinct", {"k": 16, "salt": 3}),
    ("kmv", {"k": 16, "salt": 3}),
    ("theta", {"k": 16, "salt": 3}),
]

def _ids(configs):
    return [
        f"{name}{'-coord' if params.get('coordinated') else ''}"
        for name, params in configs
    ]


def _weights_for(keys: np.ndarray) -> np.ndarray:
    """Deterministic per-key weights in [0.1, 2.1) (hash-derived)."""
    if keys.size == 0:
        return np.zeros(0)
    return 0.1 + 2.0 * hash_array_to_unit(keys, salt=97)


def _build(name, params, part):
    params = dict(params)
    if name in ("bottom_k", "poisson") and not params.get("coordinated"):
        params["rng"] = 1000 + part  # independent streams per part
    return make_sampler(name, **params)


def _feed(sampler, keys: np.ndarray) -> None:
    sampler.update_many(keys, _weights_for(keys))


keys_strategy = st.lists(
    st.integers(min_value=0, max_value=4096), min_size=0, max_size=120
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("name,params", DISJOINT_CONFIGS, ids=_ids(DISJOINT_CONFIGS))
@SETTINGS
@given(keys=keys_strategy, cut=st.integers(0, 120), data=st.data())
def test_merge_is_commutative_and_associative_on_disjoint_streams(
    name, params, keys, cut, data
):
    unique = np.unique(np.asarray(keys, dtype=np.int64))
    cut_a = min(cut, unique.size)
    cut_b = data.draw(st.integers(cut_a, unique.size), label="second cut")
    parts = [unique[:cut_a], unique[cut_a:cut_b], unique[cut_b:]]
    a, b, c = (
        _build(name, params, i) for i in range(3)
    )
    for sampler, part in zip((a, b, c), parts):
        _feed(sampler, part)
    assert sample_signature(merged(a, b)) == sample_signature(merged(b, a))
    left = merged(merged(a, b), c)
    right = merged(a, merged(b, c))
    assert sample_signature(left) == sample_signature(right)


@pytest.mark.parametrize("name,params", OVERLAP_CONFIGS, ids=_ids(OVERLAP_CONFIGS))
@SETTINGS
@given(
    keys_a=keys_strategy,
    keys_b=keys_strategy,
)
def test_coordinated_merges_are_commutative_under_overlap(
    name, params, keys_a, keys_b
):
    """Duplicate keys across inputs are idempotent for the coordinated
    sketches, so the union is order-independent even without disjointness."""
    a = _build(name, params, 0)
    b = _build(name, params, 1)
    _feed(a, np.asarray(keys_a, dtype=np.int64))
    _feed(b, np.asarray(keys_b, dtype=np.int64))
    assert sample_signature(merged(a, b)) == sample_signature(merged(b, a))


@pytest.mark.parametrize("name,params", EXACT_SHARD_CONFIGS, ids=_ids(EXACT_SHARD_CONFIGS))
@SETTINGS
@given(keys=keys_strategy, n_shards=st.integers(1, 6))
def test_shard_then_merge_equals_single_instance(name, params, keys, n_shards):
    """The engine's partition/merge-tree round trip is invisible for the
    hash-coordinated sketches: identical keys, priorities, thresholds."""
    keys = np.asarray(keys, dtype=np.int64)
    single = make_sampler(name, **params)
    engine = ShardedSampler(
        {"name": name, "params": params}, n_shards=n_shards
    )
    _feed(single, keys)
    _feed(engine, keys)
    assert sample_signature(engine) == sample_signature(single)


@SETTINGS
@given(keys=keys_strategy, n_shards=st.integers(1, 6))
def test_adaptive_distinct_shard_merge_retains_single_instance_keys(
    keys, n_shards
):
    """§3.5 merges keep every retained hash usable: the sharded sketch's
    key set must cover whatever a single instance would have kept."""
    keys = np.asarray(keys, dtype=np.int64)
    single = make_sampler("adaptive_distinct", k=16, salt=3)
    engine = ShardedSampler(
        {"name": "adaptive_distinct", "params": {"k": 16, "salt": 3}},
        n_shards=n_shards,
    )
    single.update_many(keys)
    engine.update_many(keys)
    single_keys = {repr(k) for k in single.sample().keys}
    engine_keys = {repr(k) for k in engine.sample().keys}
    assert single_keys <= engine_keys


@SETTINGS
@given(
    keys=st.lists(st.integers(0, 4096), min_size=1, max_size=200),
    chunks=st.lists(st.integers(1, 50), min_size=1, max_size=8),
)
def test_sharded_ingestion_is_chunk_split_invariant(keys, chunks):
    """Partition + per-shard deferral must not depend on batch boundaries
    (extends the fixed-chunk contract test to arbitrary splits)."""
    keys = np.asarray(keys, dtype=np.int64)
    weights = _weights_for(keys)
    spec = {"name": "bottom_k", "params": {"k": 16}}
    whole = ShardedSampler(spec, n_shards=3, seed=7)
    whole.update_many(keys, weights)
    split = ShardedSampler(spec, n_shards=3, seed=7)
    start = 0
    for size in chunks:
        if start >= keys.size:
            break
        split.update_many(keys[start:start + size], weights[start:start + size])
        start += size
    split.update_many(keys[start:], weights[start:])
    assert sample_signature(split) == sample_signature(whole)


@SETTINGS
@given(
    keys=st.lists(st.integers(-(2**62), 2**62), min_size=0, max_size=300),
    n_shards=st.integers(1, 32),
    salt=st.integers(0, 2**32),
    cut=st.integers(0, 300),
)
def test_partition_kernel_is_stable_and_split_invariant(
    keys, n_shards, salt, cut
):
    """Batch partition equals scalar partition and is split-invariant."""
    keys = np.asarray(keys, dtype=np.int64)
    whole = batch_shard_indices(keys, n_shards, salt)
    assert ((0 <= whole) & (whole < n_shards)).all()
    cut = min(cut, keys.size)
    parts = np.concatenate([
        batch_shard_indices(keys[:cut], n_shards, salt),
        batch_shard_indices(keys[cut:], n_shards, salt),
    ]) if keys.size else whole
    assert np.array_equal(whole, parts)
