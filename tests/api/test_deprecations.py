"""Old public entry points keep working, each behind a DeprecationWarning."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AdaptiveDistinctSketch,
    BottomKSampler,
    ExponentialDecaySampler,
    FrequentItemsSketch,
    GroupedDistinctSketch,
    MultiObjectiveSampler,
    MultiStratifiedSampler,
    SlidingWindowSampler,
    SpaceSavingSketch,
)


class TestExtendShim:
    def test_extend_is_update_many(self):
        a = BottomKSampler(8, rng=0)
        b = BottomKSampler(8, rng=0)
        with pytest.deprecated_call():
            a.extend(range(50), np.ones(50))
        b.update_many(range(50), np.ones(50))
        assert sorted(a.sample().keys) == sorted(b.sample().keys)

    def test_extend_warns_on_sketches(self):
        s = AdaptiveDistinctSketch(8)
        with pytest.deprecated_call():
            s.extend(range(20))
        assert 0 < len(s) <= 9  # bottom-(k+1) retained


class TestMergeShims:
    def test_merge_in_place_alias_warns(self):
        a = AdaptiveDistinctSketch(8, salt=0)
        a.update_many(range(50))
        b = AdaptiveDistinctSketch(8, salt=0)
        b.update_many(range(25, 75))
        expected = (a | b).estimate_distinct()
        with pytest.deprecated_call():
            a.merge_in_place(b)
        assert a.estimate_distinct() == pytest.approx(expected)


class TestLegacyUpdateSignatures:
    def test_sliding_window_time_first(self):
        legacy = SlidingWindowSampler(k=8, window=1.0, rng=0)
        modern = SlidingWindowSampler(k=8, window=1.0, rng=0)
        for i in range(50):
            modern.update(i, time=i * 0.01)
        with pytest.deprecated_call():
            for i in range(50):
                legacy.update(i * 0.01, key=i)
        assert sorted(legacy.sample().keys) == sorted(modern.sample().keys)

    def test_time_decay_time_first(self):
        legacy = ExponentialDecaySampler(8, 0.1, rng=0)
        modern = ExponentialDecaySampler(8, 0.1, rng=0)
        for i in range(50):
            modern.update(i, weight=2.0, time=float(i))
        with pytest.deprecated_call():
            for i in range(50):
                legacy.update(float(i), i, 2.0)
        assert sorted(legacy.keys()) == sorted(modern.keys())

    @pytest.mark.parametrize("build", [
        lambda: ExponentialDecaySampler(8, 0.1, rng=0),
        lambda: SlidingWindowSampler(k=8, window=1.0, rng=0),
    ], ids=["time_decay", "sliding_window"])
    def test_missing_time_is_a_clear_typeerror(self, build):
        """A time-indexed sampler called with no resolvable time must say
        so — the regression was an opaque ``KeyError: 't'`` (keyword-only
        call) or a float-conversion ``ValueError`` (non-numeric leading
        positional) escaping the legacy shim."""
        with pytest.raises(TypeError, match="time= is required"):
            build().update("item")
        with pytest.raises(TypeError, match="time= is required"):
            build().update(key="item", weight=2.0)

    def test_leading_numeric_positional_still_routes_to_legacy(self):
        """The guard must not break the deprecated time-first form."""
        s = ExponentialDecaySampler(8, 0.1, rng=0)
        with pytest.deprecated_call():
            s.update(1.0, "item", 2.0)
        assert s.keys() == ["item"]

    def test_grouped_distinct_group_first(self):
        legacy = GroupedDistinctSketch(m=2, k=4)
        modern = GroupedDistinctSketch(m=2, k=4)
        modern.update("user1", group="g")
        with pytest.deprecated_call():
            legacy.update("g", "user1")
        assert legacy.estimate_distinct("g") == modern.estimate_distinct("g")

    def test_stratified_positional_strata(self):
        legacy = MultiStratifiedSampler(n_dims=1, k=4, salt=0)
        modern = MultiStratifiedSampler(n_dims=1, k=4, salt=0)
        modern.update(1, strata=("s",), value=2.0)
        with pytest.deprecated_call():
            legacy.update(1, ("s",), value=2.0)
        assert legacy.sample().keys == modern.sample().keys

    def test_multi_objective_positional_weights(self):
        legacy = MultiObjectiveSampler(4, ["a"], salt=0)
        modern = MultiObjectiveSampler(4, ["a"], salt=0)
        modern.update("x", weights={"a": 2.0})
        with pytest.deprecated_call():
            legacy.update("x", {"a": 2.0})
        assert legacy.union_keys() == modern.union_keys()


class TestLegacyEstimateCalls:
    def test_counter_sketch_estimate_key(self):
        s = FrequentItemsSketch(16)
        for _ in range(5):
            s.update("hot")
        assert s.estimate_count("hot") == 5
        with pytest.deprecated_call():
            assert s.estimate("hot") == 5

    def test_space_saving_estimate_key(self):
        s = SpaceSavingSketch(16)
        for _ in range(3):
            s.update("x")
        with pytest.deprecated_call():
            assert s.estimate("x") == 3

    def test_grouped_estimate_group(self):
        s = GroupedDistinctSketch(m=2, k=4)
        s.update("u", group="g")
        with pytest.deprecated_call():
            assert s.estimate("g") == s.estimate_distinct("g")


class TestKindWithPredicateRouting:
    def test_predicate_kind_does_not_misroute_to_legacy_path(self):
        """Regression: estimate("subset_sum", predicate=...) on a sampler
        with a legacy key param used to probe the estimator signature
        without the predicate, conclude it could not be called, and
        misroute the kind name down the legacy positional-key path."""
        import warnings

        from repro import make_sampler

        sampler = make_sampler("top_k", k=8, rng=0)
        sampler.update_many(list(range(64)) * 3)
        predicate = lambda key: key % 2 == 0  # noqa: E731
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            routed = sampler.estimate("subset_sum", predicate=predicate)
        assert routed == sampler.estimate_subset_sum(predicate)


def test_samplers_query_result_alias_warns():
    """The pre-rename scan-result name still imports, with a warning."""
    import warnings

    import repro.samplers as samplers
    from repro.samplers.aqp import ScanResult

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        alias = samplers.QueryResult
    assert alias is ScanResult
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
