"""Shared contract test for every registered sampler.

One parametrized suite exercises the :class:`repro.api.StreamSampler`
protocol across the whole registry:

* construction through ``make_sampler(name, **params)``;
* ``update`` vs ``update_many`` equivalence (same seed => same sample);
* merge semantics: in-place ``merge`` returns self, ``|`` is pure, and
  merging is associative-in-distribution on disjoint streams;
* ``to_state`` / ``from_state`` round-trips, including resuming a stream
  from a checkpoint with bit-identical results.

Each sampler declares its capabilities in a :class:`Case` row — e.g. the
offline CPS design supports construction and serialization only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import pytest

import repro
from tests.helpers import sample_signature
from repro.api import (
    StreamSampler,
    available_samplers,
    get_sampler_class,
    make_sampler,
    merged,
)

N = 400


def _keys(start: int = 0, n: int = N) -> np.ndarray:
    return np.arange(start, start + n)


def _weights(n: int = N, seed: int = 5) -> np.ndarray:
    return np.random.default_rng(seed).lognormal(0.0, 0.6, n)


@dataclass
class Case:
    """Contract-test configuration for one registered sampler."""

    name: str
    params: dict
    #: feed(sampler, keys, weights) — scalar update loop.
    feed: Callable
    #: feed_many(sampler, keys, weights) — one update_many call.
    feed_many: Callable | None = None
    streaming: bool = True
    supports_merge: bool = False
    #: update_many must reproduce the scalar loop exactly (same seed).
    batch_equivalent: bool = True
    #: the sampler is deterministic under a fixed seed
    deterministic: bool = True
    #: resuming from a checkpoint is bit-identical to an uninterrupted run
    #: (False only for the space-saving heaps, whose internal tie-break
    #: counters restart after deserialization)
    resume_identical: bool = True


def _plain_feed(sampler, keys, weights):
    for key, w in zip(keys, weights):
        sampler.update(int(key), float(w))


def _plain_feed_many(sampler, keys, weights):
    sampler.update_many(keys, weights)


def _unweighted_feed(sampler, keys, weights):
    for key in keys:
        sampler.update(int(key))


def _unweighted_feed_many(sampler, keys, weights):
    sampler.update_many(keys)


def _timed_feed(sampler, keys, weights):
    # Arrival time derives from the key so checkpoint-resume feeds continue
    # the clock instead of restarting it.
    for key, w in zip(keys, weights):
        sampler.update(int(key), float(w), time=int(key) * 0.01)


def _timed_feed_many(sampler, keys, weights):
    sampler.update_many(keys, weights, times=np.asarray(keys) * 0.01)


def _window_feed(sampler, keys, weights):
    for key in keys:
        sampler.update(int(key), time=int(key) * 0.01)


def _window_feed_many(sampler, keys, weights):
    sampler.update_many(keys, times=np.asarray(keys) * 0.01)


def _budget_feed(sampler, keys, weights):
    for key, w in zip(keys, weights):
        sampler.update(int(key), float(w), size=1.0)


def _budget_feed_many(sampler, keys, weights):
    sampler.update_many(keys, weights, sizes=np.ones(len(keys)))


def _grouped_feed(sampler, keys, weights):
    for key in keys:
        sampler.update(int(key), group=f"g{int(key) % 7}")


def _grouped_feed_many(sampler, keys, weights):
    sampler.update_many(keys, groups=[f"g{int(k) % 7}" for k in keys])


def _stratified_feed(sampler, keys, weights):
    for key in keys:
        sampler.update(int(key), strata=(int(key) % 3, int(key) % 5))


def _stratified_feed_many(sampler, keys, weights):
    sampler.update_many(
        keys, strata=[(int(k) % 3, int(k) % 5) for k in keys]
    )


def _mux_feed(sampler, keys, weights):
    # Composite (tenant, key) rows, interleaved across three tenants.
    for key, w in zip(keys, weights):
        sampler.update((f"t{int(key) % 3}", int(key)), float(w))


def _mux_feed_many(sampler, keys, weights):
    rows = [(f"t{int(key) % 3}", int(key)) for key in keys]
    sampler.update_many(rows, weights)


def _multi_objective_feed(sampler, keys, weights):
    for key, w in zip(keys, weights):
        sampler.update(int(key), weights={"a": float(w), "b": 1.0 + float(w)})


def _multi_objective_feed_many(sampler, keys, weights):
    weights = np.asarray(weights, dtype=float)
    sampler.update_many(keys, weights={"a": weights, "b": 1.0 + weights})


CASES = [
    Case("bottom_k", {"k": 32}, _plain_feed, _plain_feed_many,
         supports_merge=True),
    Case("bottom_k", {"k": 32, "coordinated": True, "salt": 3}, _plain_feed,
         _plain_feed_many, supports_merge=True),
    Case("poisson", {"threshold": 0.25}, _plain_feed, _plain_feed_many,
         supports_merge=True),
    Case("budget", {"budget": 48.0}, _budget_feed, _budget_feed_many),
    Case("sliding_window", {"k": 16, "window": 1.0}, _window_feed,
         _window_feed_many),
    Case("top_k", {"k": 8}, _unweighted_feed, _unweighted_feed_many),
    Case("weighted_distinct", {"k": 32, "salt": 1}, _plain_feed,
         _plain_feed_many, supports_merge=True),
    Case("adaptive_distinct", {"k": 32, "salt": 1}, _unweighted_feed,
         _unweighted_feed_many, supports_merge=True),
    Case("grouped_distinct", {"m": 4, "k": 8, "salt": 2}, _grouped_feed,
         _grouped_feed_many),
    Case("multi_stratified", {"n_dims": 2, "k": 8, "salt": 2},
         _stratified_feed, _stratified_feed_many),
    Case("multi_objective", {"k": 16, "objectives": ("a", "b"), "salt": 4},
         _multi_objective_feed, _multi_objective_feed_many),
    Case("variance_target", {"delta": 4.0}, _plain_feed, _plain_feed_many),
    Case("time_decay", {"k": 16, "decay_rate": 0.05}, _timed_feed,
         _timed_feed_many),
    Case("varopt", {"k": 16}, _plain_feed, _plain_feed_many,
         batch_equivalent=True),
    Case("kmv", {"k": 32, "salt": 1}, _unweighted_feed,
         _unweighted_feed_many, supports_merge=True),
    Case("theta", {"k": 32, "salt": 1}, _unweighted_feed,
         _unweighted_feed_many, supports_merge=True),
    Case("frequent_items", {"max_map_size": 64}, _unweighted_feed,
         _unweighted_feed_many),
    Case("space_saving", {"capacity": 32}, _unweighted_feed,
         _unweighted_feed_many, resume_identical=False),
    Case("unbiased_space_saving", {"capacity": 32}, _unweighted_feed,
         _unweighted_feed_many, resume_identical=False),
    # The cluster-worker multiplexer: independent per-tenant children fed
    # through composite (tenant, key) rows.
    Case("tenant_mux",
         {"tenants": {
             f"t{i}": {"name": "bottom_k", "params": {"k": 16, "rng": 40 + i}}
             for i in range(3)
         }},
         _mux_feed, _mux_feed_many),
    # The sharded engine is itself a registered, composable sampler.
    Case("sharded",
         {"spec": {"name": "bottom_k", "params": {"k": 32}},
          "n_shards": 4, "seed": 11},
         _plain_feed, _plain_feed_many, supports_merge=True),
]

#: Registered but non-streaming constructs: factory + state round-trip only.
OFFLINE_CASES = [
    ("cps", {"working_probs": [0.3] * 12, "k": 4}),
    ("priority_layout", {"values": [1.0, 2.5, 4.0, 8.0, 1.5] * 20}),
    ("multi_objective_layout",
     {"metrics": {"a": list(range(1, 51))}, "k": 8}),
]

IDS = [f"{c.name}[{i}]" for i, c in enumerate(CASES)]


def _build(case: Case) -> StreamSampler:
    return make_sampler(case.name, **case.params)


#: Canonical sample view shared with the engine/property suites.
_sample_signature = sample_signature


class TestRegistryCoverage:
    def test_every_registered_sampler_has_a_case(self):
        covered = {c.name for c in CASES} | {name for name, _ in OFFLINE_CASES}
        assert covered == set(available_samplers())

    def test_merge_capability_is_declared_on_the_class(self):
        """``cls.mergeable`` is the contract the sharded engine trusts; it
        must agree with what the per-sampler contract rows exercise."""
        for case in CASES:
            cls = get_sampler_class(case.name)
            assert bool(getattr(cls, "mergeable", False)) == case.supports_merge, (
                f"{case.name}: mergeable flag disagrees with contract row"
            )
        for name, _ in OFFLINE_CASES:
            assert not getattr(get_sampler_class(name), "mergeable", False)

    def test_make_sampler_unknown_name(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            make_sampler("definitely_not_registered")

    @pytest.mark.parametrize("name,params", OFFLINE_CASES)
    def test_offline_constructs_round_trip(self, name, params):
        obj = make_sampler(name, **params)
        state = obj.to_state()
        assert state["sampler"] == name
        revived = repro.sampler_from_state(state)
        assert type(revived) is type(obj)

    @pytest.mark.parametrize("name", [name for name, _ in OFFLINE_CASES])
    @pytest.mark.parametrize("chunk", [1, 7, 1000])
    def test_offline_ingestion_chunking_invariance(self, name, chunk):
        """Offline constructs ingest via appends; splits must not matter."""
        m = 60
        keys = _keys(n=m)
        probs = np.random.default_rng(9).uniform(0.05, 0.95, m)
        values = np.random.default_rng(10).lognormal(0.0, 0.8, m)

        def build():
            if name == "cps":
                return make_sampler(name, k=5)
            if name == "priority_layout":
                return make_sampler(name)
            return make_sampler(name, metrics={"a": []}, k=8)

        def feed(obj, lo, hi):
            if name == "cps":
                obj.update_many(keys[lo:hi], weights=probs[lo:hi])
            elif name == "priority_layout":
                obj.update_many(
                    keys[lo:hi], weights=values[lo:hi], values=values[lo:hi]
                )
            else:
                obj.update_many(keys[lo:hi], weights={"a": values[lo:hi]})

        whole = build()
        feed(whole, 0, m)
        split = build()
        for lo in range(0, m, chunk):
            feed(split, lo, min(m, lo + chunk))
        assert whole.to_state() == split.to_state()

    def test_sampler_spec_builds(self):
        spec = repro.SamplerSpec("bottom_k", {"k": 16})
        sampler = spec.build()
        assert type(sampler).__name__ == "BottomKSampler"
        assert repro.SamplerSpec.from_dict(spec.as_dict()) == spec


@pytest.mark.parametrize("case", CASES, ids=IDS)
class TestStreamingContract:
    def test_constructible_and_streams(self, case):
        sampler = _build(case)
        assert isinstance(sampler, StreamSampler)
        assert sampler.sampler_name == case.name
        case.feed(sampler, _keys(), _weights())
        assert len(sampler.sample()) > 0

    def test_update_many_matches_scalar_loop(self, case):
        scalar = _build(case)
        batch = _build(case)
        keys, weights = _keys(), _weights()
        case.feed(scalar, keys, weights)
        case.feed_many(batch, keys, weights)
        if case.batch_equivalent and case.deterministic:
            assert _sample_signature(scalar) == _sample_signature(batch)
        else:
            # Randomized eviction orders may differ; sizes must agree.
            assert len(batch.sample()) == len(scalar.sample())

    @pytest.mark.parametrize("chunk", [1, 7, 1000])
    def test_update_many_chunking_invariance(self, case, chunk):
        """One big batch == the same stream over arbitrary chunk splits.

        The batch kernels defer work to chunk-internal boundaries
        (recomputations, purges, threshold runs); splitting the stream
        moves those boundaries around, so invariance here pins down that
        the deferral is exact, not approximately right.
        """
        if not (case.batch_equivalent and case.deterministic):
            pytest.skip("chunking comparison needs batch-exact determinism")
        keys, weights = _keys(), _weights()
        whole = _build(case)
        case.feed_many(whole, keys, weights)
        split = _build(case)
        for lo in range(0, N, chunk):
            case.feed_many(
                split, keys[lo:lo + chunk], weights[lo:lo + chunk]
            )
        assert _sample_signature(split) == _sample_signature(whole)

    def test_state_round_trip_preserves_sample(self, case):
        sampler = _build(case)
        case.feed(sampler, _keys(), _weights())
        state = sampler.to_state()
        assert state["sampler"] == case.name
        revived = type(sampler).from_state(state)
        assert _sample_signature(revived) == _sample_signature(sampler)
        polymorphic = repro.sampler_from_state(state)
        assert _sample_signature(polymorphic) == _sample_signature(sampler)

    def test_checkpoint_resume_is_bit_identical(self, case):
        if not (case.deterministic and case.resume_identical):
            pytest.skip("resume is not bit-identical for this sampler")
        half = N // 2
        keys, weights = _keys(), _weights()
        straight = _build(case)
        case.feed(straight, keys, weights)
        resumed = _build(case)
        case.feed(resumed, keys[:half], weights[:half])
        resumed = type(resumed).from_state(resumed.to_state())
        case.feed(resumed, keys[half:], weights[half:])
        assert _sample_signature(resumed) == _sample_signature(straight)

    def test_merge_in_place_and_pure(self, case):
        if not case.supports_merge:
            pytest.skip("sampler does not support merging")
        a = _build(case)
        b = _build(case)
        case.feed(a, _keys(0), _weights(seed=7))
        case.feed(b, _keys(N), _weights(seed=8))
        before = _sample_signature(a)
        pure = a | b
        assert _sample_signature(a) == before, "| must not mutate its inputs"
        in_place = a.merge(b)
        assert in_place is a, "merge() must return self"
        assert _sample_signature(pure) == _sample_signature(a)

    def test_merge_associative_on_disjoint_streams(self, case):
        if not case.supports_merge:
            pytest.skip("sampler does not support merging")
        parts = []
        for i in range(3):
            s = _build(case)
            case.feed(s, _keys(i * N), _weights(seed=10 + i))
            parts.append(s)
        a, b, c = parts
        left = merged(merged(a, b), c)
        right = merged(a, merged(b, c))
        assert _sample_signature(left) == _sample_signature(right)

    def test_estimate_facade_dispatches(self, case):
        sampler = _build(case)
        case.feed(sampler, _keys(), _weights())
        kinds = sampler.estimate_kinds()
        assert kinds, "every sampler exposes at least one estimator kind"
        assert sampler.default_estimate_kind in kinds
        if case.name in ("top_k", "frequent_items", "space_saving",
                         "unbiased_space_saving"):
            value = sampler.estimate("count", key=int(_keys()[0]))
        elif case.name == "grouped_distinct":
            value = sampler.estimate("distinct", group="g0")
        elif case.name == "multi_objective":
            value = sampler.estimate("total", objective="a")
        else:
            value = sampler.estimate()
        assert np.isfinite(float(value))
        if sampler.legacy_estimate_param is None:
            with pytest.raises(ValueError):
                sampler.estimate("no_such_kind_registered")
        else:
            # Unknown kinds route to the legacy positional-key path.
            with pytest.deprecated_call():
                sampler.estimate("no_such_kind_registered")
