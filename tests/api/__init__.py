"""Tests for the unified repro.api sampler protocol."""
