"""Ratcheted docstring-coverage gate (interrogate-style, zero-dep).

Walks every module under ``repro`` and counts docstrings on modules,
public classes/functions, and public methods/properties defined in them.
Coverage must stay at or above ``RATCHET`` — raise it as it grows, never
lower it to make a PR pass.  On top of the ratchet, the symbols exported
from the top-level ``repro`` namespace (``repro.__all__``) are held to
100%: the public API is fully documented, no exceptions.

CI additionally runs the real ``interrogate`` tool (configured in
``pyproject.toml``) as a cross-check; this test is the in-repo gate that
works without optional dependencies.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro

#: Documented fraction of the walked public surface.  Currently 100%;
#: keep it there — a drop means a new public symbol shipped undocumented.
RATCHET = 1.0


def _walk_public_surface():
    """Yield (kind, qualified name, object) for the documented surface."""
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        module = importlib.import_module(info.name)
        yield "module", info.name, module
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != info.name:
                continue  # re-exports are counted where they are defined
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            yield type(obj).__name__, f"{info.name}.{name}", obj
            if inspect.isclass(obj):
                for attr, member in vars(obj).items():
                    if attr.startswith("_"):
                        continue
                    if callable(member) or isinstance(
                        member, (property, classmethod, staticmethod)
                    ):
                        yield "member", f"{info.name}.{name}.{attr}", member


def _missing():
    missing, total = [], 0
    for kind, label, obj in _walk_public_surface():
        total += 1
        if not inspect.getdoc(obj):
            missing.append(f"{kind} {label}")
    return missing, total


def test_docstring_coverage_meets_ratchet():
    missing, total = _missing()
    coverage = (total - len(missing)) / total
    assert coverage >= RATCHET, (
        f"docstring coverage {coverage:.4f} fell below the {RATCHET} "
        "ratchet; undocumented symbols:\n  " + "\n  ".join(missing)
    )


def test_top_level_exports_are_fully_documented():
    """Everything in repro.__all__ (and its public methods) has a doc."""
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if not callable(obj) and not inspect.ismodule(obj):
            continue  # plain constants (__version__, QUERY_AGGREGATES)
        if not inspect.getdoc(obj):
            undocumented.append(name)
        if inspect.isclass(obj):
            for attr, member in vars(obj).items():
                if attr.startswith("_"):
                    continue
                if callable(member) or isinstance(
                    member, (property, classmethod, staticmethod)
                ):
                    if not inspect.getdoc(member):
                        undocumented.append(f"{name}.{attr}")
    assert not undocumented, (
        "top-level exports must be fully documented: "
        + ", ".join(undocumented)
    )
