"""Docs cannot rot: link check, live code blocks, real module pointers.

Three guarantees over ``docs/*.md`` and ``README.md``:

* every relative markdown link resolves to a file in the repo;
* every fenced ``python`` code block executes cleanly (blocks within one
  file share a namespace, so tutorials can build on earlier snippets);
* every ``src/repro/...`` module path named in the docs exists, and the
  capability matrix embedded in ``docs/architecture.md`` is byte-identical
  to what ``repro.query.capability_markdown()`` generates from the live
  declarations.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.obs import metric_inventory_markdown
from repro.query import capability_markdown

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_MODULE_PATH = re.compile(r"`(src/repro/[\w/]+\.py)`")


def _doc_ids():
    return [str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_relative_links_resolve(doc):
    text = doc.read_text()
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):  # intra-page anchor
            continue
        path = (doc.parent / target.split("#")[0]).resolve()
        assert path.exists(), f"{doc.name}: broken link {target!r}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_python_code_blocks_execute(doc):
    """Fenced python blocks run top-to-bottom in one shared namespace."""
    blocks = _FENCE.findall(doc.read_text())
    if not blocks:
        pytest.skip(f"{doc.name} has no python blocks")
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"{doc.name}[block {i}]", "exec"), namespace)
        except Exception as err:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"{doc.name} block {i} failed: {err}\n---\n{block}"
            ) from err


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_named_module_paths_exist(doc):
    """Every `src/repro/...` pointer names a file that really exists."""
    paths = _MODULE_PATH.findall(doc.read_text())
    for rel in paths:
        assert (REPO_ROOT / rel).exists(), f"{doc.name}: no such module {rel}"


def test_architecture_section_table_points_into_the_tree():
    """Each paper-section row of the pointer table names >= 1 real module."""
    text = (REPO_ROOT / "docs" / "architecture.md").read_text()
    rows = [
        line
        for line in text.splitlines()
        if line.startswith("| §")
    ]
    assert len(rows) >= 20, "the section pointer table went missing"
    for row in rows:
        paths = _MODULE_PATH.findall(row)
        assert paths, f"section row without a module pointer: {row}"
        for rel in paths:
            assert (REPO_ROOT / rel).exists(), f"{rel} named in {row!r}"


def test_capability_matrix_matches_live_declarations():
    """The embedded matrix regenerates byte-identically from the code."""
    text = (REPO_ROOT / "docs" / "architecture.md").read_text()
    begin = "<!-- capability-matrix:begin -->\n"
    end = "\n<!-- capability-matrix:end -->"
    assert begin in text and end in text
    embedded = text.split(begin, 1)[1].split(end, 1)[0]
    assert embedded == capability_markdown(), (
        "docs/architecture.md capability matrix is stale; regenerate with "
        "python -c 'from repro.query import capability_markdown; "
        "print(capability_markdown())'"
    )


def test_metric_inventory_matches_live_declarations():
    """The embedded metric inventory regenerates byte-identically from
    ``repro.obs.INVENTORY`` (same pin as the capability matrix)."""
    text = (REPO_ROOT / "docs" / "architecture.md").read_text()
    begin = "<!-- metric-inventory:begin -->\n"
    end = "<!-- metric-inventory:end -->"
    assert begin in text and end in text
    embedded = text.split(begin, 1)[1].split(end, 1)[0]
    assert embedded == metric_inventory_markdown(), (
        "docs/architecture.md metric inventory is stale; regenerate with "
        "python -c 'from repro.obs import metric_inventory_markdown; "
        "print(metric_inventory_markdown())'"
    )
