"""Shared statistical helpers for the test suite.

Importable as ``from tests.helpers import ...`` from any test module (the
repo root is on ``sys.path`` via the ``pythonpath`` setting in
``pyproject.toml``).  The patterns:

* **Exact enumeration** — under a fixed threshold the inclusion pattern is
  a product of independent Bernoullis, so expectations over all ``2^n``
  patterns are computed exactly (tolerance ~1e-9).
* **Monte Carlo** — adaptive thresholds require simulation; tests use fixed
  seeds and tolerances sized to several standard errors so they are
  deterministic and non-flaky.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator

import numpy as np

__all__ = [
    "enumerate_poisson",
    "exact_expectation",
    "monte_carlo_mean_se",
    "assert_within_se",
    "sample_signature",
]


def sample_signature(sampler) -> tuple:
    """Canonical, order-independent view of a sampler's current sample.

    Two samplers with equal signatures retain the same keys with the same
    values, weights, priorities, and thresholds (rounded past float noise)
    — the equality used by every bit-exactness assertion in the suite.
    """
    sample = sampler.sample()
    rows = sorted(
        (
            repr(key),
            round(float(v), 9),
            round(float(w), 9),
            round(float(p), 12),
            round(float(t), 12) if np.isfinite(t) else "inf",
        )
        for key, v, w, p, t in zip(
            sample.keys,
            sample.values,
            sample.weights,
            sample.priorities,
            sample.thresholds,
        )
    )
    return tuple(rows)


def enumerate_poisson(
    probs: np.ndarray,
) -> Iterator[tuple[np.ndarray, float]]:
    """Yield every inclusion mask of a Poisson design with its probability."""
    probs = np.asarray(probs, dtype=float)
    n = probs.size
    for bits in itertools.product((0, 1), repeat=n):
        mask = np.asarray(bits, dtype=bool)
        p = float(np.prod(np.where(mask, probs, 1.0 - probs)))
        yield mask, p


def exact_expectation(
    probs: np.ndarray, estimator: Callable[[np.ndarray], float]
) -> float:
    """Exact E[estimator(mask)] over a Poisson design (n <= ~14)."""
    return sum(p * estimator(mask) for mask, p in enumerate_poisson(probs))


def monte_carlo_mean_se(values) -> tuple[float, float]:
    """Mean and its standard error for Monte-Carlo assertions."""
    arr = np.asarray(values, dtype=float)
    return float(arr.mean()), float(arr.std(ddof=1) / np.sqrt(arr.size))


def assert_within_se(values, target: float, z: float = 4.5, msg: str = "") -> None:
    """Assert a Monte-Carlo mean is within ``z`` standard errors of target."""
    mean, se = monte_carlo_mean_se(values)
    if se == 0.0:
        assert abs(mean - target) < 1e-12, msg or f"{mean} != {target}"
        return
    assert abs(mean - target) <= z * se, (
        msg or f"mean {mean} vs target {target}: |z| = {abs(mean - target) / se:.2f}"
    )
