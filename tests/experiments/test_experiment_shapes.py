"""Integration tests: every experiment reproduces the paper's *shape*.

These run the experiment modules at reduced scale and assert the
qualitative claims of each figure / numbered claim (see DESIGN.md §3);
the full-scale numbers live in the benchmark harness.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablation_multi_objective,
    ablation_samplers,
    estimator_bias,
    figure1,
    figure2,
    figure3,
    figure4,
    section6_heuristic,
    section31_budget,
    section35_merge,
    section39_variance,
)


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return figure1.run(rate=300.0, k=30, t_end=5.0, seed=3)

    def test_improved_threshold_larger(self, result):
        assert result.steady_ratio > 1.4  # paper: ~2x

    def test_sample_ratio(self, result):
        assert result.steady_sample_ratio > 1.3

    def test_improved_closer_to_ideal(self, result):
        mask = result.steady_mask
        gap_improved = np.abs(result.improved_threshold[mask] - result.ideal_threshold)
        gap_gl = np.abs(result.gl_threshold[mask] - result.ideal_threshold)
        assert gap_improved.mean() < gap_gl.mean()

    def test_table_renders(self, result):
        assert "gl_threshold" in result.table()


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return figure2.run(base_rate=300.0, k=40, seed=1)

    def test_threshold_dominance(self, result):
        assert result.threshold_dominance == 1.0

    def test_sample_ratio_near_two(self, result):
        assert 1.3 < result.steady_sample_ratio < 3.0

    def test_both_recover(self, result):
        assert np.isfinite(result.improved_recovery)
        # Improved must not recover substantially later than G&L.
        if np.isfinite(result.gl_recovery):
            assert result.improved_recovery <= result.gl_recovery + 1.2 * result.window

    def test_spike_visible_in_rates(self, result):
        assert result.rates.max() > 4 * result.rates.min()


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3.run(
            betas=(0.25, 0.9), stream_length=8000, n_trials=3, seed=0
        )

    def test_sampler_no_worse_on_heavy_tail(self, result):
        # At large beta FrequentItems degrades; the sampler must not.
        assert result.sampler_errors[-1] <= result.freqitems_errors[-1] + 1.0

    def test_sampler_size_adapts(self, result):
        assert result.sampler_sizes[1] > 1.5 * result.sampler_sizes[0]

    def test_freqitems_size_fixed(self, result):
        assert np.all(result.freqitems_sizes == result.freqitems_sizes[0])

    def test_errors_bounded_by_k(self, result):
        assert np.all(result.sampler_errors <= result.k)


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        # 0.45 sits close to the containment maximum of 0.5 for |B| = 2|A|,
        # where the paper notes the advantage disappears.
        return figure4.run(
            jaccards=(0.0, 0.15, 0.45), size_a=5000, n_trials=30, seed=1
        )

    def test_lcs_beats_baselines_at_low_jaccard(self, result):
        assert result.lcs_error[0] < result.bottomk_error[0]
        assert result.lcs_error[0] < result.theta_error[0]

    def test_errors_in_sane_range(self, result):
        # k = 100 -> relative error SD around 1/sqrt(k) = 10%.
        for series in (result.lcs_error, result.bottomk_error, result.theta_error):
            assert np.all(series > 2.0) and np.all(series < 25.0)

    def test_lcs_dominates_across_grid(self, result):
        # The paper's figure shows the LCS line below both baselines over
        # the whole plotted Jaccard range (it only collapses at A == B).
        assert np.all(result.lcs_error <= result.theta_error)
        assert np.all(result.lcs_error <= result.bottomk_error)


class TestSection31:
    @pytest.fixture(scope="class")
    def result(self):
        return section31_budget.run(population=2500, n_trials=12, seed=0)

    def test_ratio_near_four(self, result):
        assert 2.8 < result.size_ratio < 5.8  # paper: ~4.04

    def test_budget_fully_used(self, result):
        assert np.all(result.utilizations > 0.9)

    def test_count_estimate_unbiased(self, result):
        assert abs(result.count_bias) < 0.12


class TestSection35:
    @pytest.fixture(scope="class")
    def result(self):
        return section35_merge.run(
            big_size=800, n_small=400, small_size=50, n_trials=8, seed=0
        )

    def test_adaptive_merge_wins_big(self, result):
        assert result.improvement > 5.0

    def test_improvement_tracks_total_over_big(self, result):
        # Paper: the gain is on the order of total/big.
        expected = result.total / result.big_size
        assert result.improvement > 0.25 * expected


class TestSection39:
    @pytest.fixture(scope="class")
    def result(self):
        return section39_variance.run(
            population=800, deltas=(15.0, 30.0), n_trials=120, seed=0
        )

    def test_vhat_hits_target_exactly(self, result):
        np.testing.assert_allclose(result.vhat_mean, result.deltas**2, rtol=1e-6)

    def test_mse_tracks_target(self, result):
        ratios = result.mse / result.deltas**2
        assert np.all(ratios > 0.5) and np.all(ratios < 2.0)

    def test_smaller_delta_larger_sample(self, result):
        assert result.sample_sizes[0] > result.sample_sizes[1]


class TestEstimatorBias:
    @pytest.fixture(scope="class")
    def result(self):
        return estimator_bias.run(population=50, k=10, n_trials=1500, seed=0)

    def test_substitutable_rows_unbiased(self, result):
        for row in result.rows[:3]:
            assert abs(row.z_score) < 5.0, row

    def test_negative_control_biased(self, result):
        control = result.rows[-1]
        assert control.relative_bias < -0.2
        assert control.z_score < -8.0


class TestSection6:
    @pytest.fixture(scope="class")
    def result(self):
        return section6_heuristic.run(sizes=(300, 2400), n_trials=15, seed=0)

    def test_gap_shrinks(self, result):
        assert result.threshold_gap[-1] < result.threshold_gap[0]

    def test_rmse_ratio_near_one(self, result):
        assert np.all(result.heuristic_rmse_ratio < 2.5)


class TestAblations:
    def test_sampler_ablation(self):
        result = ablation_samplers.run(population=120, k=15, n_trials=300, seed=0)
        by_name = {row.design: row for row in result.rows}
        for row in result.rows:
            assert abs(row.relative_bias) < 0.12, row
        # VarOpt is variance-optimal; Poisson pays for its random size.
        assert by_name["varopt"].variance <= by_name["poisson"].variance
        # Priority sampling lands within a small factor of VarOpt.
        assert by_name["priority (bottom-k)"].variance < 5.0 * max(
            by_name["varopt"].variance, 1e-12
        )

    def test_multi_objective_ablation(self):
        result = ablation_multi_objective.run(
            correlations=(0.0, 1.0), population=1500, k=40, n_trials=8, seed=0
        )
        assert result.union_sizes[-1] == pytest.approx(40, abs=1)
        assert result.union_sizes[0] > 1.3 * 40
        assert np.all(np.abs(result.profit_bias) < 0.2)
        assert np.all(np.abs(result.revenue_bias) < 0.2)
