"""Tests for experiment utilities (repro.experiments.common) and the CLI."""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.experiments.common import format_table, scale_factor, scaled

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def _env(**overrides) -> dict:
    """Subprocess env with the package importable regardless of runner."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (SRC, env.get("PYTHONPATH")) if p
    )
    env.update(overrides)
    return env


class TestScaleFactor:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5

    def test_invalid_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.raises(ValueError):
            scale_factor()

    def test_nonpositive_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0")
        with pytest.raises(ValueError):
            scale_factor()

    def test_scaled_rounding_and_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert scaled(100, minimum=5) == 5
        monkeypatch.setenv("REPRO_SCALE", "3")
        assert scaled(100) == 300


class TestFormatTable:
    def test_alignment_and_floats(self):
        out = format_table(["name", "value"], [("a", 1.23456789), ("bb", 2)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in out  # 4 significant digits by default
        assert len(lines) == 4

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out


class TestRunnerCLI:
    def test_unknown_id_exits_2(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "nope"],
            capture_output=True,
            text=True,
            env=_env(),
        )
        assert result.returncode == 2
        assert "unknown experiment ids" in result.stdout

    def test_single_experiment_runs(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "t1"],
            capture_output=True,
            text=True,
            env=_env(REPRO_SCALE="0.02"),
            timeout=300,
        )
        assert result.returncode == 0
        assert "Section 3.1" in result.stdout
