"""Rich statistics from one adaptive sample (Sections 2.6–2.6.2).

The framework's promise: one substitutable-threshold sample supports the
*whole* fixed-threshold estimator toolbox — totals, variance estimates,
rank correlations, even exactly-unbiased central moments — without
deriving anything new.  This example draws a single uniform bottom-k
sample from a bivariate population and estimates all of them, with ground
truth alongside.

Run:  python examples/statistics_from_sample.py
"""

import numpy as np
from scipy import stats

from repro import BottomKSampler, Uniform01Priority, kendall_tau_estimate
from repro.core.pseudo_ht import (
    central_moment_unbiased,
    kendall_tau_population,
    kendall_tau_variance_estimate,
    kurtosis_estimate,
    skewness_estimate,
)


def main() -> None:
    rng = np.random.default_rng(5)
    n = 5_000
    # Correlated, skewed population: income-like x, spend-like y.
    x = rng.lognormal(0.0, 0.7, n)
    y = x ** 0.8 * rng.lognormal(0.0, 0.4, n)

    # One uniform bottom-k sample (fully substitutable threshold).
    sampler = BottomKSampler(k=600, family=Uniform01Priority(), rng=rng)
    for i in range(n):
        sampler.update(i, value=float(x[i]))
    sample = sampler.sample()
    probs = sample.probabilities
    idx = np.asarray(sample.keys)
    print(f"population n={n}, sample k={len(sample)}, "
          f"threshold={sampler.threshold:.4f}\n")

    rows = []
    rows.append(("total of x", float(x.sum()), sample.ht_total()))
    rows.append(
        ("Kendall tau(x, y)",
         kendall_tau_population(x, y),
         kendall_tau_estimate(x[idx], y[idx], probs, n))
    )
    rows.append(
        ("variance of x (mu_2)",
         float(np.mean((x - x.mean()) ** 2)),
         central_moment_unbiased(x[idx], probs, n, 2))
    )
    rows.append(
        ("skewness of x",
         float(stats.skew(x)),
         skewness_estimate(x[idx], probs, n))
    )
    rows.append(
        ("kurtosis of x",
         float(stats.kurtosis(x, fisher=False)),
         kurtosis_estimate(x[idx], probs, n))
    )

    print(f"{'statistic':24} {'truth':>12} {'estimate':>12} {'err %':>8}")
    for name, truth, est in rows:
        print(f"{name:24} {truth:12.4f} {est:12.4f} "
              f"{100 * (est / truth - 1):+8.1f}")

    # The tau estimator even comes with its own variance estimate (the
    # degree-4 pseudo-HT estimator of Section 2.6.2).
    tau_var = kendall_tau_variance_estimate(x[idx], y[idx], probs, n)
    print(f"\nKendall tau stderr estimate: {np.sqrt(max(tau_var, 0)):.4f}")


if __name__ == "__main__":
    main()
