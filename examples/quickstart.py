"""Quickstart: weighted sampling with adaptive thresholds.

Draws a fixed-size weighted sample (priority sampling / bottom-k) from a
simulated transaction stream whose length is unknown in advance — the core
problem statement of the paper — then answers subset-sum queries with
Horvitz-Thompson estimates and calibrated confidence intervals, exactly as
if the adaptive threshold had been fixed all along (Theorem 4).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import make_sampler


def main() -> None:
    rng = np.random.default_rng(7)

    # A stream of (transaction id, region, amount) with unknown length.
    n_transactions = 50_000
    regions = rng.choice(["emea", "amer", "apac"], size=n_transactions,
                         p=[0.5, 0.3, 0.2])
    amounts = rng.lognormal(mean=3.0, sigma=1.2, size=n_transactions)

    # Budget: keep only 500 transactions, weighted by amount (PPS).  Any
    # registered sampler is constructible from config via make_sampler;
    # update_many is the vectorized batch-ingestion path.
    sampler = make_sampler("bottom_k", k=500, rng=rng)
    sampler.update_many(
        [(regions[i], i) for i in range(n_transactions)], amounts
    )

    sample = sampler.sample()
    print(f"stream length      : {sampler.items_seen}")
    print(f"sample size        : {len(sample)}")
    print(f"adaptive threshold : {sampler.threshold:.3e}")

    # Total revenue: HT estimate with a 95% interval.
    estimate = sample.ht_total()
    lo, hi = sample.ht_confidence_interval(0.95)
    truth = float(amounts.sum())
    print(f"\ntotal revenue      : {truth:12.0f} (truth)")
    print(f"HT estimate        : {estimate:12.0f}  95% CI [{lo:.0f}, {hi:.0f}]")
    assert lo < truth < hi or abs(estimate / truth - 1) < 0.1

    # Subset sums come from the same sample (Corollary 3): zero out
    # everything outside the subset.
    for region in ("emea", "amer", "apac"):
        regional = sample.select(lambda key, r=region: key[0] == r)
        est = regional.ht_total()
        true_total = float(amounts[regions == region].sum())
        print(
            f"revenue[{region}]     : est {est:12.0f}   "
            f"truth {true_total:12.0f}   "
            f"error {100 * (est / true_total - 1):+.1f}%"
        )


if __name__ == "__main__":
    main()
