"""Scaling out with the sharded ingestion engine.

A :class:`repro.ShardedSampler` hash-partitions a stream across N
independent sampler instances (built from a registry spec), ingests each
partition through the vectorized batch kernels — optionally on a thread or
process pool — and answers queries by reducing the shards through a binary
merge tree of pure ``a | b`` unions.  Because adaptive threshold samples
stay mergeable (Ting, SIGMOD 2022, §3.5), the reduced sample estimates
exactly what a single giant sampler would.

The demo ingests one million weighted events, compares the sharded HT
estimate against ground truth and against a single-instance sampler,
checkpoints the whole engine mid-stream, and resumes it bit-exactly.

Run:  PYTHONPATH=src python examples/sharded_ingestion.py
"""

import numpy as np

import repro

N, UNIVERSE, SHARDS = 1_000_000, 50_000, 4

rng = np.random.default_rng(7)
keys = rng.integers(0, UNIVERSE, N)
weights = rng.lognormal(0.0, 0.8, N)

# One engine, four bottom-k shards, reproducible from (spec, seed).
spec = {"name": "bottom_k", "params": {"k": 512}}
engine = repro.ShardedSampler(spec, n_shards=SHARDS, seed=42)
engine.update_many(keys, weights)

truth = weights.sum()
estimate = engine.estimate("total")
print(f"ground-truth total      : {truth:,.0f}")
print(f"sharded HT estimate     : {estimate:,.0f} "
      f"({(estimate - truth) / truth:+.2%} error, "
      f"{len(engine)} of {N:,} items retained)")

single = repro.make_sampler(spec["name"], **spec["params"])
single.update_many(keys, weights)
print(f"single-instance estimate: {single.estimate('total'):,.0f} "
      "(same estimator, no sharding)")

# Shard routing is deterministic: every occurrence of a key lands on the
# same shard, so shard sub-streams are key-disjoint and merges are sound.
sizes = [shard.sample().population_size for shard in engine.shards]
print(f"per-shard arrivals      : {sizes} (sum {sum(sizes):,})")

# Checkpoint the WHOLE engine mid-stream and resume bit-exactly.
half = N // 2
resumed = repro.ShardedSampler(spec, n_shards=SHARDS, seed=42)
resumed.update_many(keys[:half], weights[:half])
state = resumed.to_state()  # plain dict: every shard + its RNG stream
resumed = repro.sampler_from_state(state)
resumed.update_many(keys[half:], weights[half:])
match = resumed.estimate("total") == estimate
print(f"resumed estimate matches uninterrupted run: {match}")

# Engines over disjoint traffic slices merge shard-wise (same spec/salt).
east = repro.ShardedSampler(spec, n_shards=SHARDS, seed=1)
west = repro.ShardedSampler(spec, n_shards=SHARDS, seed=2)
east.update_many(keys[:half], weights[:half])
west.update_many(keys[half:], weights[half:])
union = east | west
print(f"east|west merged estimate: {union.estimate('total'):,.0f} "
      f"(pure merge; inputs untouched)")
