"""A live dashboard on one adaptive threshold sample.

The paper's pitch, operationalized: maintain a single weighted bottom-k
sample over an event stream, then serve a whole dashboard from it with
declarative queries — regional revenue with confidence intervals, the
biggest customers, a latency quantile — and re-poll for free through the
invalidate-on-update result cache.

Run:  PYTHONPATH=src python examples/query_dashboard.py
"""

from __future__ import annotations

import time

import numpy as np

import repro

REGIONS = ("amer", "emea", "apac", "latam")


def region_of(customer: int) -> str:
    """Deterministic customer -> region assignment."""
    return REGIONS[customer % len(REGIONS)]


def main() -> None:
    """Ingest a revenue stream, then serve a dashboard from one sample."""
    rng = np.random.default_rng(7)
    n = 400_000
    customers = rng.zipf(1.4, n) % 25_000
    revenue = rng.lognormal(3.0, 1.0, n)

    sampler = repro.make_sampler("bottom_k", k=4096, rng=0)
    t0 = time.perf_counter()
    sampler.update_many(customers, revenue)
    print(
        f"ingested {n:,} events into a k=4096 sample "
        f"in {time.perf_counter() - t0:.2f}s"
    )

    # --- region revenue with 95% CIs, one vectorized group-by pass -----
    by_region = sampler.query("sum", group_by=region_of, ci=0.95)
    truth = {
        region: float(revenue[(customers % len(REGIONS)) == i].sum())
        for i, region in enumerate(REGIONS)
    }
    print("\nregion revenue (HT estimate, 95% CI, truth):")
    for region in REGIONS:
        sub = by_region[region]
        lo, hi = sub.ci
        print(
            f"  {region:6s} {sub.estimate:14,.0f}  "
            f"[{lo:13,.0f}, {hi:13,.0f}]  truth {truth[region]:14,.0f}"
        )

    # --- biggest customers, with per-entry uncertainty -----------------
    top = sampler.query("topk", k=5, ci=0.95)
    print("\ntop customers by estimated revenue:")
    for item in top.estimate:
        print(
            f"  customer {item.key:<8d} ~{item.estimate:12,.0f} "
            f"(stderr {item.stderr:10,.0f})"
        )

    # --- a value quantile on the same sample ---------------------------
    median = sampler.query("quantile", q=0.5, ci=0.95)
    print(
        f"\nmedian event revenue ~{median.estimate:.2f} "
        f"(95% CI [{median.ci[0]:.2f}, {median.ci[1]:.2f}], "
        f"true {float(np.median(revenue)):.2f})"
    )

    # --- dashboards re-poll for free ------------------------------------
    poll = repro.Query("sum", group_by=region_of, ci=0.95)
    sampler.query(poll)  # cold: plans + executes
    t0 = time.perf_counter()
    reps = 1000
    for _ in range(reps):
        sampler.query(poll)  # cache hits until the next update
    per_poll = (time.perf_counter() - t0) / reps
    print(f"\ncached re-poll: {per_poll * 1e6:.1f} us per query")

    sampler.update(10**9, weight=5000.0)  # any update invalidates
    refreshed = sampler.query(poll)
    print(
        "after one more event, refreshed emea estimate: "
        f"{refreshed['emea'].estimate:,.0f}"
    )


if __name__ == "__main__":
    main()
