"""Distributed distinct counting with per-item-threshold merges (Section 3.5).

Ten shards each sketch their local user sets; the coordinator merges the
sketches to estimate global distinct users.  The paper's adaptive-threshold
merge keeps *every* retained hash usable via per-item thresholds (the LCS
generalization), while the classic Theta union throws information away by
cutting to the global minimum theta.  With one big shard and many small
ones, the gap is dramatic — only the big shard contributes error to ours.

Run:  python examples/distinct_count_union.py
"""

from functools import reduce

import numpy as np

from repro import AdaptiveDistinctSketch, ThetaSketch
from repro.workloads import many_small_sets


def main() -> None:
    k = 256
    salt = 42
    big, smalls = many_small_sets(big_size=200_000, n_small=400, small_size=120)
    total = big.size + sum(s.size for s in smalls)
    print(f"shards  : 1 x {big.size} users + {len(smalls)} x {smalls[0].size}")
    print(f"total   : {total} distinct users; sketch size k={k}\n")

    # Build one sketch per shard (identical hashing: coordinated); the
    # vectorized update_many path ingests each shard in one call.
    def adaptive(keys):
        sk = AdaptiveDistinctSketch(k, salt=salt)
        sk.update_many(keys)
        return sk

    def theta(keys):
        sk = ThetaSketch(k, salt=salt)
        sk.update_many(keys)
        return sk

    # StreamSampler.merge is in-place (returns self), so the reduce chain
    # folds every shard into the accumulator without copying.
    adaptive_merged = reduce(
        lambda acc, keys: acc.merge(adaptive(keys)), smalls, adaptive(big)
    )
    theta_merged = reduce(
        lambda acc, keys: acc.merge(theta(keys)), smalls, theta(big)
    )

    est_a = adaptive_merged.estimate_distinct()
    est_t = theta_merged.estimate()
    print(f"adaptive merge : {est_a:12.0f}  "
          f"({100 * (est_a / total - 1):+.2f}% error, "
          f"{len(adaptive_merged)} usable entries)")
    print(f"theta union    : {est_t:12.0f}  "
          f"({100 * (est_t / total - 1):+.2f}% error, "
          f"{len(theta_merged)} usable entries)")
    print("\nsmall shards fit entirely in their sketches (threshold 1), so")
    print("the adaptive merge counts them exactly; only the big shard's")
    print("sketch contributes sampling error (Section 3.5's ~total/big gain).")


if __name__ == "__main__":
    main()
