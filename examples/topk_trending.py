"""Trending pages: the adaptive top-k sampler vs FrequentItems (Section 3.3).

A news site wants its top-10 trending pages.  Page popularity follows a
Pitman-Yor process with a heavy tail (frequencies are *not* well separated),
which is exactly where fixed-size frequent-item sketches break down: no
frequency threshold is guaranteed for rank 10.  The adaptive sampler sizes
itself to the data — and, being a threshold sampler, it also answers
disaggregated questions ("views by section") with unbiased HT estimates.

Run:  python examples/topk_trending.py
"""

import numpy as np

from repro import AdaptiveTopKSampler, FrequentItemsSketch
from repro.workloads import pitman_yor_stream, true_top_k


def main() -> None:
    rng = np.random.default_rng(3)
    n_views = 60_000
    beta = 0.85  # heavy tail: many moderately popular pages

    stream = pitman_yor_stream(n_views, beta, rng)
    sections = {page: ("news" if page % 3 else "sports")
                for page in np.unique(stream).tolist()}
    truth = true_top_k(stream, 10)

    sampler = AdaptiveTopKSampler(k=10, rng=rng)
    freq = FrequentItemsSketch(max_map_size=128)
    for page in stream.tolist():
        sampler.update(page)
        freq.update(page)

    def errors(returned):
        return sum(1 for p in returned if p not in set(truth))

    sampler_top = [p for p, _ in sampler.top(10)]
    freq_top = [p for p, _ in freq.top(10)]
    print(f"stream            : {n_views} views, "
          f"{len(np.unique(stream))} distinct pages, beta={beta}")
    print(f"true top-10       : {truth}")
    print(f"adaptive sampler  : {sampler_top}  "
          f"({errors(sampler_top)} wrong, {len(sampler)} entries)")
    print(f"FrequentItems     : {freq_top}  "
          f"({errors(freq_top)} wrong, {freq.nominal_size} slots)")

    # Disaggregated subset sums (Ting 2018 / Section 3.3): unbiased view
    # counts by section, from the same sketch.
    for section in ("news", "sports"):
        est = sampler.estimate_subset_sum(
            lambda page, s=section: sections[page] == s
        )
        true_views = sum(1 for p in stream.tolist() if sections[p] == section)
        print(f"views[{section:6s}]     : est {est:9.0f}   truth {true_views:9d}   "
              f"error {100 * (est / true_views - 1):+.1f}%")


if __name__ == "__main__":
    main()
