"""Sliding-window monitoring with the improved G&L sampler (Section 3.2).

Simulates a service emitting events whose arrival rate spikes (an incident),
maintains a bounded-memory uniform sample of the last window, and compares
the paper's improved final threshold against the original Gemulla–Lehner
rule: same sketch, same memory, ~2x the usable sample, faster recovery.

Run:  python examples/sliding_window_monitoring.py
"""

import numpy as np

from repro import SlidingWindowSampler
from repro.workloads import inhomogeneous_arrivals, spike_rate


def main() -> None:
    rng = np.random.default_rng(1)
    window = 1.0  # seconds
    k = 100  # memory budget (current candidates)

    rate = spike_rate(base=800.0, spike=4000.0, spike_start=3.0, spike_end=3.5)
    arrivals = inhomogeneous_arrivals(rate, 4000.0, 0.0, 8.0, rng)
    print(f"events generated : {arrivals.size} over 8s (spike at t=3.0-3.5)")

    sampler = SlidingWindowSampler(k=k, window=window, rng=rng)
    cursor = 0
    print(f"\n{'time':>5} {'rate':>6} {'G&L n':>6} {'ours n':>7} {'ratio':>6}")
    for now in np.arange(1.0, 8.0 + 1e-9, 0.5):
        while cursor < arrivals.size and arrivals[cursor] <= now:
            sampler.update(cursor, time=float(arrivals[cursor]))
            cursor += 1
        snap = sampler.snapshot(float(now))
        ratio = snap.improved_sample_size / max(snap.gl_sample_size, 1)
        print(
            f"{now:5.1f} {float(rate(np.array(now))):6.0f} "
            f"{snap.gl_sample_size:6d} {snap.improved_sample_size:7d} "
            f"{ratio:6.2f}"
        )

    # The sample is uniform over the window, so window aggregates are easy:
    est = sampler.estimate_window_count(8.0)
    truth = int(np.sum(arrivals > 7.0))
    print(f"\nevents in last window : truth {truth}, HT estimate {est:.0f}")
    print(f"peak memory           : {sampler.max_current} current + "
          f"{sampler.max_expired} expired candidates")


if __name__ == "__main__":
    main()
