"""A multi-tenant serving cluster, front to back.

Three SaaS tenants — each with its own sampler spec and quota — share a
pool of two durable workers behind a :class:`repro.serve.cluster.Cluster`.
A network client speaks the length-prefixed JSON frame protocol to a
:class:`ClusterFrontend`: it registers the tenants, streams their orders,
and queries each tenant's revenue with a confidence interval.  Mid-demo a
third worker joins the pool and the consistent-hash ring rebalances
tenants onto it **live** — after which every tenant's state is proven
bit-identical to an isolated control sampler fed the same events, and a
rate-limited tenant shows its quota rejections being counted rather than
silently dropped.

Run:  PYTHONPATH=src python examples/cluster_demo.py
"""

import asyncio
import tempfile

import numpy as np

from repro import SamplerSpec
from repro.serve.cluster import Cluster, ClusterClient, ClusterFrontend

TENANTS = {
    "acme": {"name": "bottom_k", "params": {"k": 256, "rng": 1}},
    "globex": {"name": "bottom_k", "params": {"k": 128, "rng": 2}},
    "initech": {"name": "weighted_distinct", "params": {"k": 128, "salt": 3}},
}
N = 20_000


def build_orders(tenant: str, i: int):
    rng = np.random.default_rng(100 + i)
    customers = rng.integers(0, 2_000, N)
    order_value = rng.lognormal(3.0, 0.8, N)
    return customers, order_value


def signature(sampler) -> tuple:
    sample = sampler.sample()
    return tuple(sorted(
        (repr(key), round(float(w), 9), round(float(t), 12))
        for key, w, t in zip(sample.keys, sample.weights, sample.thresholds)
    ))


async def main(root) -> None:
    async with Cluster(
        services=2, dir=root, batch_size=2_048, ring_salt=1
    ) as cluster:
        async with ClusterFrontend(cluster) as frontend:
            host, port = frontend.address
            client = await ClusterClient.connect(host, port)

            for tenant, spec in TENANTS.items():
                reply = await client.create_tenant(tenant, spec)
                print(f"tenant {tenant:>8} placed on {reply['service']}")

            orders = {}
            for i, tenant in enumerate(TENANTS):
                customers, order_value = build_orders(tenant, i)
                # initech counts distinct customers: its sketch keys
                # priorities on hash(key)/weight, so repeat customers
                # must arrive with a consistent weight — stream them
                # unweighted and let revenue tenants carry order values.
                weighted = tenant != "initech"
                orders[tenant] = (customers, order_value if weighted else None)
                for lo in range(0, N, 4_000):
                    await client.ingest_many(
                        tenant,
                        customers[lo:lo + 4_000].tolist(),
                        weights=(
                            order_value[lo:lo + 4_000].tolist()
                            if weighted else None
                        ),
                    )
            await client.admin("flush")

            print()
            for tenant in ("acme", "globex"):
                reply = await client.query(tenant, "sum", ci=0.95)
                lo, hi = reply["ci"]
                print(
                    f"{tenant:>8} revenue ~ {reply['estimate']:>12,.0f} "
                    f"(95% CI {lo:,.0f} .. {hi:,.0f}) from "
                    f"{reply['sample_size']} retained rows"
                )
            reply = await client.query("initech", "distinct")
            print(f" initech distinct customers ~ {reply['estimate']:,.0f} "
                  f"(true universe 2,000)")

            # Grow the pool live: the ring hands its share of tenants to
            # the new worker while the cluster keeps serving.
            grown = await client.admin("add_service")
            placements = {
                t: (await client.admin("describe_tenant", tenant=t))
                ["description"]["service"]
                for t in TENANTS
            }
            moved = [
                t for t, s in placements.items() if s == grown["service"]
            ]
            print(f"\nadded {grown['service']}: moved {len(moved)} of "
                  f"{len(TENANTS)} tenants -> {moved}")

            # Every tenant — moved or not — still equals an isolated
            # control sampler fed the same orders.
            identical = True
            for i, tenant in enumerate(TENANTS):
                customers, order_value = orders[tenant]
                control = SamplerSpec.from_dict(TENANTS[tenant]).build()
                # Feed the control exactly what crossed the wire: JSON
                # turned the numpy arrays into Python scalars.
                control.update_many(
                    customers.tolist(),
                    None if order_value is None else order_value.tolist(),
                )
                worker = cluster.service(placements[tenant])
                async with worker.snapshot():
                    mine = signature(worker.sampler.tenant_sampler(tenant))
                identical &= mine == signature(control)
            print(f"per-tenant isolation after rebalance: {identical}")

            # Quotas: a burst over the rate limit is rejected and
            # counted, never silently lost.
            await client.create_tenant(
                "freeloader",
                {"name": "bottom_k", "params": {"k": 16, "rng": 9}},
                quota={"events_per_sec": 100.0, "burst": 50.0},
            )
            admitted = 0
            for key in range(200):
                reply = await client.ingest("freeloader", key)
                admitted += reply["admitted"]
            described = await client.admin(
                "describe_tenant", tenant="freeloader"
            )
            rejected = described["description"]["rejected"]["rate"]
            print(
                f"\nfreeloader burst: {admitted} admitted, "
                f"{rejected} rate-rejected of 200 "
                f"(quota 100/s, burst 50)"
            )

            metrics = (await client.admin("metrics"))["metrics"]
            print(
                f"cluster totals: {metrics['total']['events_applied']:,} "
                f"events applied across "
                f"{len(metrics['services'])} services, "
                f"{len(metrics['tenants'])} tenants"
            )
            await client.aclose()


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as root:
        asyncio.run(main(root))
