"""Approximate query processing with early stopping (Section 3.10).

A dashboard issues aggregate queries with a user-chosen accuracy knob.
Rows are stored sorted by sampling priority, so every prefix is a valid
threshold sample; the engine reads rows until the estimated standard error
reaches the target and stops.  Tight targets read more rows — the accuracy
/ latency trade-off is set per query, not at ingest time.

Run:  python examples/aqp_dashboard.py
"""

import numpy as np

from repro import PriorityLayoutTable


def main() -> None:
    rng = np.random.default_rng(11)
    n_rows = 200_000

    # An orders table: region code and order value.
    region = rng.integers(0, 4, n_rows)
    value = rng.lognormal(mean=4.0, sigma=1.0, size=n_rows)
    table = PriorityLayoutTable(value, salt=5)
    truth = float(value.sum())

    print(f"orders table: {n_rows} rows, true total {truth:,.0f}\n")
    print(f"{'target':>10} {'rows read':>10} {'% read':>7} {'estimate':>14} {'err %':>7}")
    for pct in (10.0, 3.0, 1.0, 0.3):
        target = pct / 100.0 * truth
        res = table.query_total(target)
        print(
            f"{pct:9.1f}% {res.rows_read:10d} {100 * res.fraction_read:6.2f}% "
            f"{res.estimate:14,.0f} {100 * (res.estimate / truth - 1):+7.2f}%"
        )

    # Subset query: only region 2, same layout, same guarantees.
    mask = region == 2
    sub_truth = float(value[mask].sum())
    res = table.query_total(0.02 * sub_truth, mask=mask)
    print(
        f"\nregion-2 total: truth {sub_truth:,.0f}, "
        f"estimate {res.estimate:,.0f} "
        f"({100 * (res.estimate / sub_truth - 1):+.2f}%) "
        f"after reading {res.rows_read} rows "
        f"({100 * res.fraction_read:.2f}% of the table)"
    )


if __name__ == "__main__":
    main()
