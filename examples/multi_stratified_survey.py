"""One sample, two stratifications, one budget (Section 3.7).

A user-research team wants a single panel of at most 300 users that is
simultaneously stratified by country *and* by age band.  Per-stratum
bottom-k thresholds composed with a per-item max give a sample every
stratum is represented in; the dynamic threshold-decrement rule then fits
the hard budget.  HT estimation stays valid throughout.

Run:  python examples/multi_stratified_survey.py
"""

from collections import Counter

import numpy as np

from repro import MultiStratifiedSampler


def main() -> None:
    rng = np.random.default_rng(23)
    n_users = 20_000
    countries = ["US", "DE", "JP", "BR", "IN"]
    ages = ["18-25", "26-35", "36-50", "51+"]
    # Unbalanced population: some strata are rare.
    country_probs = [0.45, 0.2, 0.15, 0.12, 0.08]
    age_probs = [0.3, 0.35, 0.25, 0.1]

    sampler = MultiStratifiedSampler(n_dims=2, k=40, salt=9)
    spend = {}
    for uid in range(n_users):
        c = countries[rng.choice(len(countries), p=country_probs)]
        a = ages[rng.choice(len(ages), p=age_probs)]
        s = float(rng.lognormal(2.0, 1.0))
        spend[uid] = (c, a, s)
        sampler.update(uid, strata=(c, a), value=s)

    budget = 300
    sample = sampler.sample(budget=budget)
    print(f"population : {n_users} users, {len(countries)} countries x "
          f"{len(ages)} age bands")
    print(f"panel size : {len(sample)} (budget {budget})\n")

    counts = sampler.stratum_counts(sample)
    print("per-country panel counts:",
          {label: counts.get((0, label), 0) for label in countries})
    print("per-age panel counts    :",
          {label: counts.get((1, label), 0) for label in ages})

    # Estimation: total spend per country from the one panel.
    true_by_country = Counter()
    for c, _, s in spend.values():
        true_by_country[c] += s
    print(f"\n{'country':>8} {'truth':>12} {'estimate':>12} {'error':>8}")
    for c in countries:
        est = sample.select(lambda uid, cc=c: spend[uid][0] == cc).ht_total()
        truth = true_by_country[c]
        print(f"{c:>8} {truth:12.0f} {est:12.0f} "
              f"{100 * (est / truth - 1):+7.1f}%")


if __name__ == "__main__":
    main()
