"""A live dashboard over the serving runtime.

One :class:`repro.serve.StreamService` ingests a bursty Zipf order stream
(WAL + checkpoints on) while a dashboard task concurrently polls
snapshot-isolated queries — revenue by region with CIs, the top customers
— pinned to one ``state_version`` per refresh.  At the end the process
"crashes" (the service is abandoned without a final flush) and
``StreamService.recover`` resumes from the durable frontier, proving the
recovered state matches an uninterrupted run over the durable prefix.

Run:  PYTHONPATH=src python examples/serve_live_dashboard.py
"""

import asyncio
import tempfile

import numpy as np

from repro import make_sampler
from repro.serve import StreamService
from repro.workloads.zipf import zipf_stream

N = 60_000
UNIVERSE = 2_000
REGIONS = ("emea", "amer", "apac", "other")


def build_stream():
    rng = np.random.default_rng(7)
    customers = zipf_stream(N, UNIVERSE, 1.3, rng=rng)
    order_value = rng.lognormal(3.0, 0.8, N)
    return customers, order_value


def region_of(customer: int) -> str:
    return REGIONS[customer % len(REGIONS)]


def signature(sampler) -> tuple:
    """Order-independent bit-exactness view of a sampler's sample."""
    sample = sampler.sample()
    return tuple(sorted(
        (repr(key), round(float(v), 9), round(float(p), 12))
        for key, v, p in zip(sample.keys, sample.values, sample.priorities)
    ))


async def produce(service, customers, order_value, chunk=2_000):
    """The order feed: bursty batches with pauses between them."""
    for lo in range(0, N, chunk):
        await service.ingest_many(
            customers[lo:lo + chunk],
            weights=order_value[lo:lo + chunk],
            values=order_value[lo:lo + chunk],
        )
        await asyncio.sleep(0.002)  # the next burst


async def dashboard(service, refreshes=5):
    """Concurrent reader: every refresh is one consistent snapshot."""
    for refresh in range(refreshes):
        await asyncio.sleep(0.01)
        async with service.snapshot() as snap:
            revenue = snap.query("sum", group_by=region_of, ci=0.95)
            top = snap.query("topk", k=3)
            assert revenue.state_version == snap.state_version
            assert top.state_version == snap.state_version
        emea = revenue["emea"]
        print(
            f"refresh {refresh}: version {revenue.state_version:>4} | "
            f"events {snap.events_applied:>6,} | "
            f"emea revenue {emea.estimate:>12,.0f} "
            f"+/- {1.96 * emea.stderr:,.0f}"
        )
    return top


async def main(root) -> None:
    service = StreamService(
        {"name": "bottom_k", "params": {"k": 512, "rng": 42}},
        dir=root, queue_size=8_192, batch_size=1_024, max_latency=0.005,
        checkpoint_every_events=16_384,
    )
    await service.start()
    customers, order_value = build_stream()

    producer = asyncio.create_task(produce(service, customers, order_value))
    top = await dashboard(service)
    await producer
    await service.flush()

    print("\ntop customers by estimated revenue:")
    for item in top.estimate:
        print(f"  customer {item.key:>5}: {item.estimate:>12,.0f}")

    m = service.metrics
    print(
        f"\nmetrics: {m.events_applied:,} applied in {m.batches_applied} "
        f"batches ({m.flushes_size} size / {m.flushes_deadline} deadline "
        f"flushes) | queue high-water {m.queue_high_watermark} | "
        f"{m.checkpoints_written} checkpoints | "
        f"{m.wal_bytes:,} WAL bytes"
    )
    print("batch size histogram (events per applied batch):")
    for row in m.batch_size_histogram():
        bar = "#" * max(1, round(40 * row["count"] / m.batches_applied))
        print(f"  {row['label']:>12}: {row['count']:>4} {bar}")

    # Simulate a crash: abandon the service without a clean stop, then
    # recover from disk and verify against an uninterrupted run.
    await service.abort()
    recovered = StreamService.recover(root)
    durable = recovered.events_durable

    reference = make_sampler("bottom_k", k=512, rng=42)
    reference.update_many(
        customers[:durable],
        weights=order_value[:durable],
        values=order_value[:durable],
    )
    async with (await recovered.start()).snapshot() as snap:
        identical = signature(snap) == signature(reference)
    await recovered.stop()
    print(
        f"\nrecovered {durable:,}/{N:,} durable events after simulated "
        f"crash\nrecovered state matches uninterrupted run: {identical}"
    )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as root:
        asyncio.run(main(root))
